"""Ablations for the design choices DESIGN.md calls out.

1. Dynamic vs static pipeline (§3.5, §5.1): the fixed-sequence prototype
   against the full Conductor loop — dynamic orchestration must win.
2. Hybrid vs BM25-only vs vector-only retrieval (the Pneuma-Retriever
   design): top-1 relevant-table hit rate per question.
3. Context specialization (§3.1): per-call prompt sizes of the specialized
   components versus the union context a monolithic agent would carry.
4. Action-limit sweep: accuracy as the Conductor's per-turn budget varies
   around the paper's i = 5.
"""

import pytest

from repro.baselines import SeekerSystem, StaticPipelineRunner
from repro.core.conductor import Conductor
from repro.datasets.questions import answers_match
from repro.eval import evaluate_accuracy
from repro.retriever import PneumaRetriever


def test_ablation_dynamic_vs_static_pipeline(arch_eval, env_eval, benchmark):
    rows = []
    for dataset in (arch_eval, env_eval):
        results = evaluate_accuracy(
            dataset,
            {
                "Static-Pipeline": lambda q, d=dataset: StaticPipelineRunner(d.lake).answer(q.text),
                "Pneuma-Seeker": lambda q, d=dataset: SeekerSystem(d.lake).answer(q.text),
            },
        )
        rows.extend(results)

    print()
    print("Ablation: dynamic (Conductor) vs static pipeline accuracy")
    for r in rows:
        print(f"  {r.system:<16} {r.dataset:<12} {r.percentage:6.2f}% ({r.correct}/{r.total})")

    by_key = {(r.system, r.dataset): r.correct for r in rows}
    total_static = by_key[("Static-Pipeline", "archaeology")] + by_key[("Static-Pipeline", "environment")]
    total_dynamic = by_key[("Pneuma-Seeker", "archaeology")] + by_key[("Pneuma-Seeker", "environment")]
    assert total_dynamic > total_static

    benchmark.pedantic(lambda: by_key, rounds=3, iterations=1)


def test_ablation_retrieval_modes(arch_eval, env_eval, benchmark):
    print()
    print("Ablation: hybrid vs BM25-only vs vector-only retrieval (top-3 hit rate)")
    hit_rates = {}
    for dataset in (arch_eval, env_eval):
        retriever = PneumaRetriever(dataset.lake)
        for mode in ("hybrid", "bm25", "vector"):
            hits = 0
            for question in dataset.questions:
                found = {d.title for d in retriever.search(question.text, k=3, mode=mode)}
                if found & set(question.relevant_tables):
                    hits += 1
            rate = hits / len(dataset.questions)
            hit_rates[(dataset.name, mode)] = rate
            print(f"  {dataset.name:<12} {mode:<8} {100 * rate:6.1f}%")

    for dataset, n_questions in (("archaeology", 12), ("environment", 20)):
        # The hybrid index must track its stronger half: never worse than
        # the dense side, and within one question of the lexical side.
        slack = 1.0 / n_questions + 1e-9
        assert hit_rates[(dataset, "hybrid")] >= hit_rates[(dataset, "vector")]
        assert hit_rates[(dataset, "hybrid")] >= hit_rates[(dataset, "bm25")] - slack

    benchmark.pedantic(lambda: hit_rates, rounds=3, iterations=1)


def test_ablation_context_specialization(arch_eval, benchmark):
    """Specialized prompts stay far smaller than the monolithic union."""
    question = arch_eval.questions[1]  # the Maltese interpolation question
    system = SeekerSystem(arch_eval.lake)
    system.answer(question.text)

    ledger = system.session.llm.ledger
    by_component = ledger.by_component()
    conductor_avg = (
        by_component["conductor"].prompt_tokens / ledger.num_calls("conductor")
    )
    materializer_avg = (
        by_component["materializer"].prompt_tokens / ledger.num_calls("materializer")
        if ledger.num_calls("materializer")
        else 0
    )
    # A monolithic agent would carry both roles' context in every call.
    monolithic = conductor_avg + materializer_avg

    print()
    print("Ablation: context specialization (avg prompt tokens per call)")
    print(f"  conductor-only     {conductor_avg:10.0f}")
    print(f"  materializer-only  {materializer_avg:10.0f}")
    print(f"  monolithic union   {monolithic:10.0f}")
    assert conductor_avg < monolithic
    assert materializer_avg < monolithic

    benchmark.pedantic(lambda: (conductor_avg, materializer_avg), rounds=3, iterations=1)


def test_ablation_action_limit_sweep(arch_eval, benchmark):
    """Accuracy vs the Conductor's per-turn action budget (paper: i = 5)."""
    # A single-turn ask needs retrieve/ground/update/materialize/execute;
    # tighter budgets force extra turns, looser ones change nothing.
    questions = [q for q in arch_eval.questions if q.design in ("both", "seeker")]
    original = Conductor.ACTION_LIMIT
    results = {}
    try:
        for limit in (2, 3, 5, 8):
            Conductor.ACTION_LIMIT = limit
            correct = 0
            for question in questions:
                system = SeekerSystem(arch_eval.lake)
                answer = system.answer(question.text)
                truth = question.ground_truth(arch_eval.lake)
                correct += answers_match(truth, answer, question.tolerance)
            results[limit] = correct
    finally:
        Conductor.ACTION_LIMIT = original

    print()
    print(f"Ablation: action-limit sweep over {len(questions)} solvable questions")
    for limit, correct in results.items():
        print(f"  i = {limit}: {correct}/{len(questions)} correct")

    # The paper's i=5 must do at least as well as the starved budgets, and
    # a larger budget must not be needed.
    assert results[5] >= results[2]
    assert results[8] <= results[5] + 1

    benchmark.pedantic(lambda: results, rounds=3, iterations=1)


@pytest.mark.smoke
def test_smoke_retrieval_ablation(arch_smoke):
    """Tiny-N smoke: the three retrieval modes still answer discovery."""
    retriever = PneumaRetriever(arch_smoke.lake)
    question = arch_smoke.questions[0]
    for mode in ("hybrid", "bm25", "vector"):
        docs = retriever.search(question.text, k=3, mode=mode)
        assert docs, mode
