"""Figure 4: Median Turns to Convergence vs Convergence Percentage
(archaeology dataset).

Reproduced shape: Pneuma-Seeker achieves the highest convergence
percentage; LlamaIndex converges at a comparable number of turns; FTS and
Pneuma-Retriever sit in the low-convergence / high-turns corner because
LLM Sim must interpret their raw outputs itself (§4.1).
"""

import pytest

from repro.baselines import FTSSystem, RAGSystem, RetrieverOnlySystem, SeekerSystem
from repro.eval import evaluate_convergence, render_convergence_figure


@pytest.fixture(scope="module")
def fig4_results(arch_eval):
    factories = {
        "FTS": lambda: FTSSystem(arch_eval.lake),
        "Pneuma-Retriever": lambda: RetrieverOnlySystem(arch_eval.lake),
        "LlamaIndex": lambda: RAGSystem(arch_eval.lake),
        "Pneuma-Seeker": lambda: SeekerSystem(arch_eval.lake),
    }
    return evaluate_convergence(arch_eval, factories, max_turns=15)


def test_fig4_convergence_archaeology(fig4_results, benchmark):
    by_name = {r.system: r for r in fig4_results}
    seeker = by_name["Pneuma-Seeker"]
    llama = by_name["LlamaIndex"]
    fts = by_name["FTS"]
    retriever = by_name["Pneuma-Retriever"]

    # Shape assertions from §4.1.
    assert seeker.percentage == max(r.percentage for r in fig4_results)
    assert seeker.percentage > llama.percentage
    assert fts.percentage < llama.percentage
    assert retriever.percentage < llama.percentage
    assert fts.median_turns > seeker.median_turns
    # Latency trade-off: Seeker is orders of magnitude slower per prompt
    # than the static systems (paper: 70.26 s vs "almost instantaneous").
    assert seeker.avg_seconds_per_prompt > 50 * fts.avg_seconds_per_prompt

    print()
    print(render_convergence_figure(fig4_results, "Figure 4 (archaeology)"))

    benchmark.pedantic(
        lambda: [(r.system, r.percentage, r.median_turns) for r in fig4_results],
        rounds=3,
        iterations=1,
    )


@pytest.mark.smoke
def test_smoke_convergence_archaeology(arch_smoke):
    """Tiny-N smoke: convergence evaluation still runs for two systems."""
    results = evaluate_convergence(
        arch_smoke,
        {
            "FTS": lambda: FTSSystem(arch_smoke.lake),
            "Pneuma-Seeker": lambda: SeekerSystem(arch_smoke.lake),
        },
        max_turns=5,
    )
    assert {r.system for r in results} == {"FTS", "Pneuma-Seeker"}
