"""Figure 5: Median Turns to Convergence vs Convergence Percentage
(environment dataset).

Same systems and metrics as Figure 4, over the 20 environment questions.
"""

import pytest

from repro.baselines import FTSSystem, RAGSystem, RetrieverOnlySystem, SeekerSystem
from repro.eval import evaluate_convergence, render_convergence_figure


@pytest.fixture(scope="module")
def fig5_results(env_eval):
    factories = {
        "FTS": lambda: FTSSystem(env_eval.lake),
        "Pneuma-Retriever": lambda: RetrieverOnlySystem(env_eval.lake),
        "LlamaIndex": lambda: RAGSystem(env_eval.lake),
        "Pneuma-Seeker": lambda: SeekerSystem(env_eval.lake),
    }
    return evaluate_convergence(env_eval, factories, max_turns=15)


def test_fig5_convergence_environment(fig5_results, benchmark):
    by_name = {r.system: r for r in fig5_results}
    seeker = by_name["Pneuma-Seeker"]
    llama = by_name["LlamaIndex"]

    assert seeker.percentage == max(r.percentage for r in fig5_results)
    assert seeker.percentage >= llama.percentage
    assert by_name["FTS"].percentage < llama.percentage
    assert by_name["Pneuma-Retriever"].percentage < llama.percentage
    # Seeker and LlamaIndex converge in a comparable number of turns.
    assert abs(seeker.median_turns - llama.median_turns) <= 4

    print()
    print(render_convergence_figure(fig5_results, "Figure 5 (environment)"))

    benchmark.pedantic(
        lambda: [(r.system, r.percentage, r.median_turns) for r in fig5_results],
        rounds=3,
        iterations=1,
    )


@pytest.mark.smoke
def test_smoke_convergence_environment(env_smoke):
    """Tiny-N smoke: convergence evaluation still runs on environment."""
    results = evaluate_convergence(
        env_smoke,
        {"Pneuma-Seeker": lambda: SeekerSystem(env_smoke.lake)},
        max_turns=5,
    )
    assert results and results[0].system == "Pneuma-Seeker"
