"""§4.1 latency trade-off: seconds per prompt across systems.

Paper: "On average, Pneuma-Seeker takes 70.26 seconds to respond to a
prompt, while FTS and Pneuma-Retriever answer almost instantaneously."
Latency here is the virtual clock (LLM calls cost seconds, index lookups
cost milliseconds; see repro.llm.clock); wall-clock per respond() is also
measured by the benchmark timer.
"""

import pytest

from repro.baselines import FTSSystem, RetrieverOnlySystem, SeekerSystem


@pytest.fixture(scope="module")
def prompt(arch_eval):
    return arch_eval.questions[0].text


def test_latency_seeker_vs_static(arch_eval, prompt, benchmark):
    seeker = SeekerSystem(arch_eval.lake)
    fts = FTSSystem(arch_eval.lake)
    retriever = RetrieverOnlySystem(arch_eval.lake)

    before = seeker.session.llm.clock.now
    seeker.respond(prompt)
    seeker_seconds = seeker.session.llm.clock.now - before

    fts_before = fts.clock.now
    fts.respond(prompt)
    fts_seconds = fts.clock.now - fts_before

    retriever_before = retriever.clock.now
    retriever.respond(prompt)
    retriever_seconds = retriever.clock.now - retriever_before

    print()
    print("Latency per prompt (virtual seconds):")
    print(f"  Pneuma-Seeker    {seeker_seconds:8.2f}  (paper: 70.26)")
    print(f"  FTS              {fts_seconds:8.2f}  (paper: ~0)")
    print(f"  Pneuma-Retriever {retriever_seconds:8.2f}  (paper: ~0)")

    assert seeker_seconds > 30.0
    assert fts_seconds < 1.0
    assert retriever_seconds < 1.0

    # Wall-clock of a static lookup (the actual fast path).
    benchmark(fts.respond, prompt)


@pytest.mark.smoke
def test_smoke_latency(arch_smoke):
    """Tiny-N smoke: the latency comparison code path still runs."""
    seeker = SeekerSystem(arch_smoke.lake)
    fts = FTSSystem(arch_smoke.lake)
    prompt = arch_smoke.questions[0].text
    before = seeker.session.llm.clock.now
    seeker.respond(prompt)
    assert seeker.session.llm.clock.now > before
    fts.respond(prompt)
    assert fts.clock.now < 1.0
