"""§4.2 side experiment: the O3 full-context baseline overflows its window.

Paper: "we encountered context length exceeded errors with O3 in 6 out of
12 archaeology questions and 17 out of 20 environment questions", and
"passing all relevant context is still not a scalable approach".

At the paper-shape scale the serialized relevant tables overflow the 200k
window for most questions; the reproduced claim is that the *majority* of
questions are unanswerable this way while Pneuma-Seeker handles the same
lakes through retrieval.
"""

import pytest

from repro.baselines import FullContextRunner
from repro.eval import evaluate_full_context, render_context_overflow


@pytest.fixture(scope="module")
def overflow_results(arch_full, env_full):
    return [
        evaluate_full_context(arch_full, FullContextRunner(arch_full.lake)),
        evaluate_full_context(env_full, FullContextRunner(env_full.lake)),
    ]


def test_o3_context_overflow(overflow_results, benchmark):
    arch, env = overflow_results

    print()
    print(render_context_overflow(overflow_results))
    print("(paper: archaeology 6/12 exceeded, environment 17/20 exceeded)")

    # The majority of questions overflow at paper-shape scale.  (The paper
    # reports 6/12 and 17/20; our synthetic tables have uniform row counts,
    # so slightly more overflow — the claim under test is "most".)
    assert arch.exceeded > arch.total // 2
    assert env.exceeded > env.total // 2
    # Whatever fits is answered rarely (the paper: 0 and 2 correct).
    assert arch.correct <= arch.total - arch.exceeded
    assert env.correct <= env.total - env.exceeded

    benchmark.pedantic(
        lambda: (arch.exceeded_fraction, env.exceeded_fraction),
        rounds=3,
        iterations=1,
    )


@pytest.mark.smoke
def test_smoke_full_context(arch_smoke):
    """Tiny-N smoke: the overflow evaluation runs (no overflow expected)."""
    result = evaluate_full_context(arch_smoke, FullContextRunner(arch_smoke.lake))
    assert result.total == len(arch_smoke.questions)
    assert 0 <= result.exceeded <= result.total
