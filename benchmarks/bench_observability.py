"""Observability cost and coverage: transparency, overhead, complete traces.

The claims under test (ISSUE 9's tentpole):

1. **Bit-transparency** — a service with tracing disabled (or no
   observability config at all) produces byte-identical responses to the
   traced one: instrumentation must never change behavior, only record it.
2. **Overhead** — tracing every turn costs <= 5% wall-clock on the mixed
   conversation workload (best-of-N, fresh service per measurement).
3. **Completeness** — 100% of traced turns yield a span tree containing
   the stages the turn actually executed: an ``llm.complete`` span always,
   ``retrieval.search`` when the Conductor retrieved, ``sql.execute`` when
   it ran Q.
4. **Slow-turn capture** — with the threshold at zero every turn's span
   tree is retained as an exemplar, bounded by the log's capacity.

Writes ``BENCH_observability.json``.  Also runnable standalone:

    PYTHONPATH=src python benchmarks/bench_observability.py --smoke
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.datasets import build_procurement_lake
from repro.service import ObservabilityConfig, PneumaService

# A mixed workload by design: the first question takes the clarification
# path (retrieval only), the second drives the full update-state /
# materialize / execute-SQL pipeline — so span-tree completeness is
# checked on both shapes.
CONVERSATION = [
    "What is the total purchase order cost impact of the new tariffs by supplier?",
    "What is the total price of purchase orders by supplier?",
]

OVERHEAD_CEILING_PCT = 5.0


def _serve_rounds(service, session_ids, rounds: int) -> list:
    """Drive ``rounds`` repetitions of the conversation, sequentially."""
    responses = []
    for _ in range(rounds):
        for message in CONVERSATION:
            for sid in session_ids:
                responses.append(service.post_turn(sid, message))
    return responses


# ----------------------------------------------------------------------
# Scenario 1: tracing off (or absent) is bit-transparent
# ----------------------------------------------------------------------
def run_transparency(sessions: int) -> dict:
    def transcript(observability):
        # A fresh lake per run: the comparison must see identical inputs.
        out = []
        with PneumaService(
            build_procurement_lake(), max_workers=4, observability=observability
        ) as service:
            session_ids = [service.open_session(user=f"u{i}") for i in range(sessions)]
            for message in CONVERSATION:
                for sid in session_ids:
                    response = service.post_turn(sid, message)
                    out.append((response.message, response.state_view, response.degraded))
        return out

    unconfigured = transcript(None)
    disabled = transcript(ObservabilityConfig(tracing=False))
    traced = transcript(ObservabilityConfig())
    return {
        "turns": len(unconfigured),
        "disabled_identical": disabled == unconfigured,
        "traced_identical": traced == unconfigured,
    }


# ----------------------------------------------------------------------
# Scenario 2: tracing costs <= 5% turn throughput
# ----------------------------------------------------------------------
def _measure(observability, sessions: int, rounds: int, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock for the turn loop (build excluded)."""
    best = float("inf")
    for _ in range(repeats):
        with PneumaService(
            build_procurement_lake(), max_workers=4, observability=observability
        ) as service:
            session_ids = [service.open_session(user=f"u{i}") for i in range(sessions)]
            _serve_rounds(service, session_ids, rounds=1)  # warm caches/plans
            started = time.perf_counter()
            _serve_rounds(service, session_ids, rounds=rounds)
            best = min(best, time.perf_counter() - started)
    return best


def run_overhead(sessions: int, rounds: int, repeats: int) -> dict:
    turns = sessions * rounds * len(CONVERSATION)
    traced = ObservabilityConfig(max_traces=max(256, turns + sessions))
    off_seconds = _measure(None, sessions, rounds, repeats)
    on_seconds = _measure(traced, sessions, rounds, repeats)
    return {
        "turns_per_measurement": turns,
        "repeats": repeats,
        "tracing_off_seconds": off_seconds,
        "tracing_on_seconds": on_seconds,
        "overhead_pct": (on_seconds - off_seconds) / off_seconds * 100.0,
        "off_turns_per_second": turns / off_seconds,
        "on_turns_per_second": turns / on_seconds,
    }


# ----------------------------------------------------------------------
# Scenario 3: every traced turn's span tree is complete
# ----------------------------------------------------------------------
def run_completeness(sessions: int, rounds: int) -> dict:
    turns = sessions * rounds * len(CONVERSATION)
    observability = ObservabilityConfig(max_traces=turns + 8, slow_turn_seconds=0.0)
    with PneumaService(
        build_procurement_lake(), max_workers=4, observability=observability
    ) as service:
        session_ids = [service.open_session(user=f"u{i}") for i in range(sessions)]
        responses = _serve_rounds(service, session_ids, rounds)
        traces = service.tracer.traces("turn")
        obs_stats = service.stats()["obs"]

    # Sequential posting means finish order == post order, so trace i is
    # turn i; each turn's log says which stages actually ran.
    assert len(traces) == len(responses), "every turn must leave a finished trace"
    complete = 0
    sql_turns = retrieval_turns = 0
    stage_seconds = {"llm": 0.0, "retrieval": 0.0, "sql": 0.0}
    for response, root in zip(responses, traces):
        kinds = {action["kind"] for action in response.turn_log.actions}
        names = set(root.span_names())
        ok = "llm.complete" in names
        if "retrieve" in kinds:
            retrieval_turns += 1
            ok = ok and "retrieval.search" in names
        if "execute_sql" in kinds:
            sql_turns += 1
            ok = ok and "sql.execute" in names
        complete += ok
        for span in root.iter_spans():
            if span.name == "llm.complete":
                stage_seconds["llm"] += span.duration
            elif span.name == "retrieval.search":
                stage_seconds["retrieval"] += span.duration
            elif span.name == "sql.execute":
                stage_seconds["sql"] += span.duration
    return {
        "turns": len(responses),
        "complete": complete,
        "retrieval_turns": retrieval_turns,
        "sql_turns": sql_turns,
        "spans_recorded": obs_stats["tracer"]["spans_recorded"],
        "stage_seconds": stage_seconds,
        "slow_turns_offered": obs_stats["slow_turns"]["offered"],
        "slow_turns_held": obs_stats["slow_turns"]["held"],
        "slow_log_capacity": obs_stats["slow_turns"]["capacity"],
    }


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def report(label: str, r: dict) -> None:
    transparency, overhead, completeness = r["transparency"], r["overhead"], r["completeness"]
    print()
    print(f"Observability ({label}):")
    print(
        f"  transparent  tracing-off identical over {transparency['turns']} turns: "
        f"{transparency['disabled_identical']} (and traced responses identical: "
        f"{transparency['traced_identical']})"
    )
    print(
        f"  overhead     {overhead['overhead_pct']:+.2f}% "
        f"({overhead['off_turns_per_second']:.0f} -> "
        f"{overhead['on_turns_per_second']:.0f} turns/s over "
        f"{overhead['turns_per_measurement']} turns, best of {overhead['repeats']})"
    )
    stage = completeness["stage_seconds"]
    print(
        f"  complete     {completeness['complete']}/{completeness['turns']} span trees "
        f"carry their executed stages "
        f"({completeness['retrieval_turns']} retrieval / {completeness['sql_turns']} sql turns, "
        f"{completeness['spans_recorded']} spans; "
        f"llm {stage['llm'] * 1000:.1f}ms, retrieval {stage['retrieval'] * 1000:.1f}ms, "
        f"sql {stage['sql'] * 1000:.1f}ms)"
    )
    print(
        f"  slow-turn    {completeness['slow_turns_held']}/"
        f"{completeness['slow_turns_offered']} offered turns retained "
        f"(capacity {completeness['slow_log_capacity']})"
    )


def write_json(label: str, r: dict, path: Path) -> None:
    payload = {"benchmark": "observability", "mode": label, "results": r}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {path}")


def _assert_criteria(r: dict) -> None:
    transparency, overhead, completeness = r["transparency"], r["overhead"], r["completeness"]
    assert transparency["disabled_identical"], (
        "tracing disabled must be bit-transparent (identical responses)"
    )
    assert transparency["traced_identical"], (
        "tracing enabled must not change responses, only record them"
    )
    assert overhead["overhead_pct"] <= OVERHEAD_CEILING_PCT, (
        f"tracing overhead {overhead['overhead_pct']:.2f}% exceeds the "
        f"{OVERHEAD_CEILING_PCT:.0f}% ceiling"
    )
    assert completeness["complete"] == completeness["turns"], (
        f"only {completeness['complete']}/{completeness['turns']} turns produced "
        "complete span trees"
    )
    assert completeness["retrieval_turns"] > 0 and completeness["sql_turns"] > 0, (
        "the workload must exercise both the retrieval and SQL stages"
    )
    assert completeness["spans_recorded"] > completeness["turns"], (
        "traced turns must record child spans, not just roots"
    )
    assert completeness["slow_turns_offered"] == completeness["turns"]
    assert completeness["slow_turns_held"] == min(
        completeness["turns"], completeness["slow_log_capacity"]
    ), "with threshold 0 the slow-turn log keeps every turn up to capacity"


def run_all(sessions: int, rounds: int, repeats: int) -> dict:
    return {
        "transparency": run_transparency(sessions=2),
        "overhead": run_overhead(sessions=sessions, rounds=rounds, repeats=repeats),
        "completeness": run_completeness(sessions=sessions, rounds=rounds),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
@pytest.mark.smoke
def test_smoke_observability():
    """Tiny-N smoke: all four observability claims on the procurement lake."""
    r = run_all(sessions=2, rounds=2, repeats=2)
    report("smoke", r)
    write_json("smoke", r, Path("BENCH_observability.json"))
    _assert_criteria(r)


def test_observability(benchmark):
    """Full scale: larger workload, more repeats for a stable overhead number."""
    r = run_all(sessions=6, rounds=4, repeats=3)
    report("6 sessions x 8 turns", r)
    write_json("full", r, Path("BENCH_observability.json"))
    _assert_criteria(r)

    # Time the traced serving path end to end.
    benchmark(lambda: run_completeness(sessions=2, rounds=2))


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny N, finishes in seconds")
    parser.add_argument("--sessions", type=int, default=None, help="overhead-workload sessions")
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_observability.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    if args.smoke:
        sessions = args.sessions if args.sessions is not None else 2
        rounds, repeats = 2, 2
        label = "smoke"
    else:
        sessions = args.sessions if args.sessions is not None else 6
        rounds, repeats = 4, 3
        label = f"{sessions} sessions"
    if sessions < 1:
        parser.error("--sessions must be >= 1")

    r = run_all(sessions=sessions, rounds=rounds, repeats=repeats)
    report(label, r)
    write_json(label, r, args.json)
    _assert_criteria(r)
    print(
        f"OK: tracing-off bit-identical, overhead <= {OVERHEAD_CEILING_PCT:.0f}%, "
        "100% complete span trees, slow-turn capture bounded"
    )


if __name__ == "__main__":
    main()
