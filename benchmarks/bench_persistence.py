"""Persistent index segments: warm starts vs cold rebuilds, crash recovery.

The crash-safety claims under test (ROADMAP's LSM-persistence item):

1. **Warm-start speedup** — opening a published snapshot (mmap + WAL
   replay + hydrate) must be >= 5x faster than rebuilding the same
   index from raw text (narrate + embed + HNSW construction).
2. **Bit-transparency** — the warm-loaded index returns byte-identical
   rankings to the cold-built one it was published from.
3. **Crash recovery** — an open after a non-clean close replays the WAL,
   classifies the open as ``recovered``, and serves the same snapshot;
   ``fsck`` passes throughout.
4. **Service warm boot** — a PneumaService restart over a store reuses
   the snapshot (zero re-narration) and answers turns identically.

Writes ``BENCH_persistence.json``; leaves the bench store directory on
disk so ``scripts/fsck.py`` can verify it offline (the CI wiring).
Also runnable standalone:

    PYTHONPATH=src python benchmarks/bench_persistence.py --smoke
"""

import argparse
import json
import shutil
import time
from pathlib import Path

import pytest

from repro.datasets import build_procurement_lake
from repro.retriever.index import HybridIndex
from repro.service import PneumaService
from repro.storage import IndexStore

SPEEDUP_FLOOR = 5.0
FULL_DOCS = 50_000
SMOKE_DOCS = 1_500
DIM = 96

TOPICS = [
    "supplier purchase orders and tariffs",
    "ocean freight shipment manifests",
    "warehouse inventory counts by site",
    "quarterly revenue by product line",
    "sensor telemetry from pump stations",
    "clinical trial enrollment by cohort",
    "archaeological survey site findings",
    "municipal water quality samples",
]

QUERIES = [
    "tariff impact by supplier",
    "freight shipments by vessel",
    "water quality sample results",
    "telemetry from pump stations",
]


def synthetic_docs(n: int) -> list:
    """A deterministic corpus shaped like table narrations."""
    return [
        (
            f"table_{i:06d}",
            f"Table table_{i:06d} narrates {TOPICS[i % len(TOPICS)]} with "
            f"{3 + i % 9} columns and {10 + (i * 37) % 5000} rows; "
            f"key column batch_{i % 101} joins to region_{i % 13}.",
        )
        for i in range(n)
    ]


def results(index, k=8):
    return [
        [(h.doc_id, h.score) for h in hits] for hits in index.search_batch(QUERIES, k=k)
    ]


# ----------------------------------------------------------------------
# Scenario 1+2: cold rebuild vs warm open, bit-transparent
# ----------------------------------------------------------------------
def run_cold_vs_warm(docs: list, store_dir: Path) -> dict:
    started = time.perf_counter()
    cold = HybridIndex(dim=DIM, seed=7)
    cold.add_batch(docs)
    cold.freeze()
    cold_seconds = time.perf_counter() - started

    if store_dir.exists():
        shutil.rmtree(store_dir)
    started = time.perf_counter()
    with IndexStore(store_dir) as store:
        store.publish(cold)
        store.checkpoint(clean=True)
    publish_seconds = time.perf_counter() - started

    started = time.perf_counter()
    store = IndexStore(store_dir)
    warm = store.load_index()
    warm_seconds = time.perf_counter() - started

    oracle = results(cold)
    observed = results(warm)
    segment_bytes = sum(p.stat().st_size for p in (store_dir / "segments").glob("*.seg"))
    report = {
        "docs": len(docs),
        "cold_build_seconds": cold_seconds,
        "publish_seconds": publish_seconds,
        "warm_open_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "bit_identical": observed == oracle,
        "segment_bytes": segment_bytes,
        "open_mode": store.open_mode,
        "fsck_ok": store.fsck()["ok"],
    }
    store.checkpoint(clean=True)  # leave a verifiable directory for offline fsck
    return report


# ----------------------------------------------------------------------
# Scenario 3: recovery after a crash-style stop serves the same snapshot
# ----------------------------------------------------------------------
def run_crash_recovery(docs: list, store_dir: Path) -> dict:
    if store_dir.exists():
        shutil.rmtree(store_dir)
    index = HybridIndex(dim=DIM, seed=7)
    index.add_batch(docs)
    index.freeze()
    oracle = results(index)

    # Publish, then die without a clean checkpoint: the WAL holds the truth.
    store = IndexStore(store_dir)
    store.publish(index)
    store.close()

    started = time.perf_counter()
    recovered = IndexStore(store_dir)
    observed = results(recovered.load_index())
    recovery_seconds = time.perf_counter() - started
    report = {
        "docs": len(docs),
        "open_mode": recovered.open_mode,
        "wal_records_replayed": recovered.stats()["wal_records_replayed"],
        "recovery_seconds": recovery_seconds,
        "bit_identical": observed == oracle,
        "fsck_ok": recovered.fsck()["ok"],
    }
    recovered.checkpoint(clean=True)
    return report


# ----------------------------------------------------------------------
# Scenario 4: service-level warm boot skips narration entirely
# ----------------------------------------------------------------------
def run_service_warm_boot(store_dir: Path) -> dict:
    if store_dir.exists():
        shutil.rmtree(store_dir)
    started = time.perf_counter()
    svc = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
    cold_boot = time.perf_counter() - started
    oracle = results(svc.retriever.index)
    svc.shutdown(drain=True)

    started = time.perf_counter()
    warm = PneumaService(build_procurement_lake(), max_workers=2, storage_dir=store_dir)
    warm_boot = time.perf_counter() - started
    report = {
        "cold_boot_seconds": cold_boot,
        "warm_boot_seconds": warm_boot,
        "warm_started": warm.warm_started,
        "tables_restored": warm.shared.build_report.get("restored", 0),
        "tables_renarrated": warm.shared.build_report.get("indexed", 0),
        "bit_identical": results(warm.retriever.index) == oracle,
        "open_mode": warm.stats()["storage"]["open_mode"],
    }
    warm.shutdown(drain=True)
    return report


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def report(label: str, r: dict) -> None:
    cw, rec, svc = r["cold_vs_warm"], r["recovery"], r["service"]
    print()
    print(f"Persistence ({label}):")
    print(
        f"  warm start   {cw['speedup']:6.1f}x over cold rebuild at {cw['docs']} docs "
        f"(cold {cw['cold_build_seconds']:.2f}s, warm {cw['warm_open_seconds'] * 1000:.1f} ms, "
        f"publish {cw['publish_seconds'] * 1000:.1f} ms, "
        f"{cw['segment_bytes'] / 1024:.0f} KiB on disk)"
    )
    print(
        f"  transparent  warm rankings bit-identical: {cw['bit_identical']}, "
        f"fsck ok: {cw['fsck_ok']}"
    )
    print(
        f"  recovery     {rec['open_mode']} open in {rec['recovery_seconds'] * 1000:.1f} ms "
        f"({rec['wal_records_replayed']} WAL records replayed), "
        f"bit-identical: {rec['bit_identical']}"
    )
    print(
        f"  service      warm boot {svc['warm_boot_seconds']:.2f}s vs cold "
        f"{svc['cold_boot_seconds']:.2f}s, {svc['tables_restored']} tables restored, "
        f"{svc['tables_renarrated']} re-narrated, bit-identical: {svc['bit_identical']}"
    )


def write_json(label: str, r: dict, path: Path) -> None:
    payload = {"benchmark": "persistence", "mode": label, "results": r}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {path}")


def _assert_criteria(r: dict) -> None:
    cw, rec, svc = r["cold_vs_warm"], r["recovery"], r["service"]
    assert cw["speedup"] >= SPEEDUP_FLOOR, (
        f"warm start is only {cw['speedup']:.1f}x over a cold rebuild at "
        f"{cw['docs']} docs; floor is {SPEEDUP_FLOOR:.0f}x"
    )
    assert cw["bit_identical"], "warm-loaded rankings must be bit-identical"
    assert cw["fsck_ok"] and rec["fsck_ok"]
    assert cw["open_mode"] == "clean"
    assert rec["open_mode"] == "recovered", "a crash-style stop must classify as recovered"
    assert rec["wal_records_replayed"] >= 1
    assert rec["bit_identical"], "recovery must serve the published snapshot"
    assert svc["warm_started"] and svc["bit_identical"]
    assert svc["tables_renarrated"] == 0, "an unchanged lake must re-narrate nothing"
    assert svc["open_mode"] == "clean"


def run_all(docs_n: int, store_dir: Path) -> dict:
    docs = synthetic_docs(docs_n)
    recovery_dir = store_dir.with_name(store_dir.name + "_recovery")
    service_dir = store_dir.with_name(store_dir.name + "_service")
    return {
        "cold_vs_warm": run_cold_vs_warm(docs, store_dir),
        "recovery": run_crash_recovery(docs[: max(docs_n // 10, 200)], recovery_dir),
        "service": run_service_warm_boot(service_dir),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
@pytest.mark.smoke
def test_smoke_persistence(tmp_path):
    """Tiny-N smoke: all four persistence claims on a synthetic corpus."""
    r = run_all(SMOKE_DOCS, tmp_path / "store")
    report("smoke", r)
    write_json("smoke", r, Path("BENCH_persistence.json"))
    _assert_criteria(r)


def test_persistence(benchmark, tmp_path):
    """Full scale: the paper-shape 50k-doc corpus, plus the hot warm-open path."""
    r = run_all(FULL_DOCS, tmp_path / "store")
    report(f"{FULL_DOCS} docs", r)
    write_json("full", r, Path("BENCH_persistence.json"))
    _assert_criteria(r)

    store_dir = tmp_path / "store"
    benchmark(lambda: IndexStore(store_dir).load_index())


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny N, finishes in seconds")
    parser.add_argument("--docs", type=int, default=None, help="synthetic corpus size")
    parser.add_argument(
        "--store-dir", type=Path, default=Path("BENCH_persistence_store"),
        help="store directory (left on disk for scripts/fsck.py)",
    )
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_persistence.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    docs_n = args.docs if args.docs is not None else (SMOKE_DOCS if args.smoke else FULL_DOCS)
    if docs_n < 100:
        parser.error("--docs must be >= 100")
    label = "smoke" if args.smoke else f"{docs_n} docs"

    r = run_all(docs_n, args.store_dir)
    report(label, r)
    write_json(label, r, args.json)
    _assert_criteria(r)
    print(
        f"OK: warm start >= {SPEEDUP_FLOOR:.0f}x, bit-transparent, "
        "crash recovery serves the snapshot, service warm boot re-narrates nothing"
    )


if __name__ == "__main__":
    main()
