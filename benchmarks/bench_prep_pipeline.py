"""Sketch-based discovery vs. exact pairwise comparison, with planted truth.

The claim under test (ROADMAP: sketch-based discovery & preparation):

1. Column-sketch discovery (:mod:`repro.prep`) finds join candidates
   >= 10x faster than exact pairwise distinct-set comparison on a
   synthetic catalog large enough for the quadratic pair cost to bite
   (256 tables, ~1.7k columns).
2. It is not buying speed with recall: every planted FK->PK join is
   recovered by the sketch path (100% of the generator's ground truth),
   and the warm path — profiles fingerprint-cached in the ProfileStore,
   candidates keyed by (lake version, store version) — rediscovers in
   milliseconds with zero profile rebuilds.

Writes ``BENCH_prep_pipeline.json`` (timings + recovery + store
counters) next to the repo root so CI can archive the perf trajectory.
Also runnable standalone:

    PYTHONPATH=src python benchmarks/bench_prep_pipeline.py --smoke
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.datasets.generator import build_planted_catalog
from repro.prep import (
    PreparationPipeline,
    candidate_keys,
    exact_join_candidates,
)

#: Catalog scales: paper-adjacent (default) and CI smoke.  At full scale
#: the exact baseline's quadratic pair cost dominates — which is exactly
#: the regime sketches exist for.
FULL_TABLES = 256
FULL_ROWS = 2_000
SMOKE_TABLES = 8
SMOKE_ROWS = 300

#: Acceptance floors at full scale (smoke only proves the path runs and
#: recovery holds — tiny N cannot show a stable speedup).
SPEEDUP_FLOOR = 10.0
RECOVERY_FLOOR = 1.0  # all planted joins, both scales


def run_discovery(n_tables: int, rows: int, seed: int = 11, reps: int = 1) -> dict:
    """Time cold sketch discovery vs. the exact baseline on one catalog."""
    lake, planted = build_planted_catalog(seed=seed, n_tables=n_tables, rows=rows)
    for table in lake.tables():
        table.as_columns()  # warm the memoized pivots so both paths start equal

    sketch_seconds = float("inf")
    pipeline = None
    for _ in range(max(reps, 1)):
        pipeline = PreparationPipeline(lake)  # fresh store: a cold run
        started = time.perf_counter()
        sketch_candidates = pipeline.join_candidates()
        sketch_seconds = min(sketch_seconds, time.perf_counter() - started)

    started = time.perf_counter()
    exact_candidates = exact_join_candidates(lake)
    exact_seconds = time.perf_counter() - started

    sketch_keys = candidate_keys(sketch_candidates)
    exact_keys = candidate_keys(exact_candidates)
    recovered = sum(1 for p in planted if p in sketch_keys)
    exact_recovered = sum(1 for p in planted if p in exact_keys)

    # Warm path: unchanged lake, warm store -> pure cache reads.
    store_before = pipeline.store.stats()
    started = time.perf_counter()
    warm_candidates = pipeline.join_candidates()
    warm_seconds = time.perf_counter() - started
    store_after = pipeline.store.stats()

    return {
        "n_tables": n_tables,
        "rows": rows,
        "n_columns": sum(len(t.schema) for t in lake.tables()),
        "sketch_seconds": sketch_seconds,
        "exact_seconds": exact_seconds,
        "speedup": exact_seconds / max(sketch_seconds, 1e-9),
        "warm_seconds": warm_seconds,
        "planted": len(planted),
        "recovered": recovered,
        "recovery": recovered / len(planted) if planted else 1.0,
        "exact_recovered": exact_recovered,
        "sketch_candidates": len(sketch_candidates),
        "exact_candidates": len(exact_candidates),
        "warm_candidates": len(warm_candidates),
        "profile_store": store_after,
        "warm_misses": store_after["misses"] - store_before["misses"],
        "pipeline": pipeline.stats(),
    }


def report(label: str, r: dict) -> None:
    print()
    print(f"Prep pipeline ({label}):")
    print(
        f"  catalog      {r['n_tables']} tables, {r['rows']} rows each "
        f"({r['n_columns']} columns)"
    )
    print(
        f"  discovery    sketch {r['sketch_seconds'] * 1000:8.1f} ms   "
        f"exact {r['exact_seconds'] * 1000:8.1f} ms   "
        f"speedup {r['speedup']:5.1f}x"
    )
    print(
        f"  recovery     {r['recovered']}/{r['planted']} planted joins "
        f"(exact baseline: {r['exact_recovered']}/{r['planted']})"
    )
    print(
        f"  warm path    {r['warm_seconds'] * 1000:8.2f} ms   "
        f"({r['warm_misses']} profile rebuilds; store "
        f"{r['profile_store']['hits']} hits / {r['profile_store']['misses']} misses)"
    )


def write_json(label: str, r: dict, path: Path) -> None:
    payload = {"benchmark": "prep_pipeline", "mode": label, "discovery": r}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {path}")


def _assert_recovery(r: dict) -> None:
    assert r["recovery"] >= RECOVERY_FLOOR, (
        f"sketch discovery recovered {r['recovered']}/{r['planted']} planted joins"
    )
    assert r["exact_recovered"] == r["planted"], (
        "exact baseline must recover every planted join (generator contract)"
    )
    assert r["warm_misses"] == 0, (
        f"warm rediscovery rebuilt {r['warm_misses']} profiles; "
        "fingerprint cache should have absorbed all of them"
    )
    assert r["warm_candidates"] == r["sketch_candidates"]


def _assert_speedup(r: dict) -> None:
    assert r["speedup"] >= SPEEDUP_FLOOR, (
        f"expected >= {SPEEDUP_FLOOR}x over exact pairwise comparison, "
        f"got {r['speedup']:.1f}x"
    )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
@pytest.mark.smoke
def test_smoke_prep_pipeline():
    """Tiny-N smoke: discovery runs, recovery is total, JSON is emitted."""
    r = run_discovery(SMOKE_TABLES, SMOKE_ROWS)
    report("smoke", r)
    write_json("smoke", r, Path("BENCH_prep_pipeline.json"))
    _assert_recovery(r)


def test_prep_pipeline_speedup(benchmark):
    """Full scale: >= 10x over exact comparison, all planted joins found."""
    r = run_discovery(FULL_TABLES, FULL_ROWS, reps=2)
    report(f"{FULL_TABLES} tables", r)
    write_json("full", r, Path("BENCH_prep_pipeline.json"))
    _assert_recovery(r)
    _assert_speedup(r)
    lake, _ = build_planted_catalog(seed=11, n_tables=SMOKE_TABLES, rows=SMOKE_ROWS)
    benchmark(lambda: PreparationPipeline(lake).join_candidates())


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny N, finishes in seconds")
    parser.add_argument("--tables", type=int, default=None, help="catalog table count")
    parser.add_argument("--rows", type=int, default=None, help="rows per table")
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_prep_pipeline.json"),
        help="where to write the results JSON",
    )
    args = parser.parse_args()

    if args.smoke:
        n_tables = args.tables if args.tables is not None else SMOKE_TABLES
        rows = args.rows if args.rows is not None else SMOKE_ROWS
        label = "smoke"
    else:
        n_tables = args.tables if args.tables is not None else FULL_TABLES
        rows = args.rows if args.rows is not None else FULL_ROWS
        label = f"{n_tables} tables"
    if n_tables < 2 or rows < 10:
        parser.error("--tables must be >= 2 and --rows >= 10")

    r = run_discovery(n_tables, rows, reps=1 if args.smoke else 2)
    report(label, r)
    write_json(label, r, args.json)
    _assert_recovery(r)
    if not args.smoke and n_tables >= FULL_TABLES:
        _assert_speedup(r)
        print(f"OK: >= {SPEEDUP_FLOOR:.0f}x over exact pairwise comparison")
    elif args.smoke:
        print("note: the speedup floor is asserted only at full scale")


if __name__ == "__main__":
    main()
