"""Serving resilience under injected faults: goodput, shedding, reindex.

The fault-tolerance claims under test (ROADMAP's serving north star):

1. **Goodput** — under a seeded 10% LLM fault rate, retry + circuit
   breaking keeps >= 90% of turns succeeding; the same schedule with
   retries disabled shows why (every scheduled fault becomes a failed
   turn).
2. **Admission control** — overload sheds instead of queueing: with a
   small pending-turn bound, excess turns fail fast with
   ``ServiceOverloaded`` and the pending queue never exceeds its bound.
3. **Zero-downtime reindex** — snapshot-swap reindexing mid-traffic
   fails no turns, and a table added to the lake becomes retrievable.
4. **Bit-transparency** — a no-fault :class:`FaultPlan` is the oracle:
   the wrapped service produces byte-identical responses to an unwrapped
   one.

Writes ``BENCH_resilience.json``.  Also runnable standalone:

    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke
"""

import argparse
import json
import threading
import time
from pathlib import Path

import pytest

from repro.datasets import build_procurement_lake
from repro.relational.table import Table
from repro.service import (
    FaultPlan,
    FaultSpec,
    PneumaService,
    ResilienceConfig,
    RetryPolicy,
    ServiceOverloaded,
)

CONVERSATION = [
    "What is the total purchase order cost impact of the new tariffs by supplier?",
    "Now restrict it to orders from ACME.",
]

GOODPUT_FLOOR = 0.90
FAULT_RATE = 0.10
FAULT_SEED = 20260807


# ----------------------------------------------------------------------
# Scenario 1: goodput under a seeded 10% LLM fault rate
# ----------------------------------------------------------------------
def run_faulted_workload(lake, sessions: int, retries: bool) -> dict:
    """Drive the standard conversation under injected LLM faults."""
    plan = FaultPlan(seed=FAULT_SEED, llm=FaultSpec(rate=FAULT_RATE))
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3 if retries else 1, base_delay_seconds=0.1)
    )
    attempted = 0
    succeeded = 0
    started = time.perf_counter()
    with PneumaService(lake, max_workers=8, resilience=resilience, fault_plan=plan) as service:
        session_ids = [service.open_session(user=f"u{i}") for i in range(sessions)]
        for message in CONVERSATION:
            futures = [(sid, service.post_turn(sid, message, wait=False)) for sid in session_ids]
            for _sid, future in futures:
                attempted += 1
                try:
                    future.result()
                    succeeded += 1
                except Exception:  # noqa: BLE001 - failed turns are the datum
                    pass
        stats = service.stats()
    return {
        "sessions": sessions,
        "attempted": attempted,
        "succeeded": succeeded,
        "goodput": succeeded / attempted,
        "retries": stats["retries"],
        "turns_failed": stats["turns_failed"],
        "llm_faults": stats["faults"].get("llm", {}).get("faults", 0),
        "llm_calls": stats["faults"].get("llm", {}).get("calls", 0),
        "elapsed": time.perf_counter() - started,
    }


# ----------------------------------------------------------------------
# Scenario 2: overload sheds instead of queueing
# ----------------------------------------------------------------------
def run_overload(lake, sessions: int, max_pending: int) -> dict:
    """Fire every turn at once against a small admission bound."""
    resilience = ResilienceConfig(max_pending_turns=max_pending)
    with PneumaService(
        lake, max_workers=2, llm_latency_factor=3e-3, resilience=resilience
    ) as service:
        session_ids = [service.open_session(user=f"u{i}") for i in range(sessions)]
        futures = []
        shed = 0
        for sid in session_ids:
            try:
                futures.append(service.post_turn(sid, CONVERSATION[0], wait=False))
            except ServiceOverloaded:
                shed += 1
        for future in futures:
            future.result()
        stats = service.stats()
    return {
        "offered": sessions,
        "admitted": len(futures),
        "shed": shed,
        "peak_pending": stats["admission"]["peak_pending_turns"],
        "max_pending": max_pending,
        "turns_shed": stats["turns_shed"],
        "p99_seconds": stats["turn_p99_seconds"],
    }


# ----------------------------------------------------------------------
# Scenario 3: snapshot-swap reindex under live traffic
# ----------------------------------------------------------------------
def run_reindex_under_traffic(lake, sessions: int, swaps: int) -> dict:
    with PneumaService(lake, max_workers=4) as service:
        session_ids = [service.open_session(user=f"u{i}") for i in range(sessions)]
        stop = threading.Event()
        errors = []
        served = [0] * len(session_ids)

        def chatter(slot: int, sid: str):
            while not stop.is_set():
                try:
                    service.post_turn(sid, CONVERSATION[0])
                    served[slot] += 1
                except Exception as exc:  # noqa: BLE001 - the datum
                    errors.append(repr(exc))
                    return

        threads = [
            threading.Thread(target=chatter, args=(slot, sid))
            for slot, sid in enumerate(session_ids)
        ]
        for thread in threads:
            thread.start()
        swap_seconds = []
        try:
            for i in range(swaps):
                if i == swaps - 1:
                    # Last swap picks up a table added mid-traffic.
                    lake.register(
                        Table.from_columns(
                            "ocean_freight_shipments",
                            {
                                "shipment_id": [1, 2, 3],
                                "vessel_name": ["Ever Given", "Maersk Alabama", "MSC Oscar"],
                                "container_count": [120, 45, 300],
                            },
                        )
                    )
                report = service.reindex()
                swap_seconds.append(report["swap_seconds"])
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=120)
        hits = service.batch_retrieve(["ocean freight shipments by vessel"])[0].documents
        stats = service.stats()
    return {
        "swaps": swaps,
        "turns_during": sum(served),
        "errors": errors,
        "turns_failed": stats["turns_failed"],
        "new_table_retrievable": any(
            d.doc_id == "table:ocean_freight_shipments" for d in hits
        ),
        "max_swap_seconds": max(swap_seconds),
        "generation": stats["index_gate"]["generation"],
    }


# ----------------------------------------------------------------------
# Scenario 4: the no-fault plan is bit-transparent (the oracle)
# ----------------------------------------------------------------------
def run_transparency(sessions: int) -> dict:
    def transcript(fault_plan):
        # A fresh lake per run: the comparison must see identical inputs.
        out = []
        with PneumaService(
            build_procurement_lake(), max_workers=4, fault_plan=fault_plan
        ) as service:
            session_ids = [service.open_session(user=f"u{i}") for i in range(sessions)]
            for message in CONVERSATION:
                for sid in session_ids:
                    response = service.post_turn(sid, message)
                    out.append((response.message, response.state_view, response.degraded))
        return out

    plain = transcript(None)
    oracle = transcript(FaultPlan.none(seed=FAULT_SEED))
    return {
        "turns": len(plain),
        "identical": plain == oracle,
        "degraded_turns": sum(1 for _, _, degraded in oracle if degraded),
    }


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def report(label: str, r: dict) -> None:
    faulted, baseline = r["faulted"], r["no_retry_baseline"]
    overload, reindex, oracle = r["overload"], r["reindex"], r["transparency"]
    print()
    print(f"Serving resilience ({label}):")
    print(
        f"  goodput      {faulted['goodput']:6.1%} with retries "
        f"({faulted['succeeded']}/{faulted['attempted']} turns, "
        f"{faulted['llm_faults']}/{faulted['llm_calls']} LLM calls faulted, "
        f"{faulted['retries']} retries)"
    )
    print(
        f"  no-retry     {baseline['goodput']:6.1%} on the same schedule "
        f"({baseline['turns_failed']} failed turns)"
    )
    print(
        f"  overload     {overload['shed']}/{overload['offered']} shed at bound "
        f"{overload['max_pending']} (peak pending {overload['peak_pending']}, "
        f"p99 {overload['p99_seconds'] * 1000:.1f} ms)"
    )
    print(
        f"  reindex      {reindex['swaps']} swaps under {reindex['turns_during']} live turns, "
        f"{len(reindex['errors'])} errors, max swap {reindex['max_swap_seconds'] * 1000:.1f} ms, "
        f"new table retrievable: {reindex['new_table_retrievable']}"
    )
    print(
        f"  oracle       no-fault plan bit-identical over {oracle['turns']} turns: "
        f"{oracle['identical']}"
    )


def write_json(label: str, r: dict, path: Path) -> None:
    payload = {"benchmark": "resilience", "mode": label, "results": r}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {path}")


def _assert_criteria(r: dict) -> None:
    faulted, baseline = r["faulted"], r["no_retry_baseline"]
    overload, reindex, oracle = r["overload"], r["reindex"], r["transparency"]
    assert faulted["goodput"] >= GOODPUT_FLOOR, (
        f"goodput {faulted['goodput']:.1%} under {FAULT_RATE:.0%} LLM faults; "
        f"floor is {GOODPUT_FLOOR:.0%}"
    )
    assert faulted["retries"] > 0, "the schedule injected faults, so retries must fire"
    assert faulted["goodput"] > baseline["goodput"], (
        "retries must beat the no-retry baseline on the same fault schedule"
    )
    assert overload["shed"] > 0, "overload run must actually shed turns"
    assert overload["shed"] == overload["turns_shed"], "shed accounting must agree"
    assert overload["peak_pending"] <= overload["max_pending"], (
        f"pending queue reached {overload['peak_pending']}, "
        f"bound is {overload['max_pending']}"
    )
    assert reindex["errors"] == [], f"reindex under traffic failed turns: {reindex['errors']}"
    assert reindex["turns_failed"] == 0
    assert reindex["new_table_retrievable"], "post-swap index must serve the new table"
    assert oracle["identical"], "a no-fault FaultPlan must be bit-transparent"
    assert oracle["degraded_turns"] == 0


def run_all(sessions: int, swaps: int) -> dict:
    return {
        "faulted": run_faulted_workload(build_procurement_lake(), sessions, retries=True),
        "no_retry_baseline": run_faulted_workload(
            build_procurement_lake(), sessions, retries=False
        ),
        "overload": run_overload(build_procurement_lake(), sessions=max(sessions, 12), max_pending=4),
        "reindex": run_reindex_under_traffic(build_procurement_lake(), sessions=4, swaps=swaps),
        "transparency": run_transparency(sessions=2),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
@pytest.mark.smoke
def test_smoke_resilience():
    """Tiny-N smoke: all four resilience claims on the procurement lake."""
    r = run_all(sessions=8, swaps=2)
    report("smoke", r)
    write_json("smoke", r, Path("BENCH_resilience.json"))
    _assert_criteria(r)


def test_resilience(benchmark):
    """Full scale: more sessions, more swaps, plus the hot retry path."""
    r = run_all(sessions=24, swaps=3)
    report("24 sessions", r)
    write_json("full", r, Path("BENCH_resilience.json"))
    _assert_criteria(r)

    # Time the faulted-but-retried serving path end to end.
    lake = build_procurement_lake()
    benchmark(lambda: run_faulted_workload(lake, sessions=4, retries=True))


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny N, finishes in seconds")
    parser.add_argument("--sessions", type=int, default=None, help="faulted-workload sessions")
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_resilience.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    if args.smoke:
        sessions = args.sessions if args.sessions is not None else 8
        swaps = 2
        label = "smoke"
    else:
        sessions = args.sessions if args.sessions is not None else 24
        swaps = 3
        label = f"{sessions} sessions"
    if sessions < 2:
        parser.error("--sessions must be >= 2")

    r = run_all(sessions=sessions, swaps=swaps)
    report(label, r)
    write_json(label, r, args.json)
    _assert_criteria(r)
    print(
        f"OK: goodput >= {GOODPUT_FLOOR:.0%} under {FAULT_RATE:.0%} faults, "
        "bounded queue, zero-downtime reindex, bit-transparent oracle"
    )


if __name__ == "__main__":
    main()
