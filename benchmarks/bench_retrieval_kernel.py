"""Retrieval kernel throughput: the array-native BM25/HNSW/hybrid kernel
vs. the legacy pure-Python kernel (``--legacy`` classes).

The claim under test (ROADMAP's "as fast as the hardware allows" applied
to the per-turn retrieval cost every Conductor session pays):

1. The compiled BM25 kernel (interned int doc ids, per-term numpy
   postings, dense-accumulator scoring, argpartition top-k, max-score
   early exit) beats the dict-at-a-time :class:`LegacyBM25Index` by
   >= 3x on top-k search over a >= 50k-document corpus.
2. The matrix-backed HNSW kernel (contiguous vector matrix, vectorized
   neighbor evaluation, per-thread visited tags, CSR links after
   ``compile()``) beats :class:`LegacyHNSWIndex` by >= 3x on batch
   search.
3. Frozen-``HybridIndex`` fusion over int ids beats the legacy hybrid by
   >= 3x on ``search_batch``.
4. Building the kernel index costs no more than 1.5x the legacy build
   (in practice the HNSW half makes it *faster*).

Every measurement double-checks equivalence first: the kernel must
reproduce the legacy rankings identically (scores/distances within
1e-9) on the exact workload being timed.

Writes ``BENCH_retrieval_kernel.json`` (timings + speedups) next to the
repo root so CI can archive the perf trajectory.  Also runnable
standalone:

    PYTHONPATH=src python benchmarks/bench_retrieval_kernel.py --smoke
"""

import argparse
import json
import random
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ann import HNSWIndex, LegacyHNSWIndex
from repro.retriever import HybridIndex
from repro.text import BM25Index, LegacyBM25Index

#: Workload scales: paper-adjacent (default) and CI smoke.  The BM25
#: corpus must be >= 50k docs at full scale (the acceptance floor).
FULL = {
    "bm25_docs": 50_000,
    "bm25_vocab": 1_200,
    "bm25_queries": 200,
    "hnsw_vectors": 4_000,
    "hnsw_dim": 48,
    "hnsw_queries": 200,
    "hybrid_docs": 5_000,
    "hybrid_vocab": 800,
    "hybrid_queries": 150,
    "k": 10,
}
SMOKE = {
    "bm25_docs": 1_500,
    "bm25_vocab": 300,
    "bm25_queries": 30,
    "hnsw_vectors": 300,
    "hnsw_dim": 16,
    "hnsw_queries": 20,
    "hybrid_docs": 300,
    "hybrid_vocab": 120,
    "hybrid_queries": 20,
    "k": 5,
}

#: Acceptance floors, asserted at full scale only (smoke proves the path
#: runs and the kernels agree — tiny N cannot show stable speedups).
SPEEDUP_FLOORS = {"bm25": 3.0, "hnsw": 3.0, "hybrid": 3.0}
BUILD_CEILING = 1.5


# ----------------------------------------------------------------------
# Synthetic workload
# ----------------------------------------------------------------------
def synth_corpus(n_docs: int, vocab_size: int, seed: int) -> list:
    """Zipf-ish ``(doc_id, text)`` pairs over a stem-stable vocabulary."""
    rng = random.Random(seed)
    vocab = [f"t{i}x" for i in range(vocab_size)]
    weights = [1.0 / (i + 1) ** 0.7 for i in range(vocab_size)]
    return [
        (f"doc{i}", " ".join(rng.choices(vocab, weights=weights, k=rng.randint(6, 14))))
        for i in range(n_docs)
    ]


def synth_queries(docs: list, n: int, seed: int) -> list:
    """Queries sampled from real documents (so postings are actually hit)."""
    rng = random.Random(seed + 4242)
    queries = []
    for _ in range(n):
        _, text = docs[rng.randrange(len(docs))]
        words = text.split()
        queries.append(" ".join(rng.sample(words, min(len(words), rng.randint(2, 5)))))
    return queries


def best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# Equivalence checks (identical rankings, scores within 1e-9)
# ----------------------------------------------------------------------
def assert_same_rankings(legacy_lists, kernel_lists, what: str) -> None:
    assert len(legacy_lists) == len(kernel_lists), what
    for legacy_hits, kernel_hits in zip(legacy_lists, kernel_lists):
        legacy_ids = [getattr(h, "doc_id", None) or getattr(h, "key") for h in legacy_hits]
        kernel_ids = [getattr(h, "doc_id", None) or getattr(h, "key") for h in kernel_hits]
        assert legacy_ids == kernel_ids, f"{what}: rankings diverge ({legacy_ids[:3]} vs {kernel_ids[:3]})"
        for lhit, khit in zip(legacy_hits, kernel_hits):
            lscore = getattr(lhit, "score", None)
            lscore = lscore if lscore is not None else lhit.distance
            kscore = getattr(khit, "score", None)
            kscore = kscore if kscore is not None else khit.distance
            assert abs(lscore - kscore) <= 1e-9 * max(1.0, abs(lscore)), (
                f"{what}: scores diverge beyond 1e-9 ({lscore} vs {kscore})"
            )


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def bench_bm25(cfg: dict, reps: int) -> dict:
    docs = synth_corpus(cfg["bm25_docs"], cfg["bm25_vocab"], seed=11)
    queries = synth_queries(docs, cfg["bm25_queries"], seed=11)
    k = cfg["k"]

    # Build timings are best-of (fresh index per rep): tokenization noise
    # dominates a single add_batch pass and can swamp the ratio.
    def build_legacy():
        index = LegacyBM25Index()
        index.add_batch(docs)
        return index

    def build_kernel():
        index = BM25Index()
        index.add_batch(docs)
        index.compile()
        return index

    legacy_build = best_of(build_legacy, reps)
    kernel_build = best_of(build_kernel, reps)
    legacy = build_legacy()
    kernel = build_kernel()

    assert_same_rankings(
        legacy.search_batch(queries, k=k), kernel.search_batch(queries, k=k), "bm25"
    )
    legacy_search = best_of(lambda: legacy.search_batch(queries, k=k), reps)
    kernel_search = best_of(lambda: kernel.search_batch(queries, k=k), reps)
    return {
        "docs": cfg["bm25_docs"],
        "queries": cfg["bm25_queries"],
        "k": k,
        "legacy_build_s": legacy_build,
        "kernel_build_s": kernel_build,
        "build_ratio": kernel_build / max(legacy_build, 1e-9),
        "legacy_search_ms": legacy_search * 1000,
        "kernel_search_ms": kernel_search * 1000,
        "speedup": legacy_search / max(kernel_search, 1e-9),
    }


def bench_hnsw(cfg: dict, reps: int) -> dict:
    rng = np.random.default_rng(23)
    vectors = rng.normal(size=(cfg["hnsw_vectors"], cfg["hnsw_dim"]))
    items = [(f"v{i}", vec) for i, vec in enumerate(vectors)]
    queries = rng.normal(size=(cfg["hnsw_queries"], cfg["hnsw_dim"]))
    k = cfg["k"]

    legacy = LegacyHNSWIndex(dim=cfg["hnsw_dim"], m=8, ef_construction=64, seed=7)
    legacy_build = timed(lambda: legacy.add_batch(items))
    kernel = HNSWIndex(dim=cfg["hnsw_dim"], m=8, ef_construction=64, seed=7)
    kernel_build = timed(lambda: (kernel.add_batch(items), kernel.compile()))

    assert_same_rankings(
        legacy.search_batch(queries, k=k), kernel.search_batch(queries, k=k), "hnsw"
    )
    legacy_search = best_of(lambda: legacy.search_batch(queries, k=k), reps)
    kernel_search = best_of(lambda: kernel.search_batch(queries, k=k), reps)
    return {
        "vectors": cfg["hnsw_vectors"],
        "dim": cfg["hnsw_dim"],
        "queries": cfg["hnsw_queries"],
        "k": k,
        "legacy_build_s": legacy_build,
        "kernel_build_s": kernel_build,
        "build_ratio": kernel_build / max(legacy_build, 1e-9),
        "legacy_search_ms": legacy_search * 1000,
        "kernel_search_ms": kernel_search * 1000,
        "speedup": legacy_search / max(kernel_search, 1e-9),
    }


def bench_hybrid(cfg: dict, reps: int) -> dict:
    docs = synth_corpus(cfg["hybrid_docs"], cfg["hybrid_vocab"], seed=37)
    queries = synth_queries(docs, cfg["hybrid_queries"], seed=37)
    k = max(cfg["k"] // 2, 3)

    legacy = HybridIndex(dim=64, legacy=True)
    legacy_build = timed(lambda: (legacy.add_batch(docs), legacy.freeze()))
    kernel = HybridIndex(dim=64)
    kernel_build = timed(lambda: (kernel.add_batch(docs), kernel.freeze()))

    assert_same_rankings(
        legacy.search_batch(queries, k=k), kernel.search_batch(queries, k=k), "hybrid"
    )
    legacy_search = best_of(lambda: legacy.search_batch(queries, k=k), reps)
    kernel_search = best_of(lambda: kernel.search_batch(queries, k=k), reps)
    return {
        "docs": cfg["hybrid_docs"],
        "queries": cfg["hybrid_queries"],
        "k": k,
        "legacy_build_s": legacy_build,
        "kernel_build_s": kernel_build,
        "build_ratio": kernel_build / max(legacy_build, 1e-9),
        "legacy_search_ms": legacy_search * 1000,
        "kernel_search_ms": kernel_search * 1000,
        "speedup": legacy_search / max(kernel_search, 1e-9),
    }


def run_all(cfg: dict, reps: int) -> dict:
    return {
        "bm25": bench_bm25(cfg, reps),
        "hnsw": bench_hnsw(cfg, reps),
        "hybrid": bench_hybrid(cfg, reps),
    }


def report(label: str, results: dict) -> None:
    print()
    print(f"Retrieval kernel ({label}):")
    for name, r in results.items():
        print(
            f"  {name:7s} legacy {r['legacy_search_ms']:9.1f} ms   "
            f"kernel {r['kernel_search_ms']:9.1f} ms   "
            f"speedup {r['speedup']:5.1f}x   "
            f"build {r['kernel_build_s']:.2f}s vs {r['legacy_build_s']:.2f}s "
            f"({r['build_ratio']:.2f}x)"
        )


def write_json(label: str, results: dict, path: Path) -> None:
    payload = {"benchmark": "retrieval_kernel", "mode": label, "workloads": results}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {path}")


def _assert_floors(results: dict) -> None:
    for name, floor in SPEEDUP_FLOORS.items():
        speedup = results[name]["speedup"]
        assert speedup >= floor, (
            f"{name}: expected >= {floor}x over the legacy kernel, got {speedup:.2f}x"
        )
        ratio = results[name]["build_ratio"]
        assert ratio <= BUILD_CEILING, (
            f"{name}: kernel build {ratio:.2f}x legacy exceeds the {BUILD_CEILING}x ceiling"
        )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
@pytest.mark.smoke
def test_smoke_retrieval_kernel():
    """Tiny-N smoke: kernels agree with the legacy oracle, JSON is emitted."""
    results = run_all(SMOKE, reps=1)
    report("smoke", results)
    write_json("smoke", results, Path("BENCH_retrieval_kernel.json"))


def test_retrieval_kernel_speedup(benchmark):
    """Full scale: >= 3x on BM25 (50k docs), HNSW, and hybrid search."""
    results = run_all(FULL, reps=3)
    report("full", results)
    write_json("full", results, Path("BENCH_retrieval_kernel.json"))
    _assert_floors(results)
    docs = synth_corpus(2_000, 400, seed=99)
    index = HybridIndex(dim=64)
    index.add_batch(docs)
    index.freeze()
    queries = synth_queries(docs, 20, seed=99)
    benchmark(index.search_batch, queries, 5)


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny N, finishes in seconds")
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_retrieval_kernel.json"),
        help="where to write the results JSON",
    )
    args = parser.parse_args()

    label = "smoke" if args.smoke else "full"
    results = run_all(SMOKE if args.smoke else FULL, reps=1 if args.smoke else 3)
    report(label, results)
    write_json(label, results, args.json)
    if args.smoke:
        print("note: speedup floors asserted only at full scale")
    else:
        _assert_floors(results)
        print("OK: >= 3x over the legacy kernel on BM25, HNSW, and hybrid search")


if __name__ == "__main__":
    main()
