"""Pattern coverage over the planted-scenario grid, with stress floors.

The claim under test (ROADMAP: coverage-driven scenario generation):

1. The Seeker converges on **every** cell of the KU x hop-depth x intent
   grid (24 cells) when the catalog is quiet — 100% no-stress coverage,
   each cell graded against its planted chain (right tables retrieved,
   reified schema aligned to the chain, materialized rows equal to the
   planted join oracle).
2. The coverage report is *deterministic*: the same seed produces a
   byte-identical report across two full runs.
3. Stress does not collapse coverage: noisy near-duplicate narrations,
   mid-session schema drift (non-KK cells), and append-restart catalogs
   (delta overlay across a warm start) each hold >= 90% of their grids.

Writes ``BENCH_scenario_coverage.json`` (per-grid coverage + timings)
next to the repo root so CI can archive the perf trajectory.  Also
runnable standalone:

    PYTHONPATH=src python benchmarks/bench_scenario_coverage.py --smoke
"""

import argparse
import json
import tempfile
import time
from pathlib import Path

import pytest

from repro.scenarios import enumerate_grid, render_grid, report_to_json, run_grid

SEED = 7

#: Stress grids: drift renames a request column after turn 1, which can
#: only perturb cells that have not already converged on turn 1 (non-KK);
#: append restarts the service between catalog growth and the session,
#: which only matters when rows are re-materialized (enrich intent).
STRESS_FLOOR = 0.9
NO_STRESS_FLOOR = 1.0

#: CI smoke: one cell per KU code, still crossing both intents and
#: several hop depths, plus one noisy cell — proves the path end to end
#: without the full grid's runtime.
SMOKE_CELL_IDS = [
    "KK-1hop-enrich",
    "KU-1hop-discover",
    "UK-2hop-enrich",
    "UU-1hop-discover",
]


def select_cells(stress: str, cell_ids=None):
    cells = enumerate_grid()
    if cell_ids is not None:
        cells = [c for c in cells if c.cell_id in set(cell_ids)]
    if stress == "drift":
        cells = [c for c in cells if not (c.endpoint_known and c.relation_known)]
    if stress == "append":
        cells = [c for c in cells if c.intent == "enrich"]
    return cells


def run_coverage(stress: str, cell_ids=None, seed: int = SEED) -> dict:
    """Run one stress grid and summarize it for the bench JSON."""
    cells = select_cells(stress, cell_ids)
    started = time.perf_counter()
    if stress == "append":
        with tempfile.TemporaryDirectory(prefix="bench-scenario-") as root:
            report = run_grid(cells=cells, seed=seed, stress=stress, storage_root=root)
    else:
        report = run_grid(cells=cells, seed=seed, stress=stress)
    seconds = time.perf_counter() - started
    return {
        "stress": stress,
        "cells_total": len(report.cells),
        "cells_converged": sum(1 for c in report.cells if c.converged),
        "coverage": round(report.coverage, 6),
        "failing": [c.cell_id for c in report.failing()],
        "seconds": seconds,
        "rendered": render_grid(report),
    }


def check_determinism(cell_ids=None, seed: int = SEED) -> dict:
    """Two same-seed runs of the quiet grid must serialize identically."""
    cells = select_cells("none", cell_ids)
    first = report_to_json(run_grid(cells=cells, seed=seed))
    second = report_to_json(run_grid(cells=cells, seed=seed))
    return {
        "bytes": len(first),
        "identical": first == second,
    }


def run_suite(cell_ids=None, stresses=("none", "noisy", "drift", "append")) -> dict:
    grids = {stress: run_coverage(stress, cell_ids) for stress in stresses}
    return {"grids": grids, "determinism": check_determinism(cell_ids)}


def report(label: str, r: dict) -> None:
    print()
    print(f"Scenario coverage ({label}):")
    for stress, grid in r["grids"].items():
        print(
            f"  {stress:<8} {grid['cells_converged']}/{grid['cells_total']} cells "
            f"({100 * grid['coverage']:.0f}%) in {grid['seconds']:.1f}s"
        )
        for cell_id in grid["failing"]:
            print(f"           FAIL {cell_id}")
    det = r["determinism"]
    print(
        f"  report   {'byte-identical' if det['identical'] else 'DIVERGED'} "
        f"across two seed-{SEED} runs ({det['bytes']} bytes)"
    )


def write_json(label: str, r: dict, path: Path) -> None:
    payload = {
        "benchmark": "scenario_coverage",
        "mode": label,
        "determinism": r["determinism"],
        "grids": {
            stress: {k: v for k, v in grid.items() if k != "rendered"}
            for stress, grid in r["grids"].items()
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {path}")


def _assert_coverage(r: dict) -> None:
    quiet = r["grids"]["none"]
    assert quiet["coverage"] >= NO_STRESS_FLOOR, (
        f"no-stress grid must fully converge; failing cells: {quiet['failing']}"
    )
    for stress, grid in r["grids"].items():
        if stress == "none":
            continue
        assert grid["coverage"] >= STRESS_FLOOR, (
            f"{stress} grid coverage {grid['coverage']:.2f} < {STRESS_FLOOR}; "
            f"failing cells: {grid['failing']}"
        )
    assert r["determinism"]["identical"], (
        "same-seed coverage reports must be byte-identical"
    )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
@pytest.mark.smoke
def test_smoke_scenario_coverage():
    """Reduced grid: every KU code converges, report stays deterministic."""
    r = run_suite(cell_ids=SMOKE_CELL_IDS, stresses=("none", "noisy"))
    report("smoke", r)
    write_json("smoke", r, Path("BENCH_scenario_coverage.json"))
    _assert_coverage(r)


def test_scenario_coverage_full_grid():
    """Full grid: 24/24 quiet cells, stress floors, byte-stable report."""
    r = run_suite()
    report("full", r)
    write_json("full", r, Path("BENCH_scenario_coverage.json"))
    _assert_coverage(r)


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced grid, finishes in seconds"
    )
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_scenario_coverage.json"),
        help="where to write the results JSON",
    )
    args = parser.parse_args()

    if args.smoke:
        r = run_suite(cell_ids=SMOKE_CELL_IDS, stresses=("none", "noisy"))
        label = "smoke"
    else:
        r = run_suite()
        label = "full"
    report(label, r)
    print()
    print(r["grids"]["none"]["rendered"])
    write_json(label, r, args.json)
    _assert_coverage(r)
    print("OK: coverage floors held and the report is deterministic")


if __name__ == "__main__":
    main()
