"""Serving-layer throughput: concurrent sessions vs. sequential, warm caches.

The PneumaService claim under test (see ROADMAP's scaling north star):

1. Turn work is dominated by LLM/tool waits (network-bound in production,
   simulated here by :class:`SimulatedLatencyClock`), so running N
   sessions on a thread pool multiplies sessions/sec — ≥ 4x for 8
   concurrent sessions vs. the same workload through one worker.
2. Re-indexing an unchanged catalog through the fingerprint-keyed caches
   is near-free — ≥ 10x faster than the cold narrate/embed/insert build.

Reports sessions/sec and p50/p95 turn latency.  Also runnable standalone:

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke
"""

import argparse
import time

import pytest

from repro.datasets import build_procurement_lake, load_environment
from repro.retriever import PneumaRetriever
from repro.service import PneumaService

#: One virtual second of LLM/tool latency costs this many real seconds
#: (36 ms per LLM call at the paper's 12 s/call).  Large enough that the
#: network wait dominates a turn — as it does in production, where a real
#: LLM call costs seconds — small enough that the bench stays quick.
LATENCY_FACTOR = 3e-3

CONVERSATION = [
    "What is the total purchase order cost impact of the new tariffs by supplier?",
    "Now restrict it to orders from ACME.",
]


def run_workload(lake, sessions: int, max_workers: int, latency_factor: float = LATENCY_FACTOR):
    """Drive ``sessions`` two-turn conversations; returns timing stats.

    ``max_workers=1`` is the sequential baseline: identical code path,
    zero overlap.
    """
    with PneumaService(
        lake, max_workers=max_workers, llm_latency_factor=latency_factor
    ) as service:
        started = time.perf_counter()
        session_ids = [service.open_session(user=f"u{i}") for i in range(sessions)]
        for turn_index in range(len(CONVERSATION)):
            futures = [
                service.post_turn(sid, CONVERSATION[turn_index], wait=False)
                for sid in session_ids
            ]
            for future in futures:
                future.result()
        for sid in session_ids:
            service.close_session(sid)
        elapsed = time.perf_counter() - started
        stats = service.stats()
    return {
        "elapsed": elapsed,
        "sessions_per_second": sessions / elapsed,
        "turns_served": stats["turns_served"],
        "p50": stats["turn_p50_seconds"],
        "p95": stats["turn_p95_seconds"],
    }


def measure_reindex(lake):
    """Cold build vs. warm re-index of the same, unchanged catalog."""
    started = time.perf_counter()
    retriever = PneumaRetriever(lake)
    cold = time.perf_counter() - started
    started = time.perf_counter()
    report = retriever.reindex()
    warm = time.perf_counter() - started
    assert report["indexed"] == 0, "catalog did not change; nothing should re-index"
    return cold, warm


def report_throughput(label, sequential, concurrent, cold, warm):
    speedup = concurrent["sessions_per_second"] / sequential["sessions_per_second"]
    print()
    print(f"Service throughput ({label}):")
    print(
        f"  sequential   {sequential['sessions_per_second']:7.2f} sessions/s  "
        f"p50 {sequential['p50']*1000:7.1f} ms  p95 {sequential['p95']*1000:7.1f} ms"
    )
    print(
        f"  concurrent   {concurrent['sessions_per_second']:7.2f} sessions/s  "
        f"p50 {concurrent['p50']*1000:7.1f} ms  p95 {concurrent['p95']*1000:7.1f} ms"
    )
    print(f"  speedup      {speedup:7.2f}x")
    print(f"  cold index   {cold*1000:7.1f} ms")
    print(f"  warm reindex {warm*1000:7.3f} ms  ({cold/max(warm, 1e-9):.0f}x faster)")
    return speedup


def _assert_criteria(speedup, cold, warm):
    assert speedup >= 4.0, f"expected >= 4x concurrent speedup, got {speedup:.2f}x"
    assert cold >= 10.0 * warm, (
        f"expected warm reindex >= 10x faster, got {cold / max(warm, 1e-9):.1f}x"
    )


@pytest.mark.smoke
def test_smoke_service_throughput():
    """Tiny-N smoke: 8 sessions on the 3-table procurement lake."""
    lake = build_procurement_lake()
    sequential = run_workload(lake, sessions=8, max_workers=1)
    concurrent = run_workload(lake, sessions=8, max_workers=8)
    cold, warm = measure_reindex(load_environment(scale=0.02).lake)
    speedup = report_throughput("smoke", sequential, concurrent, cold, warm)
    _assert_criteria(speedup, cold, warm)


def test_service_throughput(benchmark):
    """Paper-adjacent scale: 16 sessions over the environment lake."""
    dataset = load_environment(scale=0.05)
    sequential = run_workload(dataset.lake, sessions=16, max_workers=1)
    concurrent = run_workload(dataset.lake, sessions=16, max_workers=8)
    cold, warm = measure_reindex(dataset.lake)
    speedup = report_throughput("16 sessions, environment lake", sequential, concurrent, cold, warm)
    _assert_criteria(speedup, cold, warm)
    assert concurrent["p95"] >= concurrent["p50"] > 0

    # Time the hot serving primitive itself: one batched discovery pass.
    with PneumaService(dataset.lake, max_workers=8) as service:
        queries = [q.text for q in dataset.questions[:8]]
        benchmark(service.batch_retrieve, queries)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny N, finishes in seconds")
    parser.add_argument("--sessions", type=int, default=None, help="number of sessions")
    parser.add_argument("--workers", type=int, default=8, help="worker threads")
    args = parser.parse_args()

    if args.smoke:
        lake = build_procurement_lake()
        sessions = args.sessions if args.sessions is not None else 8
        reindex_lake = load_environment(scale=0.02).lake
        label = "smoke"
    else:
        dataset = load_environment(scale=0.05)
        lake = dataset.lake
        sessions = args.sessions if args.sessions is not None else 16
        reindex_lake = lake
        label = f"{sessions} sessions, environment lake"
    if sessions < 1:
        parser.error("--sessions must be >= 1")
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    sequential = run_workload(lake, sessions=sessions, max_workers=1)
    concurrent = run_workload(lake, sessions=sessions, max_workers=args.workers)
    cold, warm = measure_reindex(reindex_lake)
    speedup = report_throughput(label, sequential, concurrent, cold, warm)
    if args.workers >= 8 and sessions >= 8:
        # The acceptance floor assumes the default 8-way fan-out; a
        # 2-worker run obviously cannot show a 4x overlap.
        _assert_criteria(speedup, cold, warm)
        print("OK: >= 4x concurrent speedup and >= 10x warm reindex")
    else:
        print("note: speedup/reindex floors only asserted at >= 8 sessions and workers")


if __name__ == "__main__":
    main()
