"""SQL engine throughput: planned/vectorized engine vs. the row baseline.

The claim under test (ROADMAP's "as fast as the hardware allows" via the
serving layer's dominant per-turn cost — the SQL engine):

1. The planned, columnar engine (:mod:`repro.relational.plan` +
   :mod:`repro.relational.vectorized`) beats the row-at-a-time
   tree-walking interpreter (``RowExecutor``) by ≥ 3x on the group-by
   and equi-join workloads at 100k rows (scan-filter reported too).
2. A warm plan-cache hit skips parse+bind+plan entirely — verified by
   the cache's hit/miss counters and by the warm-vs-cold dispatch time.

Both engines run the *same* SQL on the *same* catalog and must return
identical row sets — every measurement double-checks equivalence.

Writes ``BENCH_sql_engine.json`` (timings + speedups) next to the repo
root so CI can archive the perf trajectory.  Also runnable standalone:

    PYTHONPATH=src python benchmarks/bench_sql_engine.py --smoke
"""

import argparse
import json
import random
import time
from pathlib import Path

import pytest

from repro.relational import Database, RowExecutor, Table
from repro.relational.parser import parse

#: Workload scales: paper-adjacent (default) and CI smoke.
FULL_ROWS = 100_000
FULL_DIM_ROWS = 10_000
SMOKE_ROWS = 2_000
SMOKE_DIM_ROWS = 200

WORKLOADS = {
    "scan_filter": "SELECT a, b FROM t WHERE a > 500 AND b < 0.5",
    "equi_join": "SELECT t.a, u.c FROM t JOIN u ON t.k = u.k",
    "group_by": "SELECT g, COUNT(*) AS n, SUM(a) AS s, AVG(b) AS m FROM t GROUP BY g",
}

#: Acceptance floors at full scale (smoke only proves the path runs and
#: the engines agree — tiny N cannot show stable speedups).
SPEEDUP_FLOORS = {"equi_join": 3.0, "group_by": 3.0}


def build_lake(n_rows: int, n_dim: int, seed: int = 7) -> Database:
    """A fact table ``t`` (int key, 100 string groups, numerics) and a
    dimension table ``u`` keyed for the equi-join."""
    rng = random.Random(seed)
    db = Database()
    db.register(
        Table.from_columns(
            "t",
            {
                "k": [rng.randrange(n_dim) for _ in range(n_rows)],
                "g": [f"g{rng.randrange(100)}" for _ in range(n_rows)],
                "a": [rng.randrange(1000) for _ in range(n_rows)],
                "b": [rng.random() for _ in range(n_rows)],
            },
        )
    )
    db.register(
        Table.from_columns(
            "u",
            {"k": list(range(n_dim)), "c": [rng.random() for _ in range(n_dim)]},
        )
    )
    return db


def best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_workloads(db: Database, reps: int = 3) -> dict:
    """Time each workload on both engines; assert identical results."""
    results = {}
    for name, sql in WORKLOADS.items():
        stmt = parse(sql)
        baseline_table = RowExecutor(db).execute_statement(stmt)
        engine_table = db.execute(sql)
        assert sorted(map(tuple, baseline_table.rows)) == sorted(
            map(tuple, engine_table.rows)
        ), f"engines disagree on {name}"
        row_seconds = best_of(lambda: RowExecutor(db).execute_statement(stmt), reps)
        vec_seconds = best_of(lambda: db.execute(sql), reps)
        results[name] = {
            "sql": sql,
            "rows_out": engine_table.num_rows,
            "row_engine_ms": row_seconds * 1000,
            "vectorized_ms": vec_seconds * 1000,
            "speedup": row_seconds / max(vec_seconds, 1e-9),
        }
    return results


def measure_plan_cache(db: Database) -> dict:
    """Cold vs. warm dispatch of one templated query + cache counters."""
    sql = "SELECT g, SUM(a) AS s FROM t WHERE a > 10 GROUP BY g ORDER BY s DESC LIMIT 5"
    db.clear_plan_cache()
    before = db.plan_cache_stats()
    cold = best_of(lambda: db.execute(sql), reps=1)
    warm = best_of(lambda: db.execute(sql), reps=3)
    after = db.plan_cache_stats()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    assert misses == 1, f"expected exactly one plan-cache miss, saw {misses}"
    assert hits == 3, f"expected three plan-cache hits, saw {hits}"
    return {
        "sql": sql,
        "cold_ms": cold * 1000,
        "warm_ms": warm * 1000,
        "hits": hits,
        "misses": misses,
    }


def report(label: str, results: dict, cache: dict) -> None:
    print()
    print(f"SQL engine ({label}):")
    for name, r in results.items():
        print(
            f"  {name:12s} row {r['row_engine_ms']:8.1f} ms   "
            f"vectorized {r['vectorized_ms']:8.1f} ms   "
            f"speedup {r['speedup']:5.2f}x   ({r['rows_out']} rows)"
        )
    print(
        f"  plan cache   cold {cache['cold_ms']:8.2f} ms   "
        f"warm {cache['warm_ms']:8.2f} ms   "
        f"({cache['misses']} miss, {cache['hits']} hits)"
    )


def write_json(label: str, results: dict, cache: dict, path: Path) -> None:
    payload = {
        "benchmark": "sql_engine",
        "mode": label,
        "workloads": results,
        "plan_cache": cache,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {path}")


def _assert_floors(results: dict) -> None:
    for name, floor in SPEEDUP_FLOORS.items():
        speedup = results[name]["speedup"]
        assert speedup >= floor, (
            f"{name}: expected >= {floor}x over the row engine, got {speedup:.2f}x"
        )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
@pytest.mark.smoke
def test_smoke_sql_engine():
    """Tiny-N smoke: both engines agree, the cache hits, JSON is emitted."""
    db = build_lake(SMOKE_ROWS, SMOKE_DIM_ROWS)
    results = run_workloads(db, reps=1)
    cache = measure_plan_cache(db)
    report("smoke", results, cache)
    write_json("smoke", results, cache, Path("BENCH_sql_engine.json"))


def test_sql_engine_speedup(benchmark):
    """Full scale: ≥ 3x on group-by and equi-join at 100k rows."""
    db = build_lake(FULL_ROWS, FULL_DIM_ROWS)
    results = run_workloads(db)
    cache = measure_plan_cache(db)
    report(f"{FULL_ROWS} rows", results, cache)
    write_json("full", results, cache, Path("BENCH_sql_engine.json"))
    _assert_floors(results)
    benchmark(db.execute, WORKLOADS["group_by"])


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny N, finishes in seconds")
    parser.add_argument("--rows", type=int, default=None, help="fact-table rows")
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_sql_engine.json"),
        help="where to write the results JSON",
    )
    args = parser.parse_args()

    if args.smoke:
        rows = args.rows if args.rows is not None else SMOKE_ROWS
        dim = max(rows // 10, 10)
        label = "smoke"
    else:
        rows = args.rows if args.rows is not None else FULL_ROWS
        dim = max(rows // 10, 10)
        label = f"{rows} rows"
    if rows < 10:
        parser.error("--rows must be >= 10")

    db = build_lake(rows, dim)
    results = run_workloads(db, reps=1 if args.smoke else 3)
    cache = measure_plan_cache(db)
    report(label, results, cache)
    write_json(label, results, cache, args.json)
    if not args.smoke and rows >= FULL_ROWS:
        _assert_floors(results)
        print("OK: >= 3x over the row engine on group-by and equi-join")
    elif args.smoke:
        print("note: speedup floors asserted only at full scale")


if __name__ == "__main__":
    main()
