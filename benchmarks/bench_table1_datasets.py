"""Table 1: Characteristics of the Datasets.

Paper values: archaeology 5 tables / 11,289 avg rows / 16 avg cols;
environment 36 tables / 9,199 avg rows / 10 avg cols.  The synthetic lakes
reproduce the shape exactly at scale 1.0.
"""

import pytest

from repro.eval import render_table1

PAPER_TABLE1 = {
    "archaeology": {"num_tables": 5, "avg_rows": 11_289, "avg_cols": 16},
    "environment": {"num_tables": 36, "avg_rows": 9_199, "avg_cols": 10},
}


def test_table1_shape_matches_paper(arch_full, env_full, benchmark):
    stats = [arch_full.table_stats(), env_full.table_stats()]
    for row in stats:
        paper = PAPER_TABLE1[row["dataset"]]
        assert row["num_tables"] == paper["num_tables"]
        assert round(row["avg_rows"]) == paper["avg_rows"]
        assert round(row["avg_cols"]) == paper["avg_cols"]

    print()
    print(render_table1(stats))
    print("(paper: archaeology 5/11,289/16; environment 36/9,199/10)")

    # Time the stats computation itself (a catalog scan).
    benchmark.pedantic(
        lambda: (arch_full.table_stats(), env_full.table_stats()),
        rounds=3,
        iterations=1,
    )


@pytest.mark.smoke
def test_smoke_table1(arch_smoke, env_smoke):
    """Tiny-N smoke: table stats compute and render at any scale."""
    stats = [arch_smoke.table_stats(), env_smoke.table_stats()]
    print()
    print(render_table1(stats))
    for row in stats:
        assert row["num_tables"] > 0
        assert row["avg_rows"] > 0
