"""Table 2: Estimated Average Token Usage and Costs Across Different LLMs.

Runs full LLM-Sim interactions against Pneuma-Seeker per dataset, meters
the Seeker-side tokens, and prices the average interaction at the paper's
six model price points.  Absolute token counts differ from the paper (our
prompts are the offline RuleLLM's), but the structure — input-dominated
usage, costs scaling linearly with the price sheet, O4-mini cheap relative
to Opus — is the reproduced claim.
"""

import pytest

from repro.eval import evaluate_costs, render_table2
from repro.llm.pricing import TABLE2_MODEL_ORDER

PAPER_AVG_TOKENS = {
    "archaeology": {"in": 248_351, "out": 2_854},
    "environment": {"in": 149_011, "out": 1_712},
}


@pytest.fixture(scope="module")
def cost_rows(arch_eval, env_eval):
    return [
        evaluate_costs(arch_eval, max_turns=15),
        evaluate_costs(env_eval, max_turns=15),
    ]


def test_table2_costs(cost_rows, benchmark):
    for row in cost_rows:
        # Usage is measured, strictly positive, and input-dominated —
        # the property the paper's Table 2 exhibits (87x-98x in/out ratio).
        assert row.avg_input_tokens > row.avg_output_tokens > 0
        # Costs follow the price sheet ordering on identical usage.
        assert row.costs["Opus 4.5"].total > row.costs["Haiku 4.5"].total
        assert set(row.costs) == set(TABLE2_MODEL_ORDER)

    print()
    print(render_table2(cost_rows))
    print(
        "(paper avg tokens: archaeology 248,351 in / 2,854 out; "
        "environment 149,011 in / 1,712 out)"
    )

    benchmark.pedantic(
        lambda: [
            {m: row.costs[m].total for m in TABLE2_MODEL_ORDER} for row in cost_rows
        ],
        rounds=3,
        iterations=1,
    )


@pytest.mark.smoke
def test_smoke_costs(arch_smoke):
    """Tiny-N smoke: the cost evaluation pipeline still runs end to end."""
    row = evaluate_costs(arch_smoke, max_turns=4)
    assert row.avg_input_tokens > 0
    assert set(row.costs) == set(TABLE2_MODEL_ORDER)
