"""Table 3: Comparison of Accuracy across Datasets.

Paper values: LlamaIndex 0.00% / 0.00%; DS-Guru(O3) 25.00% / 19.60%;
Pneuma-Seeker 41.67% / 55.00%.  The reproduced shape must hold:
Seeker > DS-Guru > LlamaIndex (= 0), on both datasets.
"""

import pytest

from repro.baselines import DSGuruRunner, RAGSystem, SeekerSystem
from repro.eval import evaluate_accuracy, render_table3

PAPER_TABLE3 = {
    ("LlamaIndex", "archaeology"): 0.00,
    ("LlamaIndex", "environment"): 0.00,
    ("DS-Guru(O3)", "archaeology"): 25.00,
    ("DS-Guru(O3)", "environment"): 19.60,
    ("Pneuma-Seeker", "archaeology"): 41.67,
    ("Pneuma-Seeker", "environment"): 55.00,
}


def _answerers(dataset):
    return {
        "LlamaIndex": lambda q: RAGSystem(dataset.lake).answer(q.text),
        "DS-Guru(O3)": lambda q: DSGuruRunner(dataset.lake).answer(q.text),
        "Pneuma-Seeker": lambda q: SeekerSystem(dataset.lake).answer(q.text),
    }


@pytest.fixture(scope="module")
def accuracy_results(arch_eval, env_eval):
    results = []
    results += evaluate_accuracy(arch_eval, _answerers(arch_eval))
    results += evaluate_accuracy(env_eval, _answerers(env_eval))
    return results


def test_table3_accuracy(accuracy_results, benchmark):
    by_key = {(r.system, r.dataset): r.percentage for r in accuracy_results}

    # The ordering the paper reports, on both datasets.
    for dataset in ("archaeology", "environment"):
        seeker = by_key[("Pneuma-Seeker", dataset)]
        ds_guru = by_key[("DS-Guru(O3)", dataset)]
        llama = by_key[("LlamaIndex", dataset)]
        assert seeker > ds_guru > llama, dataset
        assert llama == 0.0

    print()
    print(render_table3(accuracy_results))
    print("(paper: LlamaIndex 0/0; DS-Guru 25.00/19.60; Pneuma-Seeker 41.67/55.00)")
    print("measured vs paper per cell:")
    for (system, dataset), paper in PAPER_TABLE3.items():
        print(f"  {system:<14} {dataset:<12} measured={by_key[(system, dataset)]:6.2f}%  paper={paper:6.2f}%")

    benchmark.pedantic(
        lambda: {k: v for k, v in by_key.items()}, rounds=3, iterations=1
    )


@pytest.mark.smoke
def test_smoke_accuracy(arch_smoke):
    """Tiny-N smoke: the accuracy evaluation runs with one system."""
    results = evaluate_accuracy(
        arch_smoke,
        {"Pneuma-Seeker": lambda q: SeekerSystem(arch_smoke.lake).answer(q.text)},
    )
    assert len(results) == 1
    assert results[0].total == len(arch_smoke.questions)
