"""Shared fixtures for the benchmark harness.

Heavy experiments run once per session here; the bench functions then
assert the paper-shape, print the paper-style tables, and time a
representative unit of work (pytest-benchmark insists on timing
something; re-running whole evaluations per round would be wasteful).

``REPRO_BENCH_SCALE`` (default 0.05) controls the evaluation lake scale;
Table 1 and the O3 context experiment always use the paper-shape scale 1.0.

``--smoke`` runs only the per-file smoke tests: every bench module keeps a
tiny-N test (marked ``@pytest.mark.smoke``) that exercises its evaluation
code path in well under a second, so CI can prove the perf scripts still
run without paying for the paper-scale experiments.
"""

import os
from dataclasses import replace

import pytest

from repro.datasets import load_archaeology, load_environment

EVAL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

#: Lake scale and question budget for ``--smoke`` runs.
SMOKE_SCALE = 0.02
SMOKE_QUESTIONS = 2


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run only the tiny-N smoke test of each benchmark file",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--smoke"):
        skip = pytest.mark.skip(reason="--smoke runs only smoke-marked benches")
        for item in items:
            if "smoke" not in item.keywords:
                item.add_marker(skip)


def trim(dataset, n=SMOKE_QUESTIONS):
    """The same dataset restricted to its first ``n`` questions."""
    return replace(dataset, questions=dataset.questions[:n])


@pytest.fixture(scope="session")
def arch_smoke():
    """Archaeology at smoke scale with a two-question budget."""
    return trim(load_archaeology(scale=SMOKE_SCALE))


@pytest.fixture(scope="session")
def env_smoke():
    """Environment at smoke scale with a two-question budget."""
    return trim(load_environment(scale=SMOKE_SCALE))


@pytest.fixture(scope="session")
def arch_eval():
    """Archaeology dataset at evaluation scale."""
    return load_archaeology(scale=EVAL_SCALE)


@pytest.fixture(scope="session")
def env_eval():
    """Environment dataset at evaluation scale."""
    return load_environment(scale=EVAL_SCALE)


@pytest.fixture(scope="session")
def arch_full():
    """Archaeology dataset at the paper's full scale (Table 1 shape)."""
    return load_archaeology(scale=1.0)


@pytest.fixture(scope="session")
def env_full():
    """Environment dataset at the paper's full scale (Table 1 shape)."""
    return load_environment(scale=1.0)
