"""Shared fixtures for the benchmark harness.

Heavy experiments run once per session here; the bench functions then
assert the paper-shape, print the paper-style tables, and time a
representative unit of work (pytest-benchmark insists on timing
something; re-running whole evaluations per round would be wasteful).

``REPRO_BENCH_SCALE`` (default 0.05) controls the evaluation lake scale;
Table 1 and the O3 context experiment always use the paper-shape scale 1.0.
"""

import os

import pytest

from repro.datasets import load_archaeology, load_environment

EVAL_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


@pytest.fixture(scope="session")
def arch_eval():
    """Archaeology dataset at evaluation scale."""
    return load_archaeology(scale=EVAL_SCALE)


@pytest.fixture(scope="session")
def env_eval():
    """Environment dataset at evaluation scale."""
    return load_environment(scale=EVAL_SCALE)


@pytest.fixture(scope="session")
def arch_full():
    """Archaeology dataset at the paper's full scale (Table 1 shape)."""
    return load_archaeology(scale=1.0)


@pytest.fixture(scope="session")
def env_full():
    """Environment dataset at the paper's full scale (Table 1 shape)."""
    return load_environment(scale=1.0)
