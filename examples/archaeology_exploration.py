"""LLM-Sim-driven exploration of the archaeology lake (§4's methodology).

Watches the simulated domain expert converge on the Maltese-potassium
question — the paper's worked example of a latent information need — and
prints the full transcript plus the final state alignment.

Run:  python examples/archaeology_exploration.py
"""

from repro.baselines import SeekerSystem
from repro.datasets import load_archaeology
from repro.eval import build_sim_llm
from repro.sim import SimulationRunner


def main() -> None:
    dataset = load_archaeology(scale=0.05)
    question = next(q for q in dataset.questions if q.qid == "arch-02")

    print("Latent information need (unknown to the sim at the start):")
    print(f"  {question.text}")
    print()

    system = SeekerSystem(dataset.lake)
    runner = SimulationRunner(build_sim_llm(), max_turns=15)
    outcome = runner.run(system, question)

    for i, turn in enumerate(outcome.transcript, 1):
        print(f"--- turn {i} ---")
        print(f"LLM-Sim : {turn.user_message}")
        reply = turn.system_response.split("\nSTATE")[0]
        print(f"Seeker  : {reply.strip()[:400]}")
        print()

    print("=" * 72)
    print(f"Converged: {outcome.converged} after {outcome.turns} turns")
    truth = question.ground_truth(dataset.lake)
    print(f"System answer: {system.session.answer_value}")
    print(f"Ground truth : {truth}")
    print()
    print("Final shared state (T, Q):")
    print(system.session.state.render())


if __name__ == "__main__":
    main()
