"""Emergent documentation: knowledge captured from one user helps the next.

The paper (§3.3, §5.2): Pneuma-Seeker automatically captures clarifications
into the Document Database, so "if one user specifies that estimating
tariff impacts requires accounting for [previous tariffs], subsequent
tariff-related queries can leverage that insight."

Run:  python examples/knowledge_capture.py
"""

from repro.core import SeekerSession
from repro.datasets import build_procurement_lake, build_tariff_web
from repro.ir import DocumentDatabase


def main() -> None:
    lake = build_procurement_lake(scale=0.25)
    shared_knowledge = DocumentDatabase()

    print("=" * 72)
    print("USER 1 (senior analyst): teaches the system domain knowledge")
    print("=" * 72)
    first = SeekerSession(
        lake, web=build_tariff_web(), enable_web=True,
        knowledge=shared_knowledge, user="senior-analyst",
    )
    first.submit(
        "When analyzing tariffs, assume the impact must be calculated relative "
        "to the previous active tariff, not just the new rate."
    )
    print(f"Knowledge entries captured: {len(shared_knowledge)}")
    for entry in shared_knowledge.entries():
        print(f"  - ({entry.author}) {entry.text}")

    print()
    print("=" * 72)
    print("USER 2 (newcomer): asks WITHOUT mentioning previous tariffs")
    print("=" * 72)
    second = SeekerSession(
        lake, web=build_tariff_web(), enable_web=True,
        knowledge=shared_knowledge, user="newcomer",
    )
    answer = second.ask(
        "What is the average price of purchase orders from Germany under the "
        "new tariffs?"
    )
    query = second.state.queries[-1] if second.state.queries else "(none)"
    print(f"Answer: {answer:.2f}")
    print(f"Q: {query}")
    if "previous_tariff" in query:
        print()
        print(
            "The newcomer's query accounts for the previous tariff even though "
            "they never asked for it - the captured knowledge transferred."
        )


if __name__ == "__main__":
    main()
