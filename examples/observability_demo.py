"""Observability demo: serve a few turns, then read the telemetry.

Boots a traced :class:`PneumaService` over the procurement lake, runs a
short mixed conversation across two sessions, and prints what the
observability subsystem collected: the Prometheus metrics exposition,
the tracer/slow-turn-log accounting from ``stats()["obs"]``, and the
slowest turn's full span tree.

Run:  PYTHONPATH=src python examples/observability_demo.py
"""

from repro.datasets.procurement import build_procurement_lake
from repro.obs import render_span_tree
from repro.service import ObservabilityConfig, PneumaService

CONVERSATION = [
    "What is the total purchase order cost impact of the new tariffs by supplier?",
    "Now restrict it to orders from ACME.",
]


def main() -> None:
    observability = ObservabilityConfig(slow_turn_seconds=0.0)  # keep every turn
    with PneumaService(
        build_procurement_lake(), max_workers=4, observability=observability
    ) as service:
        for user in ("alice", "bob"):
            session = service.open_session(user=user)
            for message in CONVERSATION:
                service.post_turn(session, message)
            service.close_session(session)

        print("=" * 72)
        print("METRICS  (PneumaService.metrics_text, Prometheus exposition)")
        print("=" * 72)
        print(service.metrics_text())

        print("=" * 72)
        print("OBSERVABILITY ACCOUNTING  (stats()['obs'])")
        print("=" * 72)
        obs_stats = service.stats()["obs"]
        print(f"tracer:     {obs_stats['tracer']}")
        print(f"slow turns: {obs_stats['slow_turns']}")
        print()

        print("=" * 72)
        print("SLOWEST TURN  (full span tree from the slow-turn log)")
        print("=" * 72)
        slowest = service.slow_turns.slowest()
        print(render_span_tree(slowest.to_json()))


if __name__ == "__main__":
    main()
