"""Quickstart: build a tiny lake, ask Pneuma-Seeker a question, watch (T, Q).

Run:  python examples/quickstart.py
"""

import datetime

from repro.core import SeekerSession
from repro.relational import Database, Table


def build_lake() -> Database:
    """A two-table lake: sensor readings plus a station dimension."""
    lake = Database("demo")
    lake.register(
        Table.from_columns(
            "readings",
            {
                "station": ["North", "North", "South", "North", "South", "South"],
                "day": [datetime.date(2024, 1, d) for d in (1, 3, 5, 7, 9, 11)],
                "ozone": [31.0, None, 44.0, 35.0, 48.0, 46.0],
                "pm25": [9.0, 12.0, 15.0, 11.0, 18.0, 14.0],
            },
        )
    )
    lake.register(
        Table.from_columns(
            "stations",
            {
                "station": ["North", "South"],
                "operator": ["City Observatory", "River Authority"],
            },
        )
    )
    return lake


def main() -> None:
    session = SeekerSession(build_lake(), enable_web=False)

    print("=" * 72)
    print("TURN 1 - a broad, exploratory question")
    print("=" * 72)
    response = session.submit("What air quality data do we have here?")
    print(response.message)
    print()
    print(response.state_view)

    print()
    print("=" * 72)
    print("TURN 2 - the refined information need")
    print("=" * 72)
    response = session.submit(
        "What is the average ozone at the South station? "
    )
    print(response.message)
    print()
    print(response.state_view)

    print()
    print(f"Final computed answer: {session.answer_value}")
    usage = session.llm.ledger.total()
    print(
        f"LLM usage: {usage.prompt_tokens} prompt + {usage.completion_tokens} "
        f"completion tokens across {session.llm.ledger.num_calls()} calls "
        f"({session.llm.clock.now:.0f} virtual seconds)"
    )


if __name__ == "__main__":
    main()
