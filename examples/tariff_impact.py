"""The paper's running example (§1, §3.6): tariff impact on procurement.

A Finance analyst asks "What impact will tariffs have on our organization?"
The system discovers procurement tables, pulls the tariff schedule from
(simulated) Web Search, integrates both into T, and — after the user's key
clarification that impact is *relative to the previous active tariff* —
converges on Q computing price * (1 + new_tariff - previous_tariff).

Run:  python examples/tariff_impact.py
"""

from repro.core import SeekerSession
from repro.datasets import (
    build_procurement_lake,
    build_tariff_web,
    tariff_impact_ground_truth,
)


def main() -> None:
    lake = build_procurement_lake(scale=0.25)
    session = SeekerSession(lake, web=build_tariff_web(), enable_web=True, user="finance-analyst")

    print("=" * 72)
    print("ROUND 1 - the broad question from the Finance department")
    print("=" * 72)
    response = session.submit("What impact will tariffs have on our organization?")
    print(response.message)

    print()
    print("=" * 72)
    print("ROUND 2 - the key clarification (impact relative to previous tariff)")
    print("=" * 72)
    response = session.submit(
        "Impact should be calculated relative to the previous active tariff, not "
        "just the current rate. What is the average price of orders from Germany "
        "under the new tariffs?"
    )
    print(response.message)
    if session.answer_value is None:
        response = session.submit("Please continue with the analysis.")
        print(response.message)
    print()
    print(response.state_view)

    expected_new_cost, expected_delta = tariff_impact_ground_truth(lake, "Germany")
    print()
    print(f"System answer:        {session.answer_value:.2f}")
    print(f"Reference new cost:   {expected_new_cost:.2f}")
    print(f"Implied avg increase: {expected_delta:.2f} per order")
    print()
    print("Captured knowledge (the emergent documentation layer):")
    for entry in session.knowledge_db.entries():
        print(f"  - [{entry.topic}] {entry.text}")


if __name__ == "__main__":
    main()
