"""Offline verifier for IndexStore directories.

Read-only: unlike opening an :class:`~repro.storage.IndexStore` (which
appends an ``open`` record and truncates any torn WAL tail), this walks
the durable state exactly as it sits on disk —

1. load the ``MANIFEST.json`` checkpoint (or start from the empty state
   when none was ever completed);
2. replay ``wal.log`` through the same checksummed framing the store
   uses, advancing the state with each ``publish`` record;
3. re-checksum every segment the resulting state references and
   cross-check its payload digest against the catalog.

Exit status: 0 when everything checks out, 1 on any corruption, 2 on
usage errors.  A torn WAL tail is *recoverable* (the next open truncates
it), so it is reported but only fails the check under ``--strict``.

    PYTHONPATH=src python scripts/fsck.py path/to/store [--strict] [--json]
    PYTHONPATH=src python scripts/fsck.py --selftest
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.storage.journal import replay_journal  # noqa: E402
from repro.storage.manifest import Manifest  # noqa: E402
from repro.storage.segment import read_segment, verify_segment  # noqa: E402


def check_store(root: Path) -> dict:
    """Verify one store directory; returns the report dict (non-raising)."""
    state = Manifest.load(root / "MANIFEST.json") or Manifest()
    checkpoint_found = (root / "MANIFEST.json").exists()

    wal_path = root / "wal.log"
    if wal_path.exists():
        replay = replay_journal(wal_path)
        records, torn_bytes, torn_reason = replay.records, replay.torn_bytes, replay.torn_reason
    else:
        records, torn_bytes, torn_reason = [], 0, ""
    for record in records:
        if record.get("type") == "publish":
            state.apply_publish(record)

    segments = []
    ok = True
    for kind, ref in sorted(state.segments.items()):
        path = root / "segments" / ref.file
        report = verify_segment(path)
        report["kind"] = kind
        if report["ok"]:
            digest = read_segment(path).header["payload_blake2b"]
            if digest != ref.payload_blake2b:
                report["ok"] = False
                report["reason"] = "payload digest does not match the catalog"
        ok = ok and report["ok"]
        segments.append(report)

    return {
        "ok": ok,
        "root": str(root),
        "checkpoint_found": checkpoint_found,
        "generation": state.generation,
        "tables": len(state.tables),
        "segments": segments,
        "journal": {
            "records": len(records),
            "torn_bytes": torn_bytes,
            "torn_reason": torn_reason,
        },
        "quarantined": sorted(p.name for p in (root / "quarantine").glob("*.seg"))
        if (root / "quarantine").exists()
        else [],
    }


def print_report(report: dict) -> None:
    print(f"fsck {report['root']}")
    print(
        f"  catalog    generation {report['generation']}, "
        f"{report['tables']} tables, "
        f"checkpoint {'present' if report['checkpoint_found'] else 'absent'}"
    )
    for seg in report["segments"]:
        verdict = "ok" if seg["ok"] else f"CORRUPT ({seg['reason']})"
        size = f", {seg['payload_bytes']} payload bytes" if seg.get("payload_bytes") else ""
        print(f"  segment    {seg['kind']:<8} {Path(seg['path']).name}: {verdict}{size}")
    if not report["segments"]:
        print("  segment    (no snapshot referenced)")
    journal = report["journal"]
    torn = (
        f", torn tail {journal['torn_bytes']} bytes ({journal['torn_reason']})"
        if journal["torn_bytes"]
        else ""
    )
    print(f"  journal    {journal['records']} valid records{torn}")
    if report["quarantined"]:
        print(f"  quarantine {', '.join(report['quarantined'])}")


def selftest() -> int:
    """Build a store, verify it passes, corrupt it, verify it fails."""
    from repro.retriever.index import HybridIndex
    from repro.storage import IndexStore

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        index = HybridIndex(dim=32)
        index.add_batch([(f"doc{i}", f"selftest corpus row {i}") for i in range(20)])
        index.freeze()
        with IndexStore(root) as store:
            store.publish(index)
            store.checkpoint(clean=True)

        clean = check_store(root)
        if not clean["ok"] or len(clean["segments"]) != 3:
            print("selftest FAILED: pristine store did not verify", file=sys.stderr)
            return 1

        victim = next((root / "segments").glob("bm25-*.seg"))
        blob = bytearray(victim.read_bytes())
        blob[-40] ^= 0xFF
        victim.write_bytes(bytes(blob))
        if check_store(root)["ok"]:
            print("selftest FAILED: bit flip went undetected", file=sys.stderr)
            return 1

    print("selftest ok: pristine store verifies, bit flip is caught")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("store", type=Path, nargs="?", help="store directory to verify")
    parser.add_argument(
        "--strict", action="store_true", help="also fail on a (recoverable) torn WAL tail"
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    parser.add_argument(
        "--selftest", action="store_true", help="verify fsck itself catches corruption"
    )
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if args.store is None:
        parser.error("a store directory is required (or --selftest)")
    if not args.store.is_dir():
        print(f"fsck: {args.store} is not a directory", file=sys.stderr)
        return 2

    report = check_store(args.store)
    failed = not report["ok"] or (args.strict and report["journal"]["torn_bytes"] > 0)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print_report(report)
        print("FAILED" if failed else "OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
