"""Run every experiment end-to-end and print the paper-style report.

This is the one-command reproduction driver (the benches wrap the same
harness for pytest-benchmark):

    python scripts/run_all_experiments.py [--scale 0.05] [--full-table1]

At --scale 1.0 this reproduces the exact paper-shape lakes; smaller scales
run the same experiments faster on proportionally smaller lakes.
"""

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.baselines import (
    DSGuruRunner,
    FTSSystem,
    FullContextRunner,
    RAGSystem,
    RetrieverOnlySystem,
    SeekerSystem,
    StaticPipelineRunner,
)
from repro.datasets import load_archaeology, load_environment
from repro.eval import (
    evaluate_accuracy,
    evaluate_convergence,
    evaluate_costs,
    evaluate_full_context,
    render_context_overflow,
    render_convergence_figure,
    render_table1,
    render_table2,
    render_table3,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05, help="evaluation lake scale")
    parser.add_argument(
        "--full-table1",
        action="store_true",
        help="build the paper-shape (scale 1.0) lakes for Table 1 and the O3 experiment",
    )
    args = parser.parse_args()

    started = time.time()
    datasets = [load_archaeology(scale=args.scale), load_environment(scale=args.scale)]

    # ------------------------------------------------------------- Table 1
    if args.full_table1:
        full = [load_archaeology(scale=1.0), load_environment(scale=1.0)]
    else:
        full = datasets
    print(render_table1([d.table_stats() for d in full]))
    print()

    # -------------------------------------------------------- Figures 4, 5
    for dataset, figure in zip(datasets, ("Figure 4 (archaeology)", "Figure 5 (environment)")):
        factories = {
            "FTS": lambda d=dataset: FTSSystem(d.lake),
            "Pneuma-Retriever": lambda d=dataset: RetrieverOnlySystem(d.lake),
            "LlamaIndex": lambda d=dataset: RAGSystem(d.lake),
            "Pneuma-Seeker": lambda d=dataset: SeekerSystem(d.lake),
        }
        results = evaluate_convergence(dataset, factories, max_turns=15)
        print(render_convergence_figure(results, figure))
        print()

    # --------------------------------------------------------------- Table 3
    accuracy = []
    for dataset in datasets:
        accuracy += evaluate_accuracy(
            dataset,
            {
                "LlamaIndex": lambda q, d=dataset: RAGSystem(d.lake).answer(q.text),
                "DS-Guru(O3)": lambda q, d=dataset: DSGuruRunner(d.lake).answer(q.text),
                "Pneuma-Seeker": lambda q, d=dataset: SeekerSystem(d.lake).answer(q.text),
                "Static-Pipeline": lambda q, d=dataset: StaticPipelineRunner(d.lake).answer(q.text),
            },
        )
    print(render_table3(accuracy))
    print()

    # ------------------------------------------------------- O3 full context
    overflow = [evaluate_full_context(d, FullContextRunner(d.lake)) for d in full]
    print(render_context_overflow(overflow))
    print()

    # --------------------------------------------------------------- Table 2
    cost_rows = [evaluate_costs(d, max_turns=15) for d in datasets]
    print(render_table2(cost_rows))
    print()

    # ------------------------------------------- Prep-pipeline discovery
    # The sketch-vs-exact discovery benchmark (smoke at reduced scale,
    # full planted-catalog scale with --full-table1); writes
    # BENCH_prep_pipeline.json like a standalone run.
    repo_root = Path(__file__).resolve().parent.parent
    bench = repo_root / "benchmarks" / "bench_prep_pipeline.py"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(repo_root / "src"), env.get("PYTHONPATH")) if p
    )
    bench_args = [sys.executable, str(bench)]
    if not args.full_table1:
        bench_args.append("--smoke")
    subprocess.run(bench_args, check=True, env=env, cwd=repo_root)
    print()

    # ------------------------------------------------- Serving resilience
    # Goodput under injected faults, overload shedding, zero-downtime
    # reindex, no-fault transparency; writes BENCH_resilience.json.
    resilience = repo_root / "benchmarks" / "bench_resilience.py"
    resilience_args = [sys.executable, str(resilience)]
    if not args.full_table1:
        resilience_args.append("--smoke")
    subprocess.run(resilience_args, check=True, env=env, cwd=repo_root)
    print()

    # ------------------------------------------------- Index persistence
    # Warm start vs cold rebuild, crash recovery, bit-transparency;
    # writes BENCH_persistence.json and leaves the store directory for
    # the offline verifier, which then re-checksums it.
    persistence = repo_root / "benchmarks" / "bench_persistence.py"
    persistence_args = [sys.executable, str(persistence)]
    if not args.full_table1:
        persistence_args.append("--smoke")
    subprocess.run(persistence_args, check=True, env=env, cwd=repo_root)
    subprocess.run(
        [sys.executable, str(repo_root / "scripts" / "fsck.py"), "BENCH_persistence_store"],
        check=True, env=env, cwd=repo_root,
    )
    print()

    # ---------------------------------------------- Scenario grid coverage
    # KU-matrix pattern coverage over planted investigation scenarios
    # (stress modes included); writes BENCH_scenario_coverage.json.
    coverage = repo_root / "benchmarks" / "bench_scenario_coverage.py"
    coverage_args = [sys.executable, str(coverage)]
    if not args.full_table1:
        coverage_args.append("--smoke")
    subprocess.run(coverage_args, check=True, env=env, cwd=repo_root)
    print()

    # --------------------------------------------------- Observability cost
    # Tracing transparency, <=5% overhead, span-tree completeness, and
    # slow-turn capture; writes BENCH_observability.json.
    observability = repo_root / "benchmarks" / "bench_observability.py"
    observability_args = [sys.executable, str(observability)]
    if not args.full_table1:
        observability_args.append("--smoke")
    subprocess.run(observability_args, check=True, env=env, cwd=repo_root)
    print()

    print(f"All experiments finished in {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
