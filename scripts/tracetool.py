"""Inspect exported trace files: pretty-print span trees, summarize stages.

Reads the JSONL the observability layer writes — either
``Tracer.export_jsonl`` output (one trace tree per line) or
``SlowTurnLog.dump_jsonl`` output (one ``{"outcome", "duration",
"trace"}`` record per line; both shapes are auto-detected) — and renders
each trace as an indented tree with per-span durations, attributes, and
events.

Exit status: 0 on success, 1 on selftest failure, 2 on usage errors.

    PYTHONPATH=src python scripts/tracetool.py traces.jsonl
    PYTHONPATH=src python scripts/tracetool.py traces.jsonl --json
    PYTHONPATH=src python scripts/tracetool.py traces.jsonl --slowest 3
    PYTHONPATH=src python scripts/tracetool.py --selftest
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import render_span_tree  # noqa: E402


def load_traces(path: Path) -> list:
    """Parse a trace JSONL file into ``(outcome, duration, tree)`` tuples.

    Accepts both export shapes: bare trace trees and slow-turn-log
    records wrapping one under ``"trace"``.
    """
    entries = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not valid JSON ({exc})") from exc
            if "trace" in record:  # slow-turn-log record
                tree = record["trace"]
                outcome = record.get("outcome", "")
                duration = record.get("duration", _duration_of(tree))
            else:  # bare Tracer.export_jsonl tree
                tree = record
                outcome = (tree.get("attrs") or {}).get("outcome", "")
                duration = _duration_of(tree)
            if "name" not in tree or "start" not in tree:
                raise ValueError(f"{path}:{line_no}: record is not a span tree")
            entries.append((outcome, duration, tree))
    return entries


def _duration_of(tree: dict) -> float:
    return tree.get("duration", tree.get("end", tree["start"]) - tree["start"])


def _count_spans(tree: dict) -> int:
    return 1 + sum(_count_spans(child) for child in tree.get("children") or [])


def print_trace(outcome: str, duration: float, tree: dict) -> None:
    label = f"trace {tree.get('trace_id', '?')}"
    if outcome:
        label += f" outcome={outcome}"
    label += f" spans={_count_spans(tree)} duration={duration * 1000:.3f}ms"
    print(label)
    print(render_span_tree(tree))
    print()


def selftest() -> int:
    """Boot a tiny traced service, export its traces, and re-render them."""
    from repro.datasets.procurement import build_procurement_lake
    from repro.service import ObservabilityConfig, PneumaService

    question = "What is the total purchase order cost impact of the new tariffs by supplier?"
    with PneumaService(
        build_procurement_lake(),
        max_workers=2,
        observability=ObservabilityConfig(slow_turn_seconds=0.0),
    ) as service:
        session = service.open_session(user="selftest")
        service.post_turn(session, question)
        with tempfile.TemporaryDirectory() as tmp:
            exported = Path(tmp) / "traces.jsonl"
            slowlog = Path(tmp) / "slow.jsonl"
            n_traces = service.tracer.export_jsonl(exported, name="turn")
            n_slow = service.slow_turns.dump_jsonl(slowlog)
            traces = load_traces(exported)
            slow = load_traces(slowlog)
    if n_traces != 1 or len(traces) != 1:
        print("selftest FAILED: expected exactly one exported turn trace", file=sys.stderr)
        return 1
    if n_slow != 1 or len(slow) != 1 or slow[0][0] != "ok":
        print("selftest FAILED: slow-turn log (threshold 0) missed the turn", file=sys.stderr)
        return 1
    _, _, tree = traces[0]
    rendered = render_span_tree(tree)
    for stage in ("llm.complete", "retrieval.search", "action."):
        if stage not in rendered:
            print(f"selftest FAILED: rendered tree lacks {stage!r} spans", file=sys.stderr)
            return 1
    print(rendered)
    print("selftest ok: traced turn exports, reloads, and renders every stage")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", type=Path, nargs="?", help="trace JSONL file to render")
    parser.add_argument(
        "--slowest", type=int, metavar="N", help="render only the N slowest traces"
    )
    parser.add_argument("--json", action="store_true", help="emit parsed trace trees as JSON")
    parser.add_argument(
        "--selftest", action="store_true", help="trace a tiny service end to end and render it"
    )
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if args.traces is None:
        parser.error("a trace JSONL file is required (or --selftest)")
    if not args.traces.is_file():
        print(f"tracetool: {args.traces} is not a file", file=sys.stderr)
        return 2

    try:
        entries = load_traces(args.traces)
    except ValueError as exc:
        print(f"tracetool: {exc}", file=sys.stderr)
        return 2
    if args.slowest is not None:
        entries = sorted(entries, key=lambda e: e[1], reverse=True)[: args.slowest]
    if args.json:
        print(json.dumps([tree for _, _, tree in entries], indent=2))
        return 0
    for outcome, duration, tree in entries:
        print_trace(outcome, duration, tree)
    print(f"{len(entries)} trace(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
