"""repro — a reproduction of the Pneuma Project (CIDR 2026).

Pneuma-Seeker reifies a user's information need as a relational data model
``(T, Q)`` and iteratively aligns it with available data through
language-guided interaction.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-versus-measured record.
"""

__version__ = "1.0.0"
