"""ann — approximate nearest-neighbor indexes (HNSW) plus an exact baseline."""

from .brute import BruteForceIndex, Neighbor
from .hnsw import HNSWIndex
from .hnsw_legacy import LegacyHNSWIndex
from .metrics import METRICS, cosine_distance, inner_product_distance, l2_distance, resolve_metric

__all__ = [
    "HNSWIndex",
    "LegacyHNSWIndex",
    "BruteForceIndex",
    "Neighbor",
    "METRICS",
    "resolve_metric",
    "cosine_distance",
    "l2_distance",
    "inner_product_distance",
]
