"""Exact nearest-neighbor search (the recall reference for HNSW)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .metrics import resolve_metric


@dataclass
class Neighbor:
    key: str
    distance: float


class BruteForceIndex:
    """Linear-scan nearest neighbor search over named vectors."""

    def __init__(self, dim: int, metric: str = "cosine"):
        self.dim = dim
        self.metric_name = metric
        self._metric = resolve_metric(metric)
        self._keys: List[str] = []
        self._vectors: List[np.ndarray] = []
        self._positions: Dict[str, int] = {}

    def add(self, key: str, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vector.shape}")
        if key in self._positions:
            self._vectors[self._positions[key]] = vector
            return
        self._positions[key] = len(self._keys)
        self._keys.append(key)
        self._vectors.append(vector)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._positions

    def search(self, query: np.ndarray, k: int = 10) -> List[Neighbor]:
        query = np.asarray(query, dtype=np.float64)
        scored = [
            Neighbor(key, self._metric(query, vec))
            for key, vec in zip(self._keys, self._vectors)
        ]
        scored.sort(key=lambda n: (n.distance, n.key))
        return scored[:k]
