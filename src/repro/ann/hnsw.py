"""Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2018),
matrix-backed.

A from-scratch HNSW implementation: exponential level sampling, greedy
descent through the upper layers, beam search (``ef``) at each level, and
the paper's *heuristic* neighbor selection (Algorithm 4) that preserves
graph diversity.  This is the vector half of Pneuma-Retriever's hybrid
index.

The kernel differs from :class:`~repro.ann.hnsw_legacy.LegacyHNSWIndex`
only in data layout, never in a decision (the equivalence battery holds
it to identical rankings under the same seed):

* vectors live in one contiguous float64 matrix grown by doubling; for
  cosine the rows are pre-normalized so distance is ``1 - dot``;
* all unvisited neighbors of an expanded node are evaluated in one
  vectorized gather + matvec instead of one ``metric`` call per
  neighbor;
* the per-search ``visited`` set is a reusable per-thread int-tag array
  (an epoch counter makes clearing free, and per-thread storage keeps
  frozen indexes lock-free under concurrent search);
* :meth:`compile` — the freeze-time step — compacts the matrix to its
  live rows and flattens the adjacency dicts into per-level CSR arrays,
  so searching allocates nothing per expansion.  Mutation after
  :meth:`compile` transparently de-compiles.
"""

from __future__ import annotations

import heapq
import math
import random
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .brute import Neighbor
from .metrics import quantize_distance, quantize_distances, resolve_metric

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class _VisitScratch(threading.local):
    """Per-thread visited tags (epoch-cleared, grown on demand)."""

    def __init__(self):
        self.tags = np.empty(0, dtype=np.int64)
        self.epoch = 0

    def acquire(self, n_nodes: int) -> Tuple[np.ndarray, int]:
        if self.tags.shape[0] < n_nodes:
            self.tags = np.zeros(max(n_nodes, 256), dtype=np.int64)
            self.epoch = 0
        self.epoch += 1
        return self.tags, self.epoch


class HNSWIndex:
    """Approximate nearest-neighbor index over named vectors.

    Parameters mirror the original paper: ``m`` is the max degree on upper
    layers (``2m`` on layer 0), ``ef_construction`` the beam width while
    building, ``ef_search`` the default beam width while querying.
    """

    def __init__(
        self,
        dim: int,
        metric: str = "cosine",
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 50,
        seed: int = 42,
    ):
        if m < 2:
            raise ValueError(f"m must be >= 2, got {m}")
        if ef_construction < m:
            raise ValueError("ef_construction must be >= m")
        self.dim = dim
        self.metric_name = metric
        self._metric = resolve_metric(metric)  # scalar fallback / introspection
        self._normalize = metric == "cosine"
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.seed = seed  # recorded so a persisted index can be rebuilt bit-identically
        self._level_mult = 1.0 / math.log(m)
        self._rng = random.Random(seed)
        # Set when hydrated from a persistent segment: the mutable
        # adjacency dicts were never rebuilt (and the matrix may be a
        # read-only mmap), so insertion/update is forbidden.
        self._hydrated = False

        self._keys: List[str] = []
        self._positions: Dict[str, int] = {}
        self._matrix = np.empty((0, dim), dtype=np.float64)
        self._count = 0
        # _links[level][node] -> list of neighbor node ids (mutable form);
        # compile() flattens each level to (offsets, flat) CSR arrays.
        self._links: List[Dict[int, List[int]]] = []
        self._node_levels: List[int] = []
        self._entry_point: Optional[int] = None
        self._csr: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
        self._scratch = _VisitScratch()

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._positions

    def node_items(self):
        """Live ``(key, node)`` pairs (the hybrid index fuses over nodes)."""
        return self._positions.items()

    def _prepare(self, vector: np.ndarray) -> np.ndarray:
        """Validate and (for cosine) normalize one vector."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vector.shape}")
        if self._normalize:
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector = vector / norm
        return vector

    def _dist_block(self, ids: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Distances from ``query`` to the stored rows ``ids``, one matvec.

        ``query`` is already prepared (normalized for cosine), so cosine
        distance is ``1 - dot``; zero rows/queries stay zero after
        normalization, reproducing the legacy ``1.0`` for zero vectors.
        Outputs are grid-quantized so exact-arithmetic ties order
        identically here and in the scalar legacy oracle.
        """
        rows = self._matrix[ids]
        if self._normalize:
            return quantize_distances(1.0 - rows @ query)
        if self.metric_name == "ip":
            return quantize_distances(-(rows @ query))
        diff = rows - query
        return quantize_distances(np.sqrt(np.einsum("ij,ij->i", diff, diff)))

    def _dist_one(self, node: int, query: np.ndarray) -> float:
        row = self._matrix[node]
        if self._normalize:
            return quantize_distance(float(1.0 - row @ query))
        if self.metric_name == "ip":
            return quantize_distance(float(-(row @ query)))
        return quantize_distance(float(np.linalg.norm(row - query)))

    def _neighbors_arr(self, level: int, node: int) -> np.ndarray:
        if self._csr is not None:
            offsets, flat = self._csr[level]
            return flat[offsets[node]: offsets[node + 1]]
        links = self._links[level].get(node)
        if not links:
            return _EMPTY_IDS
        return np.asarray(links, dtype=np.int64)

    def _sample_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_mult)

    def _ensure_capacity(self) -> None:
        if self._count < self._matrix.shape[0]:
            return
        capacity = max(32, self._matrix.shape[0] * 2)
        grown = np.empty((capacity, self.dim), dtype=np.float64)
        grown[: self._count] = self._matrix[: self._count]
        self._matrix = grown

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> bool:
        return self._csr is not None

    def compile(self) -> "HNSWIndex":
        """Freeze-time compile: compact the vector matrix to its live rows
        and flatten every level's adjacency into CSR arrays.  Idempotent;
        :meth:`add` de-compiles (links change), :meth:`update` does not
        (the compacted matrix is the live storage)."""
        if self._csr is not None:
            return self
        self._matrix = np.ascontiguousarray(self._matrix[: self._count])
        csr: List[Tuple[np.ndarray, np.ndarray]] = []
        for level_links in self._links:
            offsets = np.zeros(self._count + 1, dtype=np.int64)
            for node, neighbors in level_links.items():
                offsets[node + 1] = len(neighbors)
            np.cumsum(offsets, out=offsets)
            flat = np.empty(int(offsets[-1]), dtype=np.int64)
            for node, neighbors in level_links.items():
                start = offsets[node]
                flat[start: start + len(neighbors)] = neighbors
            csr.append((offsets, flat))
        self._csr = csr
        return self

    # ------------------------------------------------------------------
    # Persistence (the storage subsystem's segment codec drives these)
    # ------------------------------------------------------------------
    def export_compiled(self) -> Dict[str, object]:
        """A flat, file-ready view of the compiled graph: the compacted
        vector matrix, per-level CSR adjacency, node levels, and keys.
        :meth:`hydrate_compiled` restores an index whose searches are
        bit-identical (same matrix bytes, same links, same entry point).
        Compiles first if needed."""
        self.compile()
        assert self._csr is not None
        return {
            "meta": {
                "dim": self.dim,
                "metric": self.metric_name,
                "m": self.m,
                "ef_construction": self.ef_construction,
                "ef_search": self.ef_search,
                "seed": self.seed,
                "entry_point": -1 if self._entry_point is None else int(self._entry_point),
                "levels": len(self._csr),
            },
            "matrix": self._matrix,
            "node_levels": np.asarray(self._node_levels, dtype=np.int64),
            "keys": list(self._keys),
            "csr": list(self._csr),
        }

    @classmethod
    def hydrate_compiled(
        cls,
        meta: Dict[str, object],
        matrix: np.ndarray,
        node_levels: np.ndarray,
        keys: List[str],
        csr: List[Tuple[np.ndarray, np.ndarray]],
    ) -> "HNSWIndex":
        """Rebuild a search-only index from :meth:`export_compiled` data.

        ``matrix``/``csr`` are referenced, not copied — pass memory-mapped
        views and beam search runs straight off the file.  The mutable
        adjacency dicts are *not* reconstructed, so :meth:`add`/
        :meth:`update` raise.
        """
        index = cls(
            dim=int(meta["dim"]),
            metric=str(meta["metric"]),
            m=int(meta["m"]),
            ef_construction=int(meta["ef_construction"]),
            ef_search=int(meta["ef_search"]),
            seed=int(meta.get("seed", 42)),
        )
        index._matrix = matrix
        index._count = matrix.shape[0]
        index._keys = list(keys)
        index._positions = {key: node for node, key in enumerate(index._keys)}
        index._node_levels = [int(level) for level in node_levels]
        entry = int(meta["entry_point"])
        index._entry_point = None if entry < 0 else entry
        index._csr = [
            (np.asarray(offsets, dtype=np.int64), np.asarray(flat, dtype=np.int64))
            for offsets, flat in csr
        ]
        index._hydrated = True
        return index

    @property
    def hydrated(self) -> bool:
        """True when restored from a segment (search-only)."""
        return self._hydrated

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def add(self, key: str, vector: np.ndarray) -> None:
        """Insert a vector (duplicate keys are rejected; use a fresh key)."""
        self._check_mutable()
        if key in self._positions:
            raise KeyError(f"key {key!r} already present")
        row = self._prepare(vector)
        self._csr = None  # links are about to change

        node = self._count
        self._ensure_capacity()
        self._matrix[node] = row
        self._count += 1
        self._positions[key] = node
        self._keys.append(key)
        level = self._sample_level()
        self._node_levels.append(level)
        while len(self._links) <= level:
            self._links.append({})
        for lvl in range(level + 1):
            self._links[lvl][node] = []

        if self._entry_point is None:
            self._entry_point = node
            return

        entry = self._entry_point
        max_level = self._node_levels[entry]

        # Greedy descent through levels above the new node's level.
        current = entry
        for lvl in range(max_level, level, -1):
            current = self._greedy_step(current, row, lvl)

        # Beam search + connect at each level from min(level, max_level) down.
        for lvl in range(min(level, max_level), -1, -1):
            candidates = self._search_layer(row, [current], self.ef_construction, lvl)
            max_degree = self.m0 if lvl == 0 else self.m
            neighbors = self._select_heuristic(row, candidates, self.m)
            self._links[lvl][node] = [n for _, n in neighbors]
            for _, neighbor in neighbors:
                links = self._links[lvl][neighbor]
                links.append(node)
                if len(links) > max_degree:
                    self._shrink(neighbor, lvl, max_degree)
            current = candidates[0][1]

        if level > max_level:
            self._entry_point = node

    def _greedy_step(self, start: int, query: np.ndarray, level: int) -> int:
        current = start
        current_dist = self._dist_one(current, query)
        improved = True
        while improved:
            improved = False
            neighbors = self._neighbors_arr(level, current)
            if neighbors.size == 0:
                break
            dists = self._dist_block(neighbors, query)
            best = int(dists.argmin())  # first minimum, like the scalar scan
            if dists[best] < current_dist:
                current = int(neighbors[best])
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entries: Sequence[int], ef: int, level: int
    ) -> List[Tuple[float, int]]:
        """Beam search; returns (distance, node) sorted ascending."""
        tags, epoch = self._scratch.acquire(self._count)
        candidates: List[Tuple[float, int]] = []  # min-heap
        results: List[Tuple[float, int]] = []  # max-heap via negation
        for entry in entries:
            tags[entry] = epoch
            d = self._dist_one(entry, query)
            heapq.heappush(candidates, (d, entry))
            heapq.heappush(results, (-d, entry))
        while candidates:
            d, node = heapq.heappop(candidates)
            worst = -results[0][0]
            if d > worst and len(results) >= ef:
                break
            neighbors = self._neighbors_arr(level, node)
            if neighbors.size == 0:
                continue
            unvisited = neighbors[tags[neighbors] != epoch]
            if unvisited.size == 0:
                continue
            tags[unvisited] = epoch
            dists = self._dist_block(unvisited, query)
            for nd, neighbor in zip(dists.tolist(), unvisited.tolist()):
                worst = -results[0][0]
                if len(results) < ef or nd < worst:
                    heapq.heappush(candidates, (nd, neighbor))
                    heapq.heappush(results, (-nd, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
        ordered = sorted((-negd, node) for negd, node in results)
        return ordered

    def _select_heuristic(
        self, query: np.ndarray, candidates: List[Tuple[float, int]], m: int
    ) -> List[Tuple[float, int]]:
        """Algorithm 4: keep candidates closer to the query than to any
        already-selected neighbor, preserving direction diversity."""
        selected: List[Tuple[float, int]] = []
        selected_ids: List[int] = []
        for d, node in candidates:
            if len(selected) >= m:
                break
            dominated = False
            if selected_ids:
                to_chosen = self._dist_block(
                    np.asarray(selected_ids, dtype=np.int64), self._matrix[node]
                )
                dominated = bool((to_chosen < d).any())
            if not dominated:
                selected.append((d, node))
                selected_ids.append(node)
        # Backfill with nearest remaining if diversity pruned too many.
        if len(selected) < m:
            chosen_ids = set(selected_ids)
            for d, node in candidates:
                if len(selected) >= m:
                    break
                if node not in chosen_ids:
                    selected.append((d, node))
        return selected

    def _shrink(self, node: int, level: int, max_degree: int) -> None:
        vector = self._matrix[node]
        links = np.asarray(self._links[level][node], dtype=np.int64)
        dists = self._dist_block(links, vector)
        scored = sorted(zip(dists.tolist(), links.tolist()))
        kept = self._select_heuristic(vector, scored, max_degree)
        self._links[level][node] = [n for _, n in kept]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: np.ndarray, k: int = 10, ef: Optional[int] = None) -> List[Neighbor]:
        """Top-k approximate nearest neighbors of ``query``."""
        prepared = self._prepare(query)
        if self._entry_point is None:
            return []
        return [
            Neighbor(self._keys[node], d)
            for d, node in self._search_ids(prepared, k, ef)
        ]

    def search_batch(
        self, queries: Sequence[np.ndarray], k: int = 10, ef: Optional[int] = None
    ) -> List[List[Neighbor]]:
        """Top-k neighbors for each query vector.

        Semantically identical to N :meth:`search` calls; validation is
        hoisted out of the loop and the queries share one contiguous
        float64 view, which is what the serving layer's fan-out hits.
        """
        matrix = self._prepare_batch(queries)
        if matrix is None:
            return []
        if self._entry_point is None:
            return [[] for _ in range(matrix.shape[0])]
        return [
            [Neighbor(self._keys[node], d) for d, node in self._search_ids(query, k, ef)]
            for query in matrix
        ]

    def search_batch_ids(
        self, queries: Sequence[np.ndarray], k: int = 10, ef: Optional[int] = None
    ) -> List[np.ndarray]:
        """Rank-ordered int node arrays per query (the fusion entry point:
        no key strings are materialized)."""
        matrix = self._prepare_batch(queries)
        if matrix is None:
            return []
        if self._entry_point is None:
            return [_EMPTY_IDS for _ in range(matrix.shape[0])]
        return [
            np.fromiter((node for _, node in self._search_ids(query, k, ef)), dtype=np.int64)
            for query in matrix
        ]

    def _prepare_batch(self, queries: Sequence[np.ndarray]) -> Optional[np.ndarray]:
        if len(queries) == 0:
            return None
        matrix = np.asarray(queries, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ValueError(f"expected shape (n, {self.dim}), got {matrix.shape}")
        if self._normalize:
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            matrix = np.divide(matrix, norms, out=matrix.copy(), where=norms > 0)
        return matrix

    def _search_ids(
        self, prepared: np.ndarray, k: int, ef: Optional[int]
    ) -> List[Tuple[float, int]]:
        """Shared kernel: ranked ``(distance, node)`` for one prepared query."""
        ef = max(ef or self.ef_search, k)
        current = self._entry_point
        for lvl in range(self._node_levels[self._entry_point], 0, -1):
            current = self._greedy_step(current, prepared, lvl)
        candidates = self._search_layer(prepared, [current], ef, 0)
        return candidates[:k]

    def add_batch(self, items: Sequence[Tuple[str, np.ndarray]]) -> None:
        """Insert many ``(key, vector)`` pairs in one call."""
        for key, vector in items:
            self.add(key, vector)

    def update(self, key: str, vector: np.ndarray) -> None:
        """Replace the stored vector of an existing key in place.

        Graph links are kept as built, so after many large updates the
        neighborhood structure can drift from optimal — searches stay
        correct (distances always use the current vector) but recall may
        degrade; rebuild the index if the corpus churns heavily.  Works
        on a compiled index (the compacted matrix is the live storage).
        """
        self._check_mutable()
        if key not in self._positions:
            raise KeyError(f"key {key!r} is not present; use add()")
        self._matrix[self._positions[key]] = self._prepare(vector)

    def _check_mutable(self) -> None:
        if self._hydrated:
            raise RuntimeError(
                "this HNSWIndex was hydrated from a persistent segment and is "
                "search-only; rebuild from source vectors to mutate"
            )
