"""The original scalar-at-a-time HNSW, kept as oracle + baseline.

This is the pre-kernel implementation of
:class:`~repro.ann.hnsw.HNSWIndex` verbatim: vectors in a Python list,
one ``self._metric`` call per neighbor, a ``set`` for visited tracking.
It survives for two reasons:

* **semantic oracle** — given the same seed it builds the same graph
  (decision for decision) as the matrix-backed kernel, so the
  equivalence battery and the benchmark require identical rankings with
  distances within 1e-9;
* **benchmark baseline** — ``benchmarks/bench_retrieval_kernel.py``
  reports the kernel's search and build speedups over this class.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .brute import Neighbor
from .metrics import quantize_distance, resolve_metric


class LegacyHNSWIndex:
    """Approximate nearest-neighbor index over named vectors.

    Parameters mirror the original paper: ``m`` is the max degree on upper
    layers (``2m`` on layer 0), ``ef_construction`` the beam width while
    building, ``ef_search`` the default beam width while querying.
    """

    def __init__(
        self,
        dim: int,
        metric: str = "cosine",
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 50,
        seed: int = 42,
    ):
        if m < 2:
            raise ValueError(f"m must be >= 2, got {m}")
        if ef_construction < m:
            raise ValueError("ef_construction must be >= m")
        self.dim = dim
        self.metric_name = metric
        self._metric = resolve_metric(metric)
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self._level_mult = 1.0 / math.log(m)
        self._rng = random.Random(seed)

        self._keys: List[str] = []
        self._vectors: List[np.ndarray] = []
        self._positions: Dict[str, int] = {}
        # _links[level][node] -> list of neighbor node ids
        self._links: List[Dict[int, List[int]]] = []
        self._node_levels: List[int] = []
        self._entry_point: Optional[int] = None

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._positions

    def _distance(self, a: int, query: np.ndarray) -> float:
        # Grid-quantized (like the kernel's _dist_one/_dist_block) so
        # exact-arithmetic ties order identically in both engines.
        return quantize_distance(self._metric(self._vectors[a], query))

    def _sample_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_mult)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def add(self, key: str, vector: np.ndarray) -> None:
        """Insert a vector (duplicate keys are rejected; use a fresh key)."""
        if key in self._positions:
            raise KeyError(f"key {key!r} already present")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vector.shape}")

        node = len(self._keys)
        self._positions[key] = node
        self._keys.append(key)
        self._vectors.append(vector)
        level = self._sample_level()
        self._node_levels.append(level)
        while len(self._links) <= level:
            self._links.append({})
        for lvl in range(level + 1):
            self._links[lvl][node] = []

        if self._entry_point is None:
            self._entry_point = node
            return

        entry = self._entry_point
        max_level = self._node_levels[entry]

        # Greedy descent through levels above the new node's level.
        current = entry
        for lvl in range(max_level, level, -1):
            current = self._greedy_step(current, vector, lvl)

        # Beam search + connect at each level from min(level, max_level) down.
        for lvl in range(min(level, max_level), -1, -1):
            candidates = self._search_layer(vector, [current], self.ef_construction, lvl)
            max_degree = self.m0 if lvl == 0 else self.m
            neighbors = self._select_heuristic(vector, candidates, self.m)
            self._links[lvl][node] = [n for _, n in neighbors]
            for _, neighbor in neighbors:
                links = self._links[lvl][neighbor]
                links.append(node)
                if len(links) > max_degree:
                    self._shrink(neighbor, lvl, max_degree)
            current = candidates[0][1]

        if level > max_level:
            self._entry_point = node

    def _greedy_step(self, start: int, query: np.ndarray, level: int) -> int:
        current = start
        current_dist = self._distance(current, query)
        improved = True
        while improved:
            improved = False
            for neighbor in self._links[level].get(current, ()):
                d = self._distance(neighbor, query)
                if d < current_dist:
                    current, current_dist = neighbor, d
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entries: Sequence[int], ef: int, level: int
    ) -> List[Tuple[float, int]]:
        """Beam search; returns (distance, node) sorted ascending."""
        visited: Set[int] = set(entries)
        candidates: List[Tuple[float, int]] = []  # min-heap
        results: List[Tuple[float, int]] = []  # max-heap via negation
        for entry in entries:
            d = self._distance(entry, query)
            heapq.heappush(candidates, (d, entry))
            heapq.heappush(results, (-d, entry))
        while candidates:
            d, node = heapq.heappop(candidates)
            worst = -results[0][0]
            if d > worst and len(results) >= ef:
                break
            for neighbor in self._links[level].get(node, ()):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                nd = self._distance(neighbor, query)
                worst = -results[0][0]
                if len(results) < ef or nd < worst:
                    heapq.heappush(candidates, (nd, neighbor))
                    heapq.heappush(results, (-nd, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
        ordered = sorted((-negd, node) for negd, node in results)
        return ordered

    def _select_heuristic(
        self, query: np.ndarray, candidates: List[Tuple[float, int]], m: int
    ) -> List[Tuple[float, int]]:
        """Algorithm 4: keep candidates closer to the query than to any
        already-selected neighbor, preserving direction diversity."""
        selected: List[Tuple[float, int]] = []
        for d, node in candidates:
            if len(selected) >= m:
                break
            dominated = False
            for _, chosen in selected:
                to_chosen = quantize_distance(
                    self._metric(self._vectors[node], self._vectors[chosen])
                )
                if to_chosen < d:
                    dominated = True
                    break
            if not dominated:
                selected.append((d, node))
        # Backfill with nearest remaining if diversity pruned too many.
        if len(selected) < m:
            chosen_ids = {n for _, n in selected}
            for d, node in candidates:
                if len(selected) >= m:
                    break
                if node not in chosen_ids:
                    selected.append((d, node))
        return selected

    def _shrink(self, node: int, level: int, max_degree: int) -> None:
        vector = self._vectors[node]
        links = self._links[level][node]
        scored = sorted(
            (quantize_distance(self._metric(self._vectors[n], vector)), n) for n in links
        )
        kept = self._select_heuristic(vector, scored, max_degree)
        self._links[level][node] = [n for _, n in kept]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: np.ndarray, k: int = 10, ef: Optional[int] = None) -> List[Neighbor]:
        """Top-k approximate nearest neighbors of ``query``."""
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {query.shape}")
        if self._entry_point is None:
            return []
        ef = max(ef or self.ef_search, k)
        current = self._entry_point
        for lvl in range(self._node_levels[self._entry_point], 0, -1):
            current = self._greedy_step(current, query, lvl)
        candidates = self._search_layer(query, [current], ef, 0)
        return [Neighbor(self._keys[node], d) for d, node in candidates[:k]]

    def search_batch(
        self, queries: Sequence[np.ndarray], k: int = 10, ef: Optional[int] = None
    ) -> List[List[Neighbor]]:
        """Top-k neighbors for each query vector.

        Semantically identical to N :meth:`search` calls; validation is
        hoisted out of the loop and the queries share one contiguous
        float64 view, which is what the serving layer's fan-out hits.
        """
        if len(queries) == 0:
            return []
        matrix = np.asarray(queries, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ValueError(f"expected shape (n, {self.dim}), got {matrix.shape}")
        if self._entry_point is None:
            return [[] for _ in range(matrix.shape[0])]
        ef = max(ef or self.ef_search, k)
        top_level = self._node_levels[self._entry_point]
        results: List[List[Neighbor]] = []
        for query in matrix:
            current = self._entry_point
            for lvl in range(top_level, 0, -1):
                current = self._greedy_step(current, query, lvl)
            candidates = self._search_layer(query, [current], ef, 0)
            results.append([Neighbor(self._keys[node], d) for d, node in candidates[:k]])
        return results

    def add_batch(self, items: Sequence[Tuple[str, np.ndarray]]) -> None:
        """Insert many ``(key, vector)`` pairs in one call."""
        for key, vector in items:
            self.add(key, vector)

    def update(self, key: str, vector: np.ndarray) -> None:
        """Replace the stored vector of an existing key in place.

        Graph links are kept as built, so after many large updates the
        neighborhood structure can drift from optimal — searches stay
        correct (distances always use the current vector) but recall may
        degrade; rebuild the index if the corpus churns heavily.
        """
        if key not in self._positions:
            raise KeyError(f"key {key!r} is not present; use add()")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vector.shape}")
        self._vectors[self._positions[key]] = vector
