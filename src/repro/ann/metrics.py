"""Distance metrics for the ANN indexes."""

from __future__ import annotations

from typing import Callable

import numpy as np

Metric = Callable[[np.ndarray, np.ndarray], float]


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance."""
    return float(np.linalg.norm(a - b))


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """1 - cosine similarity; zero vectors are maximally distant."""
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 1.0
    return float(1.0 - np.dot(a, b) / (na * nb))


def inner_product_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Negative inner product (so that lower = more similar)."""
    return float(-np.dot(a, b))


METRICS = {
    "l2": l2_distance,
    "cosine": cosine_distance,
    "ip": inner_product_distance,
}


def resolve_metric(name: str) -> Metric:
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(f"unknown metric {name!r}; known: {sorted(METRICS)}") from None
