"""Distance metrics for the ANN indexes."""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

Metric = Callable[[np.ndarray, np.ndarray], float]

#: Distances are snapped to this power-of-two grid (2**-40 ~ 9.1e-13)
#: before any ranking decision.  Distances that are equal in exact
#: arithmetic (common with discrete hashing embeddings) come out of a
#: scalar metric call and a vectorized BLAS matvec one ulp apart, which
#: would let float noise — not the deterministic node-id tie-break —
#: decide their order, and the array kernel could then disagree with the
#: legacy oracle.  On the grid both computations land on the same value;
#: the perturbation (<= 4.6e-13) is far below the 1e-9 ranking
#: tolerance.  ``ldexp`` is an exact exponent shift and ``round``/``rint``
#: are both round-half-to-even, so the scalar and vector forms agree
#: bit for bit.
DISTANCE_QUANTUM_BITS = 40


_SCALE = float(2**DISTANCE_QUANTUM_BITS)
_INV_SCALE = 1.0 / _SCALE  # 2**-40, exactly representable


def quantize_distance(d: float) -> float:
    """Snap one distance to the 2**-40 grid (scalar form)."""
    return math.ldexp(round(math.ldexp(d, DISTANCE_QUANTUM_BITS)), -DISTANCE_QUANTUM_BITS)


def quantize_distances(d: np.ndarray) -> np.ndarray:
    """Snap an array of distances to the 2**-40 grid, **in place**.

    Multiplying by a power of two is exact, so this matches the scalar
    ``ldexp`` form bit for bit while staying allocation-free on the
    search hot path (the caller owns ``d`` — always a fresh temporary).
    """
    d *= _SCALE
    np.rint(d, out=d)
    d *= _INV_SCALE
    return d


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance."""
    return float(np.linalg.norm(a - b))


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """1 - cosine similarity; zero vectors are maximally distant."""
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 1.0
    return float(1.0 - np.dot(a, b) / (na * nb))


def inner_product_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Negative inner product (so that lower = more similar)."""
    return float(-np.dot(a, b))


METRICS = {
    "l2": l2_distance,
    "cosine": cosine_distance,
    "ip": inner_product_distance,
}


def resolve_metric(name: str) -> Metric:
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(f"unknown metric {name!r}; known: {sorted(METRICS)}") from None
