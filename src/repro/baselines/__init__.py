"""baselines — every comparison system of §4 plus the static-pipeline
ablation of §3.5."""

from .ds_guru import DSGuruRunner, build_ds_guru_llm
from .full_context import FullContextAnswer, FullContextRunner, build_full_context_llm
from .rag_system import RAGSystem, build_rag_llm
from .seeker_system import SeekerSystem
from .static_pipeline import StaticPipelineRunner, build_static_llm
from .static_systems import FTSSystem, RetrieverOnlySystem, render_table_raw

__all__ = [
    "FTSSystem",
    "RetrieverOnlySystem",
    "RAGSystem",
    "SeekerSystem",
    "DSGuruRunner",
    "FullContextRunner",
    "FullContextAnswer",
    "StaticPipelineRunner",
    "build_rag_llm",
    "build_ds_guru_llm",
    "build_full_context_llm",
    "build_static_llm",
    "render_table_raw",
]
