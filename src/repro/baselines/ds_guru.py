"""The DS-Guru baseline runner (KramaBench's reference framework, §4.2).

One LLM call decomposes the question and synthesizes a plan + pipeline +
SQL; the runner executes them once, with no grounding calls, no user
interaction, and no repair loop.  The policy behind it shares the planner
with the Conductor — the deltas are purely behavioural (see
``repro.llm.policies.ds_guru``).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.interpreter import InterpreterError, PipelineInterpreter
from ..llm.policies import DSGuruPolicy
from ..llm.prompts import parse_response, render_prompt
from ..llm.rule_llm import RuleLLM
from ..relational.catalog import Database
from ..relational.errors import RelationalError
from ..retriever.summarizer import table_payload


def build_ds_guru_llm(model_name: str = "O3", **kwargs) -> RuleLLM:
    llm = RuleLLM(model_name=model_name, **kwargs)
    llm.register(DSGuruPolicy())
    return llm


class DSGuruRunner:
    """question -> subtasks -> one-shot pipeline + SQL -> answer."""

    def __init__(self, lake: Database, llm: Optional[RuleLLM] = None):
        self.name = "DS-Guru"
        self.lake = lake
        self.llm = llm or build_ds_guru_llm()
        # DS-Guru sees every file's schema and sample rows up front
        # (KramaBench hands the framework the dataset's files).
        self._payloads = [table_payload(t, sample_n=3) for t in lake.tables()]

    def answer(self, question: str) -> Any:
        prompt = render_prompt(
            "ds_guru", {"QUESTION": question, "SCHEMAS": self._payloads}
        )
        payload = parse_response(self.llm.complete(prompt, "ds_guru"))
        program = payload.get("program")
        sql = payload.get("sql")
        if not program or not sql:
            return None
        scratch = self.lake.copy("ds_guru_scratch")
        try:
            result = PipelineInterpreter(scratch).run(program)
        except InterpreterError:
            return None  # one-shot: no repair loop
        for table in result.tables.values():
            scratch.register(table, replace=True)
        try:
            table = scratch.execute(sql)
        except RelationalError:
            return None
        if table.num_rows == 1 and table.num_columns == 1:
            return table.rows[0][0]
        return None
