"""The full-context baseline (the paper's O3 run, §4.2).

Serializes the *whole* relevant tables into one prompt.  The RuleLLM's
context check raises :class:`ContextLengthExceeded` when the serialization
does not fit in the 200k window — reproducing the paper's report that 6/12
archaeology and 17/20 environment questions overflowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..datasets.questions import Question
from ..llm.interface import ContextLengthExceeded, ModelLimits
from ..llm.policies import FullContextPolicy
from ..llm.prompts import parse_response, render_prompt
from ..llm.rule_llm import RuleLLM
from ..relational.catalog import Database
from ..relational.csv_io import to_csv_text
from ..relational.errors import RelationalError


def build_full_context_llm(model_name: str = "O3", context_tokens: int = 200_000, **kwargs) -> RuleLLM:
    llm = RuleLLM(model_name=model_name, limits=ModelLimits(context_tokens), **kwargs)
    llm.register(FullContextPolicy())
    return llm


@dataclass
class FullContextAnswer:
    value: Any = None
    context_exceeded: bool = False
    prompt_tokens: int = 0


class FullContextRunner:
    """Pass all relevant tables; answer directly (when they fit)."""

    def __init__(self, lake: Database, llm: Optional[RuleLLM] = None):
        self.name = "O3-full-context"
        self.lake = lake
        self.llm = llm or build_full_context_llm()

    def answer(self, question: Question) -> FullContextAnswer:
        tables = {
            name: to_csv_text(self.lake.resolve_table(name))
            for name in question.relevant_tables
        }
        prompt = render_prompt(
            "full_context", {"QUESTION": question.text, "TABLES": tables}
        )
        try:
            payload = parse_response(self.llm.complete(prompt, "full_context"))
        except ContextLengthExceeded as exc:
            return FullContextAnswer(context_exceeded=True, prompt_tokens=exc.tokens)
        sql = payload.get("sql")
        if not sql:
            return FullContextAnswer()
        try:
            table = self.lake.execute(sql)
        except RelationalError:
            return FullContextAnswer()
        if table.num_rows == 1 and table.num_columns == 1:
            return FullContextAnswer(value=table.rows[0][0])
        return FullContextAnswer()
