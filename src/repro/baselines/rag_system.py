"""The LlamaIndex-like RAG baseline: top-k vector retrieval + LLM reading.

"LlamaIndex adds an LLM on top of a top-k vector retriever to interpret
the retrieved data for LLM Sim."  The system keeps the running user
context (chat-engine style), retrieves with it, and asks the RAG policy to
interpret — but has no executor, so it can never compute an aggregate.
"""

from __future__ import annotations

from typing import List, Optional

from ..llm.clock import INDEX_LOOKUP_SECONDS
from ..llm.policies import RAGPolicy
from ..llm.prompts import parse_response, render_prompt
from ..llm.rule_llm import RuleLLM
from ..relational.catalog import Database
from ..retriever.retriever import PneumaRetriever


def build_rag_llm(model_name: str = "O4-mini", **kwargs) -> RuleLLM:
    llm = RuleLLM(model_name=model_name, **kwargs)
    llm.register(RAGPolicy())
    return llm


class RAGSystem:
    """Vector top-k retrieval plus LLM interpretation (no computation)."""

    kind = "rag"

    def __init__(self, lake: Database, llm: Optional[RuleLLM] = None, k: int = 3):
        self.name = "LlamaIndex"
        self.lake = lake
        self.llm = llm or build_rag_llm()
        self.k = k
        self.retriever = PneumaRetriever(lake)
        self._history: List[str] = []

    def respond(self, message: str) -> str:
        self._history.append(message)
        question = " ".join(self._history)
        self.llm.clock.tick(INDEX_LOOKUP_SECONDS)
        docs = self.retriever.search(question, k=self.k, mode="vector")
        prompt = render_prompt(
            "rag",
            {
                "QUESTION": question,
                "CONTEXT": [d.to_json() for d in docs],
            },
        )
        payload = parse_response(self.llm.complete(prompt, "rag"))
        return payload.get("answer", "")

    def answer(self, question: str):
        """RQ2 interface: RAG produces prose, never a computed value."""
        self.respond(question)
        return None
