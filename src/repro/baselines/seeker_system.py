"""Adapter: a SeekerSession as a ConversationalSystem for LLM Sim."""

from __future__ import annotations

from typing import Any

from ..core.session import SeekerSession
from ..relational.catalog import Database


class SeekerSystem:
    """Pneuma-Seeker behind the uniform system interface."""

    kind = "seeker"

    def __init__(self, lake: Database, enable_web: bool = False, **kwargs):
        self.name = "Pneuma-Seeker"
        self.session = SeekerSession(lake, enable_web=enable_web, **kwargs)

    def respond(self, message: str) -> str:
        return self.session.respond(message)

    def answer(self, question: str) -> Any:
        return self.session.ask(question)
