"""The static-pipeline ablation (§3.5, §5.1).

The authors' early prototype: a *fixed* processing sequence — define
(T, Q), retrieve top-k tables, filter/integrate via relational operations,
prune to T — with none of the Conductor's dynamic actions: no value
grounding through the IR system, no follow-up retrieval, no error-repair
loop, no user iteration.  Comparing its accuracy against the full Seeker
isolates what dynamic orchestration buys (the ablation bench).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.interpreter import InterpreterError, PipelineInterpreter
from ..llm.policies import MaterializerPolicy
from ..llm.policies.conductor import ConductorPolicy
from ..llm.policies.planning import build_plan, plan_to_json
from ..llm.prompts import parse_response, render_prompt
from ..llm.rule_llm import RuleLLM
from ..llm.semantics import SchemaView
from ..relational.catalog import Database
from ..relational.errors import RelationalError
from ..retriever.retriever import PneumaRetriever


def build_static_llm(model_name: str = "O4-mini", **kwargs) -> RuleLLM:
    llm = RuleLLM(model_name=model_name, **kwargs)
    llm.register(MaterializerPolicy())
    return llm


class StaticPipelineRunner:
    """retrieve top-k -> plan -> materialize once -> execute once."""

    def __init__(self, lake: Database, llm: Optional[RuleLLM] = None, k: int = 6):
        self.name = "Static-Pipeline"
        self.lake = lake
        self.llm = llm or build_static_llm()
        self.k = k
        self.retriever = PneumaRetriever(lake)
        self._conductor_policy = ConductorPolicy()  # reused for spec building only

    def answer(self, question: str) -> Any:
        docs = [d.to_json() for d in self.retriever.search(question, k=self.k)]
        schemas = [SchemaView.from_payload(d["payload"]) for d in docs]
        # Fixed step 1: interpret (T, Q) from samples only — no grounding.
        plan = build_plan(question, schemas, known_values=None, allow_join=True)
        if plan is None:
            return None
        action = self._conductor_policy._update_state_action(plan, schemas, docs, question)
        spec = action["table_spec"]
        queries = action["queries"]
        # Fixed step 2: materialize exactly once (no repair).
        prompt = render_prompt(
            "materializer",
            {"TARGET": spec, "PLAN": plan_to_json(plan), "DOCS": docs, "NOTE": question, "ATTEMPT": "1"},
        )
        payload = parse_response(self.llm.complete(prompt, "materializer"))
        scratch = self.lake.copy("static_scratch")
        try:
            result = PipelineInterpreter(scratch).run(payload.get("program") or [])
        except InterpreterError:
            return None
        for table in result.tables.values():
            scratch.register(table, replace=True)
        # Fixed step 3: execute Q exactly once.
        try:
            table = scratch.execute(queries[-1])
        except RelationalError:
            return None
        if table.num_rows == 1 and table.num_columns == 1:
            return table.rows[0][0]
        return None
