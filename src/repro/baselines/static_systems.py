"""The static retrieval baselines of Figures 4 and 5: FTS and
Pneuma-Retriever.

Both "only return tables, represented by their columns and sample rows"
(Figure 3's system description) — no interpretation, no computation, no
conversation state.  FTS is BM25 full-text search over a raw rendering of
each table (name, header, cell text); Pneuma-Retriever is the hybrid
narration index.  The raw-table responses are exactly what LLM Sim then
has to interpret on its own.
"""

from __future__ import annotations

from typing import List

from ..llm.clock import INDEX_LOOKUP_SECONDS, VirtualClock
from ..relational.catalog import Database
from ..relational.table import Table
from ..relational.types import format_value
from ..retriever.retriever import PneumaRetriever
from ..text.bm25 import BM25Index


def render_table_raw(table: Table, sample_rows: int = 3) -> str:
    """The raw output a static system returns for one table."""
    header = ", ".join(table.column_names())
    lines = [f"table {table.name} | columns: {header}"]
    for row in table.rows[:sample_rows]:
        rendered = ", ".join(format_value(v) for v in row)
        lines.append(f"  row: {rendered}")
    return "\n".join(lines)


def _raw_text(table: Table, max_rows: int = 50) -> str:
    """What a full-text index over the file contents sees."""
    cells: List[str] = [table.name]
    cells.extend(table.column_names())
    for row in table.rows[:max_rows]:
        cells.extend(format_value(v) for v in row if v is not None)
    return " ".join(cells)


class FTSSystem:
    """BM25 full-text search over raw table contents."""

    kind = "static"

    def __init__(self, lake: Database, k: int = 3, clock: VirtualClock = None):
        self.name = "FTS"
        self.lake = lake
        self.k = k
        self.clock = clock or VirtualClock()
        self.index = BM25Index()
        for table in lake.tables():
            self.index.add(table.name, _raw_text(table))

    def respond(self, message: str) -> str:
        self.clock.tick(INDEX_LOOKUP_SECONDS)
        hits = self.index.search(message, k=self.k)
        if not hits:
            return "No matching tables."
        return "\n".join(
            render_table_raw(self.lake.resolve_table(h.doc_id)) for h in hits
        )


class RetrieverOnlySystem:
    """Pneuma-Retriever as a standalone (static) discovery system."""

    kind = "static"

    def __init__(self, lake: Database, k: int = 3, clock: VirtualClock = None):
        self.name = "Pneuma-Retriever"
        self.lake = lake
        self.k = k
        self.clock = clock or VirtualClock()
        self.retriever = PneumaRetriever(lake)

    def respond(self, message: str) -> str:
        self.clock.tick(INDEX_LOOKUP_SECONDS)
        docs = self.retriever.search(message, k=self.k)
        if not docs:
            return "No matching tables."
        return "\n".join(
            render_table_raw(self.lake.resolve_table(d.title)) for d in docs
        )
