"""core — Pneuma-Seeker: Conductor, Materializer, shared state, session."""

from .actions import (
    Action,
    ActionError,
    ExecuteSQL,
    GroundValues,
    Materialize,
    MessageUser,
    Reason,
    Retrieve,
    UpdateState,
    action_from_json,
    action_to_json,
)
from .conductor import Conductor, TurnLog
from .convergence import Concept, concept_mentioned, coverage, uncovered
from .interpreter import InterpreterError, PipelineInterpreter, PipelineResult
from .materializer import MaterializationOutcome, Materializer
from .session import SeekerResponse, SeekerSession, build_seeker_llm
from .sql_executor import SQLExecutor, SQLResult
from .state import SharedState, TargetColumn, TargetTable

__all__ = [
    "SeekerSession",
    "SeekerResponse",
    "build_seeker_llm",
    "Conductor",
    "TurnLog",
    "Materializer",
    "MaterializationOutcome",
    "SharedState",
    "TargetTable",
    "TargetColumn",
    "SQLExecutor",
    "SQLResult",
    "PipelineInterpreter",
    "PipelineResult",
    "InterpreterError",
    "Concept",
    "concept_mentioned",
    "coverage",
    "uncovered",
    "Action",
    "ActionError",
    "Reason",
    "Retrieve",
    "GroundValues",
    "UpdateState",
    "Materialize",
    "ExecuteSQL",
    "MessageUser",
    "action_from_json",
    "action_to_json",
]
