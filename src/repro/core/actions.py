"""The Conductor's action space (§3.2).

Four action families: internal reasoning, tool calls (IR System,
Materializer, SQL Executor, value grounding), state modification, and
user-facing communication.  Actions cross the LLM boundary as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional


class ActionError(ValueError):
    """Raised when an LLM response does not decode to a valid action."""


@dataclass
class Action:
    """Base class; ``kind`` discriminates the subtype."""

    kind: str = ""


@dataclass
class Reason(Action):
    """Internal reasoning (ReAct-style 'thought')."""

    thought: str = ""
    kind: str = "reason"


@dataclass
class Retrieve(Action):
    """Tool call: IR System retrieval."""

    query: str = ""
    kind: str = "retrieve"


@dataclass
class GroundValues(Action):
    """Tool call: fetch distinct values of a column (grounding, §3.2)."""

    table: str = ""
    column: str = ""
    kind: str = "ground_values"


@dataclass
class UpdateState(Action):
    """State modification: replace T and/or Q."""

    table_spec: Optional[Dict[str, Any]] = None
    queries: Optional[List[str]] = None
    plan: Optional[Dict[str, Any]] = None  # the interpreted QueryPlan, for transparency
    kind: str = "update_state"


@dataclass
class Materialize(Action):
    """Tool call: ask the Materializer to populate a target table."""

    table: str = ""
    note: str = ""
    kind: str = "materialize"


@dataclass
class ExecuteSQL(Action):
    """Tool call: run the queries in Q against the materialized tables."""

    kind: str = "execute_sql"


@dataclass
class MessageUser(Action):
    """User-facing communication; ends the Conductor's action sequence."""

    message: str = ""
    kind: str = "message_user"


_ACTION_TYPES = {
    "reason": Reason,
    "retrieve": Retrieve,
    "ground_values": GroundValues,
    "update_state": UpdateState,
    "materialize": Materialize,
    "execute_sql": ExecuteSQL,
    "message_user": MessageUser,
}


def action_from_json(data: Dict[str, Any]) -> Action:
    """Decode an action payload produced by the LLM."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ActionError(f"action payload must be a dict with 'kind': {data!r}")
    kind = data["kind"]
    cls = _ACTION_TYPES.get(kind)
    if cls is None:
        raise ActionError(f"unknown action kind {kind!r}; known: {sorted(_ACTION_TYPES)}")
    fields = {k: v for k, v in data.items() if k != "kind"}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ActionError(f"bad fields for action {kind!r}: {exc}") from exc


def action_to_json(action: Action) -> Dict[str, Any]:
    """Encode an action for logs and prompts."""
    payload: Dict[str, Any] = {"kind": action.kind}
    for name, value in vars(action).items():
        if name != "kind" and value not in (None, "", []):
            payload[name] = value
    return payload
