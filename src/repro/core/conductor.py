"""The Conductor component (§3.2): dynamic, state-driven orchestration.

Per user turn the Conductor runs a ReAct loop of at most ``ACTION_LIMIT``
actions.  Each iteration renders the working memory into a prompt, asks the
LLM for the next action, executes it (tool call, state modification, or
user-facing message), and records the result.  If the limit is reached
without a user-facing message, the harness interrupts and forces one —
exactly the protocol the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..ir.system import IRSystem
from ..llm.clock import TOOL_CALL_SECONDS
from ..llm.prompts import parse_response, render_prompt
from ..llm.rule_llm import RuleLLM
from ..obs import trace as obs
from .actions import (
    Action,
    ExecuteSQL,
    GroundValues,
    Materialize,
    MessageUser,
    Reason,
    Retrieve,
    UpdateState,
    action_from_json,
    action_to_json,
)
from .materializer import Materializer
from .sql_executor import SQLExecutor
from .state import SharedState, TargetTable


@dataclass
class TurnLog:
    """Everything that happened during one user turn."""

    user_message: str
    thoughts: List[str] = field(default_factory=list)
    actions: List[Dict[str, Any]] = field(default_factory=list)
    reply: str = ""
    forced: bool = False
    #: True when any retrieval this turn was served on a degraded path.
    degraded: bool = False


class Conductor:
    """Selects and executes actions until the user gets a message."""

    ACTION_LIMIT = 5  # the paper's i = 5

    def __init__(
        self,
        llm: RuleLLM,
        ir: IRSystem,
        state: SharedState,
        materializer: Materializer,
    ):
        self.llm = llm
        self.ir = ir
        self.state = state
        self.materializer = materializer
        # Working memory, persisted across turns within a session.  All of
        # it is instance-local: a Conductor is single-session by design and
        # the serving layer serializes turns within a session with a lock.
        self.docs: Dict[str, Dict[str, Any]] = {}
        self.grounded: Dict[str, Dict[str, List[Any]]] = {}
        self.user_messages: List[str] = []
        self.turns: List[TurnLog] = []
        self.last_result_view: Optional[Any] = None
        self.last_error: str = ""
        self._plans: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def handle_turn(self, user_message: str) -> TurnLog:
        """Run the action loop for one user message; returns the turn log."""
        self.user_messages.append(user_message)
        self.last_error = ""
        self.last_result_view = None
        log = TurnLog(user_message=user_message)
        actions_taken: List[str] = []

        for step in range(self.ACTION_LIMIT):
            prompt = self._render(user_message, actions_taken, force=False)
            action, thought = self._ask(prompt)
            log.thoughts.append(thought)
            log.actions.append(action_to_json(action))
            actions_taken.append(action.kind)
            reply = self._execute(action, log)
            if reply is not None:
                log.reply = reply
                self.turns.append(log)
                return log

        # Action limit reached without user-facing output: interrupt and
        # force a message (§3.2).
        prompt = self._render(user_message, actions_taken, force=True)
        action, thought = self._ask(prompt)
        log.thoughts.append(thought)
        log.actions.append(action_to_json(action))
        log.forced = True
        reply = self._execute(action, log)
        log.reply = reply if reply is not None else "I need another turn to make progress."
        self.turns.append(log)
        return log

    # ------------------------------------------------------------------
    def _render(self, user_message: str, actions_taken: List[str], force: bool) -> str:
        sections: Dict[str, Any] = {
            "USER_MESSAGE": user_message,
            "INTENT": " ".join(self.user_messages),
            "STATE": self.state.to_json(),
            "RETRIEVED": list(self.docs.values()),
            "GROUNDED": self.grounded,
            "ACTIONS": actions_taken,
            "TOOLS": "retrieve | ground_values | update_state | materialize | execute_sql | message_user",
        }
        if self.last_error:
            sections["LAST_ERROR"] = self.last_error
        if self.last_result_view is not None:
            sections["LAST_RESULT"] = self.last_result_view
        if force:
            sections["FORCE_MESSAGE"] = "true"
        return render_prompt("conductor", sections)

    def _ask(self, prompt: str) -> tuple:
        payload = parse_response(self.llm.complete(prompt, "conductor"))
        action = action_from_json(payload.get("action", {}))
        return action, payload.get("thought", "")

    # ------------------------------------------------------------------
    def _execute(self, action: Action, log: TurnLog) -> Optional[str]:
        """Run one action; returns the user message when the turn ends."""
        with obs.span(f"action.{action.kind}"):
            return self._execute_action(action, log)

    def _execute_action(self, action: Action, log: TurnLog) -> Optional[str]:
        if isinstance(action, MessageUser):
            return action.message
        if isinstance(action, Reason):
            return None
        if isinstance(action, Retrieve):
            result = self.ir.retrieve(action.query)
            if result.degraded:
                log.degraded = True
            self.llm.clock.tick(TOOL_CALL_SECONDS)
            for doc in result.documents:
                self.docs[doc.doc_id] = doc.to_json()
            return None
        if isinstance(action, GroundValues):
            self._ground(action.table, action.column)
            self.llm.clock.tick(TOOL_CALL_SECONDS)
            return None
        if isinstance(action, UpdateState):
            if action.table_spec:
                name = action.table_spec["name"]
                self.state.set_table(TargetTable.from_json(action.table_spec))
                # A redefined spec invalidates any stale materialization.
                self.state.materialized.drop_table(name, if_exists=True)
                # Remember the interpreted plan for the Materializer.
                self._plans[name] = action.plan
            if action.queries is not None:
                self.state.set_queries(action.queries)
            return None
        if isinstance(action, Materialize):
            spec = self.state.tables.get(action.table)
            if spec is None:
                self.last_error = f"no target table named {action.table!r} in T"
                return None
            plan = self._plans.get(action.table)
            outcome = self.materializer.materialize(
                spec, plan, list(self.docs.values()), note=action.note
            )
            if not outcome.ok:
                self.last_error = f"materialization failed: {outcome.error}"
            return None
        if isinstance(action, ExecuteSQL):
            executor = SQLExecutor(self.state.materialized)
            results = executor.execute_all(self.state.queries)
            self.llm.clock.tick(TOOL_CALL_SECONDS)
            if not results:
                self.last_error = "Q is empty; nothing to execute"
                return None
            final = results[-1]
            if not final.ok:
                self.last_error = f"SQL failed: {final.error} (query: {final.sql})"
                return None
            table = final.table
            self.state.record_result(table)
            if table.num_rows == 1 and table.num_columns == 1:
                self.last_result_view = {"value": table.rows[0][0]}
            else:
                self.last_result_view = {
                    "columns": table.column_names(),
                    "rows": [list(r) for r in table.rows[:5]],
                    "num_rows": table.num_rows,
                }
            return None
        raise TypeError(f"unhandled action type: {type(action).__name__}")

    def _ground(self, table: str, column: str) -> None:
        doc = self.docs.get(f"table:{table}")
        columns: List[str]
        if column == "*":
            if doc is None:
                return
            columns = [
                c["name"]
                for c in doc["payload"]["columns"]
                if c.get("dtype") == "TEXT"
            ]
        else:
            columns = [column]
        store = self.grounded.setdefault(table, {})
        for name in columns:
            values = self.ir.column_values(table, name)
            store[name] = values
