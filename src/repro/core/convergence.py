"""Convergence helpers: concept coverage between texts and information needs.

Convergence (§3.1) happens when the user's *active* information need — what
they have articulated — matches the *latent* one.  These helpers give both
the LLM-Sim policy and the evaluation a single definition of "a concept was
mentioned in this text".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..text.tokenize import tokenize


@dataclass(frozen=True)
class Concept:
    """One constituent of an information need.

    ``kind``:
      - ``seed``: known to the user from the start (domain, entities);
      - ``column``: must be surfaced by the system (variables in the lake);
      - ``value``: a filter entity the user cares about;
      - ``operation``: a preparation step (interpolation, first/last), only
        articulable once the relevant data has been seen.
    """

    token: str
    kind: str = "column"

    def to_json(self) -> dict:
        return {"token": self.token, "kind": self.kind}


def concept_mentioned(concept_phrase: str, text: str) -> bool:
    """All stemmed words of the phrase occur in the (stemmed) text."""
    text_tokens = set(tokenize(text))
    words = tokenize(concept_phrase)
    return bool(words) and all(w in text_tokens for w in words)


def coverage(concepts: Sequence[Concept], text: str) -> float:
    """Fraction of concepts mentioned in ``text`` (1.0 when no concepts)."""
    if not concepts:
        return 1.0
    text_tokens = set(tokenize(text))
    hit = 0
    for concept in concepts:
        words = tokenize(concept.token)
        if words and all(w in text_tokens for w in words):
            hit += 1
    return hit / len(concepts)


def uncovered(concepts: Sequence[Concept], text: str) -> List[Concept]:
    """Concepts not yet mentioned in ``text``."""
    text_tokens = set(tokenize(text))
    out: List[Concept] = []
    for concept in concepts:
        words = tokenize(concept.token)
        if not words or not all(w in text_tokens for w in words):
            out.append(concept)
    return out
