"""The Python-interpreter tool: executes Materializer pipeline programs.

The paper equips the Materializer with "a Python interpreter equipped with
Pandas and NumPy".  Offline, generated programs are JSON pipelines over the
:mod:`repro.frames` DataFrame API — a restricted, auditable instruction set
rather than arbitrary ``exec`` — with the same error-capture contract:
failures return structured messages the Materializer repairs against.

Supported ops (see ``OP_SIGNATURES``): load / join / add_from_records /
parse_dates / derive / filter_not_null / filter_equals / sort /
interpolate / rename / select / limit / result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from ..frames.frame import DataFrame, FrameError
from ..frames.series import Series
from ..relational.catalog import Database
from ..relational.errors import RelationalError
from ..relational.table import Table


class InterpreterError(Exception):
    """A pipeline failure with the op index (the repair loop's anchor)."""

    def __init__(self, step: int, op: str, message: str):
        super().__init__(f"step {step} ({op}): {message}")
        self.step = step
        self.op = op
        self.detail = message


OP_SIGNATURES: Dict[str, Sequence[str]] = {
    "load": ("table",),
    "join": ("left", "right", "left_on", "right_on"),
    "add_from_records": ("frame", "records", "key", "record_key", "value_field", "new_column"),
    "parse_dates": ("frame", "column"),
    "derive": ("frame", "new_column", "operator", "left", "right"),
    "filter_not_null": ("frame", "columns"),
    "filter_equals": ("frame", "column", "value"),
    "sort": ("frame", "by"),
    "interpolate": ("frame", "column", "order_by"),
    "rename": ("frame", "mapping"),
    "select": ("frame", "columns"),
    "limit": ("frame", "n"),
    "result": ("frame", "name"),
}


@dataclass
class PipelineResult:
    """Outcome: produced tables (by result name) and the op trace."""

    tables: Dict[str, Table] = field(default_factory=dict)
    trace: List[str] = field(default_factory=list)


class PipelineInterpreter:
    """Executes a JSON pipeline program against a source database."""

    def __init__(self, source: Database):
        self.source = source

    def run(self, program: Sequence[Mapping[str, Any]]) -> PipelineResult:
        """Run a program; raises :class:`InterpreterError` on the failing op."""
        frames: Dict[str, DataFrame] = {}
        result = PipelineResult()
        if not program:
            raise InterpreterError(0, "program", "empty program")
        for step, raw in enumerate(program):
            op = raw.get("op")
            if op not in OP_SIGNATURES:
                raise InterpreterError(step, str(op), f"unknown op; known: {sorted(OP_SIGNATURES)}")
            missing = [k for k in OP_SIGNATURES[op] if k not in raw]
            if missing:
                raise InterpreterError(step, op, f"missing fields: {missing}")
            try:
                self._execute(op, raw, frames, result)
            except InterpreterError:
                raise
            except (FrameError, RelationalError, KeyError, ValueError, TypeError) as exc:
                raise InterpreterError(step, op, str(exc)) from exc
            result.trace.append(self._describe(op, raw))
        if not result.tables:
            raise InterpreterError(len(program) - 1, "result", "program produced no result table")
        return result

    # ------------------------------------------------------------------
    def _frame(self, frames: Dict[str, DataFrame], name: str) -> DataFrame:
        if name not in frames:
            raise FrameError(f"frame {name!r} not defined; defined: {sorted(frames)}")
        return frames[name]

    def _execute(
        self,
        op: str,
        raw: Mapping[str, Any],
        frames: Dict[str, DataFrame],
        result: PipelineResult,
    ) -> None:
        out_name = raw.get("as") or raw.get("frame") or raw.get("table")
        if op == "load":
            table = self.source.resolve_table(raw["table"])
            frames[raw.get("as", raw["table"])] = DataFrame.from_table(table)
        elif op == "join":
            left = self._frame(frames, raw["left"])
            right = self._frame(frames, raw["right"])
            merged = left.merge(
                right,
                left_on=raw["left_on"],
                right_on=raw["right_on"],
                how=raw.get("how", "inner"),
            )
            frames[raw.get("as", raw["left"])] = merged
        elif op == "add_from_records":
            frame = self._frame(frames, raw["frame"])
            lookup = {}
            for record in raw["records"]:
                key = record.get(raw["record_key"])
                if key is not None:
                    lookup[str(key).lower()] = record.get(raw["value_field"])
            key_col = frame[raw["key"]]
            values = [
                lookup.get(str(v).lower()) if v is not None else None for v in key_col
            ]
            frames[out_name] = frame.assign(**{raw["new_column"]: Series(values)})
        elif op == "parse_dates":
            frame = self._frame(frames, raw["frame"])
            frames[out_name] = frame.assign(
                **{raw["column"]: frame[raw["column"]].parse_dates()}
            )
        elif op == "derive":
            frame = self._frame(frames, raw["frame"])
            left = self._operand(frame, raw["left"])
            right = self._operand(frame, raw["right"])
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a / b,
            }
            operator = raw["operator"]
            if operator not in ops:
                raise FrameError(f"unknown derive operator {operator!r}")
            frames[out_name] = frame.assign(**{raw["new_column"]: ops[operator](left, right)})
        elif op == "filter_not_null":
            frame = self._frame(frames, raw["frame"])
            frames[out_name] = frame.dropna(subset=raw["columns"])
        elif op == "filter_equals":
            frame = self._frame(frames, raw["frame"])
            column = frame[raw["column"]]
            target = raw["value"]
            if isinstance(target, str):
                mask = column.map(lambda v: str(v).lower() == target.lower())
            else:
                mask = column == target
            frames[out_name] = frame.filter(mask)
        elif op == "sort":
            frame = self._frame(frames, raw["frame"])
            frames[out_name] = frame.sort_values(raw["by"], ascending=raw.get("ascending", True))
        elif op == "interpolate":
            frame = self._frame(frames, raw["frame"])
            ordered = frame.sort_values(raw["order_by"])
            frames[out_name] = ordered.assign(
                **{raw["column"]: ordered[raw["column"]].interpolate()}
            )
        elif op == "rename":
            frame = self._frame(frames, raw["frame"])
            frames[out_name] = frame.rename(raw["mapping"])
        elif op == "select":
            frame = self._frame(frames, raw["frame"])
            frames[out_name] = frame.select(raw["columns"])
        elif op == "limit":
            frame = self._frame(frames, raw["frame"])
            frames[out_name] = frame.head(int(raw["n"]))
        elif op == "result":
            frame = self._frame(frames, raw["frame"])
            result.tables[raw["name"]] = frame.to_table(raw["name"])
        else:  # pragma: no cover - guarded by OP_SIGNATURES
            raise InterpreterError(-1, op, "unreachable")

    @staticmethod
    def _operand(frame: DataFrame, spec: Any) -> Any:
        """A derive operand: {'col': name} or {'lit': value}."""
        if isinstance(spec, Mapping) and "col" in spec:
            return frame[spec["col"]]
        if isinstance(spec, Mapping) and "lit" in spec:
            return spec["lit"]
        raise FrameError(f"operand must be {{'col': ...}} or {{'lit': ...}}, got {spec!r}")

    @staticmethod
    def _describe(op: str, raw: Mapping[str, Any]) -> str:
        details = {k: v for k, v in raw.items() if k not in ("op", "records")}
        return f"{op}({details})"
