"""The Materializer component (§3.4): populates ``T`` with data.

Context specialization in action: the Materializer sees only what data
integration needs — the target spec, the interpreted plan, the retrieved
documents — never the orchestration context.  It asks its LLM for a
pipeline program, runs it through the Python-interpreter tool, and feeds
errors back for repair, up to a bounded number of attempts.

When a :class:`~repro.prep.pipeline.PreparationPipeline` is attached,
specs the alignment compiler can serve losslessly — pure column
selection plus discovered/hinted equi-joins, no filters or transforms —
are seeded directly from a compiled preparation plan, skipping the LLM
loop entirely.  Anything the compiler rejects falls through to the
generate/repair loop unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

from ..llm.clock import TOOL_CALL_SECONDS
from ..llm.prompts import parse_response, render_prompt
from ..llm.rule_llm import RuleLLM
from ..relational.catalog import Database
from ..relational.table import Table
from .interpreter import InterpreterError, PipelineInterpreter
from .state import SharedState, TargetTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..prep.pipeline import PreparationPipeline

#: Interpreted-plan keys whose presence means the LLM loop must run: the
#: alignment compiler only guarantees column selection + equi-joins.
_LOOP_ONLY_PLAN_KEYS = ("filters", "order_column", "interpolate", "join")


@dataclass
class MaterializationOutcome:
    """What one materialization attempt chain produced."""

    table: Optional[Table] = None
    error: Optional[str] = None
    attempts: int = 0
    programs: List[List[Dict[str, Any]]] = field(default_factory=list)
    seeded: bool = False  # produced by a compiled preparation plan, no LLM
    plan_sql: Optional[str] = None  # the compiled SQL when seeded

    @property
    def ok(self) -> bool:
        return self.table is not None


class Materializer:
    """Generate → execute → error-feedback → repair, against the lake."""

    MAX_ATTEMPTS = 3

    def __init__(
        self,
        llm: RuleLLM,
        source: Database,
        state: SharedState,
        prep: Optional["PreparationPipeline"] = None,
    ):
        self.llm = llm
        self.source = source
        self.state = state
        self.prep = prep
        self.interpreter = PipelineInterpreter(source)

    def materialize(
        self,
        spec: TargetTable,
        plan: Optional[Mapping[str, Any]],
        docs: List[Mapping[str, Any]],
        note: str = "",
    ) -> MaterializationOutcome:
        if self._seedable(spec, plan):
            seeded = self._seed(spec)
            if seeded is not None:
                return seeded
        outcome = MaterializationOutcome()
        error = ""
        previous: Optional[List[Dict[str, Any]]] = None
        for attempt in range(1, self.MAX_ATTEMPTS + 1):
            outcome.attempts = attempt
            sections: Dict[str, Any] = {
                "TARGET": spec.to_json(),
                "PLAN": plan or {},
                "DOCS": list(docs),
                "NOTE": note,
                "ATTEMPT": str(attempt),
            }
            if error:
                sections["ERROR"] = error
                sections["PREVIOUS_PROGRAM"] = previous or []
            prompt = render_prompt("materializer", sections)
            response = parse_response(self.llm.complete(prompt, "materializer"))
            program = response.get("program") or []
            outcome.programs.append(program)
            previous = program
            try:
                result = self.interpreter.run(program)
                self.llm.clock.tick(TOOL_CALL_SECONDS)
            except InterpreterError as exc:
                error = str(exc)
                self.llm.clock.tick(TOOL_CALL_SECONDS)
                continue
            table = result.tables.get(spec.name)
            if table is None:
                error = (
                    f"program produced tables {sorted(result.tables)} but not the "
                    f"target {spec.name!r}"
                )
                continue
            self.state.record_materialized(table)
            outcome.table = table
            outcome.error = None
            return outcome
        outcome.error = error
        return outcome

    # ------------------------------------------------------------------
    # Seeded path (compiled preparation plans)
    # ------------------------------------------------------------------
    def _seedable(self, spec: TargetTable, plan: Optional[Mapping[str, Any]]) -> bool:
        """Whether the spec is within the alignment compiler's guarantees.

        Deliberately conservative: any interpreted-plan feature the
        compiler does not model (filters, ordering, interpolation, an
        explicit join recipe) or any non-join integration hint keeps the
        LLM loop in charge, so seeded and unseeded materializations are
        behaviorally identical where they overlap.
        """
        if self.prep is None:
            return False
        if set(spec.integration) - {"join"}:
            return False
        if plan and any(plan.get(key) for key in _LOOP_ONLY_PLAN_KEYS):
            return False
        return True

    def _seed(self, spec: TargetTable) -> Optional[MaterializationOutcome]:
        """Try the compiled preparation plan; None falls back to the loop."""
        from ..prep.align import AlignmentError  # local: avoids a core<->prep cycle

        assert self.prep is not None
        try:
            prep_plan, table = self.prep.prepare(spec)
        except AlignmentError:
            return None
        self.state.record_materialized(table)
        return MaterializationOutcome(
            table=table, attempts=0, seeded=True, plan_sql=prep_plan.sql
        )
