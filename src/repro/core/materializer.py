"""The Materializer component (§3.4): populates ``T`` with data.

Context specialization in action: the Materializer sees only what data
integration needs — the target spec, the interpreted plan, the retrieved
documents — never the orchestration context.  It asks its LLM for a
pipeline program, runs it through the Python-interpreter tool, and feeds
errors back for repair, up to a bounded number of attempts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..llm.clock import TOOL_CALL_SECONDS
from ..llm.prompts import parse_response, render_prompt
from ..llm.rule_llm import RuleLLM
from ..relational.catalog import Database
from ..relational.table import Table
from .interpreter import InterpreterError, PipelineInterpreter
from .state import SharedState, TargetTable


@dataclass
class MaterializationOutcome:
    """What one materialization attempt chain produced."""

    table: Optional[Table] = None
    error: Optional[str] = None
    attempts: int = 0
    programs: List[List[Dict[str, Any]]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.table is not None


class Materializer:
    """Generate → execute → error-feedback → repair, against the lake."""

    MAX_ATTEMPTS = 3

    def __init__(self, llm: RuleLLM, source: Database, state: SharedState):
        self.llm = llm
        self.source = source
        self.state = state
        self.interpreter = PipelineInterpreter(source)

    def materialize(
        self,
        spec: TargetTable,
        plan: Optional[Mapping[str, Any]],
        docs: List[Mapping[str, Any]],
        note: str = "",
    ) -> MaterializationOutcome:
        outcome = MaterializationOutcome()
        error = ""
        previous: Optional[List[Dict[str, Any]]] = None
        for attempt in range(1, self.MAX_ATTEMPTS + 1):
            outcome.attempts = attempt
            sections: Dict[str, Any] = {
                "TARGET": spec.to_json(),
                "PLAN": plan or {},
                "DOCS": list(docs),
                "NOTE": note,
                "ATTEMPT": str(attempt),
            }
            if error:
                sections["ERROR"] = error
                sections["PREVIOUS_PROGRAM"] = previous or []
            prompt = render_prompt("materializer", sections)
            response = parse_response(self.llm.complete(prompt, "materializer"))
            program = response.get("program") or []
            outcome.programs.append(program)
            previous = program
            try:
                result = self.interpreter.run(program)
                self.llm.clock.tick(TOOL_CALL_SECONDS)
            except InterpreterError as exc:
                error = str(exc)
                self.llm.clock.tick(TOOL_CALL_SECONDS)
                continue
            table = result.tables.get(spec.name)
            if table is None:
                error = (
                    f"program produced tables {sorted(result.tables)} but not the "
                    f"target {spec.name!r}"
                )
                continue
            self.state.record_materialized(table)
            outcome.table = table
            outcome.error = None
            return outcome
        outcome.error = error
        return outcome
