"""The Pneuma-Seeker session: the user-facing assembly of all components.

A session owns the lake, the IR System (Pneuma-Retriever + Document DB +
optional Web Search), the shared state ``(T, Q)``, the Materializer, and
the Conductor.  ``respond`` is the uniform system interface the evaluation
drives: message in, (user-facing reply + state view) out — the chat plus
state panes of Figure 2.

Sessions also capture knowledge: clarifications the user volunteers are
persisted to the Document Database, the paper's emergent-documentation
effect.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional

from ..ir.docdb import DocumentDatabase
from ..ir.system import IRSystem
from ..ir.web import WebSearch
from ..llm.policies import ConductorPolicy, MaterializerPolicy
from ..llm.rule_llm import RuleLLM
from ..relational.catalog import Database
from ..retriever.retriever import PneumaRetriever
from .conductor import Conductor
from .materializer import Materializer
from .state import SharedState

_KNOWLEDGE_CUES = re.compile(
    r"\b(assume|should be|should account|relative to|account for|must include|"
    r"only consider|make sure|remember that)\b",
    re.IGNORECASE,
)


@dataclass
class SeekerResponse:
    """One system turn: the chat message plus the rendered state view."""

    message: str
    state_view: str
    answer_value: Any = None
    turn_log: Any = None
    #: True when the turn was served on a degraded path (e.g. BM25-only
    #: retrieval with the dense half's circuit open); the answer is best
    #: effort rather than the full hybrid-quality response.
    degraded: bool = False

    def render(self) -> str:
        return f"{self.message}\n\n{self.state_view}"


def build_seeker_llm(model_name: str = "O4-mini", **kwargs) -> RuleLLM:
    """A RuleLLM with the Seeker-side policies registered."""
    llm = RuleLLM(model_name=model_name, **kwargs)
    llm.register(ConductorPolicy())
    llm.register(MaterializerPolicy())
    return llm


class SeekerSession:
    """An interactive Pneuma-Seeker session over a data lake."""

    def __init__(
        self,
        lake: Database,
        llm: Optional[RuleLLM] = None,
        web: Optional[WebSearch] = None,
        knowledge: Optional[DocumentDatabase] = None,
        enable_web: bool = True,
        user: str = "",
        retriever: Optional[PneumaRetriever] = None,
        plan_cache=None,
        prep=None,
    ):
        self.lake = lake
        self.llm = llm or build_seeker_llm()
        # A prebuilt (typically frozen, service-shared) retriever skips the
        # per-session narrate/embed/index pass; everything mutable — state,
        # Materializer, Conductor working memory — stays session-private.
        retriever = retriever if retriever is not None else PneumaRetriever(lake)
        self.knowledge_db = knowledge if knowledge is not None else DocumentDatabase()
        self.ir = IRSystem(
            retriever=retriever,
            web=web if enable_web else None,
            knowledge=self.knowledge_db,
        )
        if not enable_web:
            self.ir.unregister("web")
        # plan_cache (when service-provided) is shared across sessions:
        # the Conductor re-runs templated Q every turn, and warm plans
        # skip parse+bind+plan entirely.
        self.state = SharedState(plan_cache=plan_cache)
        # prep (when service-provided) is the shared sketch-based
        # preparation pipeline: specs it can compile are seeded from the
        # lake directly and skip the LLM materialization loop.
        self.materializer = Materializer(self.llm, lake, self.state, prep=prep)
        self.conductor = Conductor(self.llm, self.ir, self.state, self.materializer)
        self.user = user
        self.responses: List[SeekerResponse] = []

    # ------------------------------------------------------------------
    def submit(self, message: str) -> SeekerResponse:
        """One interaction turn: user message in, system response out."""
        if not message.strip():
            raise ValueError("user message must be non-empty")
        self._capture_knowledge(message)
        log = self.conductor.handle_turn(message)
        response = SeekerResponse(
            message=log.reply,
            state_view=self.state.render(),
            answer_value=self.answer_value,
            turn_log=log,
            degraded=log.degraded,
        )
        self.responses.append(response)
        return response

    def respond(self, message: str) -> str:
        """The uniform system interface (message + state view as one text)."""
        return self.submit(message).render()

    def ask(self, question: str, max_turns: int = 3) -> Any:
        """RQ2 mode: submit a fully specified information need, return the
        computed answer value (None when the system did not produce one).

        If a turn ends without an executed result (e.g. the action limit
        interrupted the plan), nudge the system to continue — the same thing
        an interactive user does.
        """
        self.submit(question)
        turns = 1
        while self.answer_value is None and turns < max_turns:
            self.submit("Please continue with the analysis.")
            turns += 1
        return self.answer_value

    # ------------------------------------------------------------------
    @property
    def answer_value(self) -> Any:
        result = self.state.last_result
        if result is not None and result.num_rows == 1 and result.num_columns == 1:
            return result.rows[0][0]
        return None

    def _capture_knowledge(self, message: str) -> None:
        """Persist clarifications into the Document DB (§3.3, §5.2)."""
        if _KNOWLEDGE_CUES.search(message):
            topic_tokens = " ".join(message.split()[:6])
            self.ir.capture_knowledge(message, topic=topic_tokens, author=self.user)
