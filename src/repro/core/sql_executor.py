"""The SQL Executor tool (the paper uses DuckDB; we use repro.relational).

Wraps query execution with structured success/error results so the
Conductor and Materializer can feed errors back to the LLM for repair
("the respective tool analyzes these errors and provides feedback").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs import trace as obs
from ..relational.catalog import Database
from ..relational.errors import RelationalError
from ..relational.table import Table


@dataclass
class SQLResult:
    """Outcome of one statement: a table or an error message."""

    sql: str
    table: Optional[Table] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class SQLExecutor:
    """Runs Q (a sequence of SQL statements) against a database.

    Statements go through the database's planned, vectorized engine: a
    repeated templated query (the Conductor re-runs Q every turn) hits
    the catalog-versioned plan cache and skips parse+bind+plan.
    """

    def __init__(self, database: Database):
        self.database = database

    def execute(self, sql: str) -> SQLResult:
        with obs.span("sql.execute") as sp:
            try:
                return SQLResult(sql=sql, table=self.database.execute(sql))
            except RelationalError as exc:
                sp.set_attr("error", type(exc).__name__)
                return SQLResult(sql=sql, error=f"{type(exc).__name__}: {exc}")

    def plan_cache_stats(self) -> dict:
        """Hit/miss counters of the backing database's plan cache."""
        return self.database.plan_cache_stats()

    def execute_all(self, queries: List[str]) -> List[SQLResult]:
        """Execute Q in order, stopping at the first error."""
        results: List[SQLResult] = []
        for sql in queries:
            result = self.execute(sql)
            results.append(result)
            if not result.ok:
                break
        return results
