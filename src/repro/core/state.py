"""The shared state ``(T, Q)``: the reified information need.

The paper's central idea: an information need is reified as a relational
data model — a set of target tables ``T`` plus a sequence of SQL queries
``Q`` over them.  The state is *shared*: the user refines it via language,
the Conductor updates it via state-modification actions, and the interface
surfaces it (Figure 2, box 3) so users can spot subtle mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..relational.catalog import Database
from ..relational.table import Table


@dataclass
class TargetColumn:
    """One column of a target table, with its intended provenance."""

    name: str
    dtype: str = "TEXT"
    source: str = ""  # e.g. 'samples.potassium_ppm' or 'web:tariff-schedule'

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name, "dtype": self.dtype, "source": self.source}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TargetColumn":
        return cls(data["name"], data.get("dtype", "TEXT"), data.get("source", ""))


@dataclass
class TargetTable:
    """The specification of one table in ``T``."""

    name: str
    columns: List[TargetColumn] = field(default_factory=list)
    base_tables: List[str] = field(default_factory=list)
    integration: Dict[str, Any] = field(default_factory=dict)  # join/web/transform hints
    notes: str = ""

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "columns": [c.to_json() for c in self.columns],
            "base_tables": self.base_tables,
            "integration": self.integration,
            "notes": self.notes,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TargetTable":
        return cls(
            name=data["name"],
            columns=[TargetColumn.from_json(c) for c in data.get("columns", [])],
            base_tables=list(data.get("base_tables", [])),
            integration=dict(data.get("integration", {})),
            notes=data.get("notes", ""),
        )


class SharedState:
    """``(T, Q)`` plus the materialized instances of ``T``.

    Every modification bumps ``version`` and appends a human-readable entry
    to ``changelog`` — the trace the UI and the evaluation inspect.
    """

    def __init__(self, plan_cache: Optional[Any] = None) -> None:
        self.tables: Dict[str, TargetTable] = {}  # T (specification)
        self.queries: List[str] = []  # Q
        # A service may hand every session one shared SQL plan cache so
        # repeated templated Q executions skip parse+bind+plan; keys are
        # namespaced per database, so sharing is collision-free.
        self._plan_cache = plan_cache
        self.materialized = Database("materialized", plan_cache=plan_cache)
        self.version = 0
        self.changelog: List[str] = []
        self.last_result: Optional[Table] = None

    # ------------------------------------------------------------------
    # Mutation (Conductor's state-modification actions)
    # ------------------------------------------------------------------
    def _bump(self, message: str) -> None:
        self.version += 1
        self.changelog.append(f"v{self.version}: {message}")

    def set_table(self, spec: TargetTable) -> None:
        action = "updated" if spec.name in self.tables else "defined"
        self.tables[spec.name] = spec
        self._bump(f"{action} target table {spec.name!r} with columns {spec.column_names()}")

    def remove_table(self, name: str) -> None:
        if name in self.tables:
            del self.tables[name]
            self.materialized.drop_table(name, if_exists=True)
            self._bump(f"removed target table {name!r}")

    def set_queries(self, queries: Sequence[str]) -> None:
        self.queries = list(queries)
        self._bump(f"updated Q to {len(self.queries)} quer{'y' if len(self.queries)==1 else 'ies'}")

    def record_materialized(self, table: Table) -> None:
        self.materialized.register(table, replace=True)
        self._bump(f"materialized {table.name!r} ({table.num_rows} rows)")

    def is_materialized(self, name: str) -> bool:
        return self.materialized.has_table(name)

    def record_result(self, table: Table) -> None:
        self.last_result = table
        self._bump(f"executed Q; result has {table.num_rows} row(s)")

    def clear(self) -> None:
        self.tables.clear()
        self.queries.clear()
        self.materialized = Database("materialized", plan_cache=self._plan_cache)
        self.last_result = None
        self._bump("cleared state")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "T": [t.to_json() for t in self.tables.values()],
            "Q": list(self.queries),
            "materialized": sorted(self.materialized.table_names()),
        }

    def render(self, max_rows: int = 5) -> str:
        """The state view page (Figure 2, box 3): T, Q, and sample rows."""
        lines = [f"STATE (version {self.version})"]
        if not self.tables:
            lines.append("T: (not yet defined)")
        for spec in self.tables.values():
            columns = ", ".join(f"{c.name} {c.dtype}" for c in spec.columns)
            lines.append(f"T[{spec.name}]: ({columns})")
            if spec.base_tables:
                lines.append(f"  from: {', '.join(spec.base_tables)}")
            if spec.notes:
                lines.append(f"  notes: {spec.notes}")
            if self.is_materialized(spec.name):
                table = self.materialized.resolve_table(spec.name)
                lines.append(f"  materialized ({table.num_rows} rows), sample:")
                for row_line in table.head(max_rows).pretty(max_rows).split("\n"):
                    lines.append(f"    {row_line}")
        if self.queries:
            lines.append("Q:")
            for i, query in enumerate(self.queries, 1):
                lines.append(f"  {i}. {query}")
        else:
            lines.append("Q: (empty)")
        if self.last_result is not None:
            lines.append("last result:")
            for row_line in self.last_result.pretty(max_rows).split("\n"):
                lines.append(f"  {row_line}")
        return "\n".join(lines)

    def diff_summary(self, since_version: int) -> List[str]:
        """Changelog entries after ``since_version`` (for user-facing recaps)."""
        return [
            entry
            for entry in self.changelog
            if int(entry.split(":", 1)[0][1:]) > since_version
        ]
