"""datasets — synthetic KramaBench-shaped lakes with ground truth.

``load_archaeology`` and ``load_environment`` return
:class:`~repro.datasets.questions.BenchmarkDataset` objects (lake +
questions); ``scale`` shrinks row counts for fast tests while keeping every
question answerable (the paper shape is ``scale=1.0``).
"""

from .archaeology import build_archaeology_lake, build_archaeology_questions, load_archaeology
from .environment import build_environment_lake, build_environment_questions, load_environment
from .procurement import (
    TARIFF_RECORDS,
    build_procurement_lake,
    build_tariff_web,
    tariff_impact_ground_truth,
)
from .questions import BenchmarkDataset, Question, answers_match

__all__ = [
    "BenchmarkDataset",
    "Question",
    "answers_match",
    "load_archaeology",
    "build_archaeology_lake",
    "build_archaeology_questions",
    "load_environment",
    "build_environment_lake",
    "build_environment_questions",
    "build_procurement_lake",
    "build_tariff_web",
    "tariff_impact_ground_truth",
    "TARIFF_RECORDS",
]
