"""The archaeology lake: 5 tables, 12 questions (KramaBench analogue).

Shape matches the paper's Table 1 (5 tables, ~11,289 avg rows, 16 avg
columns).  Question difficulty classes (the ``design`` tag):

- ``both``: single-table aggregates with no filter, or filters whose value
  is visible in sample rows — a one-shot planner solves these;
- ``seeker``: need value grounding (rare filter spellings), joins, or data
  preparation (linear interpolation) — the iterative, grounded loop wins;
- ``none``: ratios, group-argmax, weighted/derived measures — beyond both
  (they keep accuracy below 100% exactly as KramaBench does).
"""

from __future__ import annotations

import datetime
from typing import List

from ..core.convergence import Concept
from ..frames.frame import DataFrame
from ..relational.catalog import Database
from ..relational.functions import _round
from ..relational.table import Table
from .generator import dates_between, make_rng, normal, pick, scaled, uniform_int, with_nulls
from .questions import BenchmarkDataset, Question

REGIONS = ["Cretan Hills", "Iberian Valley", "Maltese Islands", "Gozo Plateau", "Sicilian Coast"]
MATERIALS = ["Bronze", "Ceramic", "Iron", "Stone", "Glass", "Gold", "Silver", "Bone"]
PERIODS = ["Roman", "Classical", "Archaic", "Neolithic", "Hellenistic", "Byzantine"]
SUPERVISORS = ["Dr. Chen", "Dr. Okafor", "Dr. Moreno", "Dr. Haddad"]


def _field_samples(rng, n: int) -> Table:
    # Fixed prefix rows pin what one-shot planners can see in samples: the
    # first three rows avoid the rare regions used by grounded questions.
    regions = pick(rng, REGIONS, n, p=[0.3, 0.3, 0.15, 0.15, 0.1])
    regions[:3] = ["Cretan Hills", "Iberian Valley", "Cretan Hills"]
    return Table.from_columns(
        "field_samples",
        {
            "sample_id": list(range(1, n + 1)),
            "site_id": uniform_int(rng, 1, 150, n),
            "region": regions,
            "record_date": dates_between(
                rng, datetime.date(1998, 1, 1), datetime.date(2023, 12, 31), n
            ),
            "potassium_ppm": with_nulls(rng, normal(rng, 210.0, 40.0, n, lo=40, hi=400, decimals=4), 0.12),
            "sodium_ppm": with_nulls(rng, normal(rng, 95.0, 22.0, n, lo=5, hi=220), 0.08),
            "calcium_ppm": normal(rng, 410.0, 80.0, n, lo=50, hi=800),
            "magnesium_ppm": normal(rng, 130.0, 30.0, n, lo=10, hi=300),
            "phosphorus_ppm": with_nulls(rng, normal(rng, 58.0, 15.0, n, lo=2, hi=140), 0.05),
            "nitrogen_pct": normal(rng, 0.35, 0.1, n, lo=0.01, hi=0.9, decimals=3),
            "ph_level": normal(rng, 7.1, 0.6, n, lo=4.5, hi=9.5),
            "moisture_pct": with_nulls(rng, normal(rng, 22.0, 7.0, n, lo=1, hi=55), 0.1),
            "depth_cm": uniform_int(rng, 5, 300, n),
            "collector": pick(rng, SUPERVISORS, n),
            "method": pick(rng, ["auger", "core", "trench", "surface"], n),
            "notes": pick(rng, ["", "weathered", "clay layer", "ash lens", "disturbed"], n),
        },
    )


def _artifacts(rng, n: int) -> Table:
    materials = pick(rng, MATERIALS, n, p=[0.22, 0.3, 0.14, 0.12, 0.08, 0.05, 0.05, 0.04])
    materials[:3] = ["Bronze", "Ceramic", "Iron"]  # Bronze is sample-visible
    periods = pick(rng, PERIODS, n, p=[0.3, 0.22, 0.16, 0.12, 0.1, 0.1])
    periods[:3] = ["Roman", "Classical", "Roman"]  # Hellenistic is not
    return Table.from_columns(
        "artifacts",
        {
            "artifact_id": list(range(1, n + 1)),
            "site_id": uniform_int(rng, 1, 150, n),
            "artifact_type": pick(rng, ["vessel", "coin", "tool", "ornament", "weapon", "figurine"], n),
            "material": materials,
            "period": periods,
            "mass_grams": normal(rng, 180.0, 90.0, n, lo=0.5, hi=900, decimals=2),
            "length_cm": normal(rng, 12.0, 6.0, n, lo=0.5, hi=60),
            "width_cm": normal(rng, 6.0, 3.0, n, lo=0.2, hi=40),
            "condition": pick(rng, ["intact", "fragmentary", "restored", "corroded"], n),
            "discovered_date": dates_between(
                rng, datetime.date(1960, 1, 1), datetime.date(2023, 12, 31), n
            ),
            "excavator": pick(rng, SUPERVISORS, n),
            "layer": uniform_int(rng, 1, 12, n),
            "catalog_code": [f"CAT-{i:06d}" for i in range(1, n + 1)],
            "museum": pick(rng, ["National Museum", "Regional Collection", "University Archive"], n),
            "insured_value": normal(rng, 5200.0, 3100.0, n, lo=50, hi=40000, decimals=2),
            "description": pick(rng, ["", "decorated rim", "inscription visible", "burnt traces"], n),
        },
    )


def _sites(rng, n: int) -> Table:
    protection = pick(rng, ["None", "National Register", "World Heritage"], n, p=[0.6, 0.3, 0.1])
    protection[:3] = ["World Heritage", "National Register", "None"]  # visible in samples
    site_types = pick(rng, ["coastal", "inland", "upland"], n, p=[0.4, 0.4, 0.2])
    return Table.from_columns(
        "sites",
        {
            "site_id": list(range(1, n + 1)),
            "site_name": [f"Site {chr(65 + i % 26)}{i:03d}" for i in range(1, n + 1)],
            "region": pick(rng, REGIONS, n),
            "country": pick(rng, ["Malta", "Italy", "Greece", "Spain"], n),
            "latitude": normal(rng, 36.5, 2.0, n, decimals=5),
            "longitude": normal(rng, 14.3, 3.0, n, decimals=5),
            "elevation_m": uniform_int(rng, 0, 900, n),
            "site_type": site_types,
            "first_excavation_year": uniform_int(rng, 1890, 1995, n),
            "last_excavation_year": uniform_int(rng, 1996, 2023, n),
            "area_sq_m": uniform_int(rng, 50, 20000, n),
            "soil_class": pick(rng, ["terra rossa", "rendzina", "alluvial", "sandy"], n),
            "access_road": pick(rng, [True, False], n),
            "steward": pick(rng, SUPERVISORS, n),
            "protection_status": protection,
            "notes": pick(rng, ["", "partially flooded", "tourist access", "restricted"], n),
        },
    )


def _radiocarbon(rng, n: int) -> Table:
    materials = pick(rng, ["Bone", "Seed", "Charcoal", "Shell", "Wood"], n, p=[0.3, 0.2, 0.25, 0.1, 0.15])
    materials[:3] = ["Bone", "Seed", "Wood"]  # Charcoal is not sample-visible
    calibrated_start = uniform_int(rng, -4500, 1200, n)
    # The global maximum must come from a non-Charcoal record so that an
    # unfiltered MAX is measurably wrong for the charcoal question.
    calibrated_start[0] = 1450
    materials[0] = "Bone"
    return Table.from_columns(
        "radiocarbon_dates",
        {
            "lab_code": [f"LAB-{i:06d}" for i in range(1, n + 1)],
            "sample_id": uniform_int(rng, 1, max(n, 100), n),
            "site_id": uniform_int(rng, 1, 150, n),
            "material_dated": materials,
            "age_bp": uniform_int(rng, 800, 6500, n),
            "age_error": uniform_int(rng, 15, 120, n),
            "calibrated_start": calibrated_start,
            "calibrated_end": [s + int(d) for s, d in zip(calibrated_start, uniform_int(rng, 50, 400, n))],
            "method": pick(rng, ["AMS", "LSC"], n, p=[0.8, 0.2]),
            "lab_name": pick(rng, ["Oxford", "Zurich", "Tucson", "Kyoto"], n),
            "submitted_by": pick(rng, SUPERVISORS, n),
            "submission_date": dates_between(rng, datetime.date(1990, 1, 1), datetime.date(2023, 12, 31), n),
            "delta_c13": normal(rng, -24.0, 2.0, n),
            "quality_flag": pick(rng, ["ok", "ok", "ok", "low"], n),
            "context_layer": uniform_int(rng, 1, 12, n),
            "remarks": pick(rng, ["", "contamination suspected", "duplicate run"], n),
        },
    )


def _excavation_log(rng, n: int) -> Table:
    finds = uniform_int(rng, 0, 60, n)
    return Table.from_columns(
        "excavation_log",
        {
            "entry_id": list(range(1, n + 1)),
            "site_id": uniform_int(rng, 1, 150, n),
            "log_date": dates_between(rng, datetime.date(2010, 1, 1), datetime.date(2023, 12, 31), n),
            "team_size": uniform_int(rng, 2, 25, n),
            "hours_worked": normal(rng, 7.5, 1.5, n, lo=2, hi=12),
            "area_opened_sq_m": normal(rng, 14.0, 6.0, n, lo=1, hi=60),
            "finds_count": finds,
            "weather": pick(rng, ["sunny", "rain", "wind", "overcast"], n),
            "supervisor": pick(rng, SUPERVISORS, n),
            "season": pick(rng, ["spring", "summer", "autumn"], n),
            "trench": pick(rng, ["T1", "T2", "T3", "T4", "T5"], n),
            "level_cm": uniform_int(rng, 10, 400, n),
            "equipment": pick(rng, ["hand tools", "sieve", "total station", "drone"], n),
            "funding_source": pick(rng, ["university", "grant", "ministry"], n),
            "daily_cost": normal(rng, 1450.0, 420.0, n, lo=200, hi=4000, decimals=2),
            "summary": pick(rng, ["", "pottery concentration", "wall foundation", "sterile layer"], n),
        },
    )


def build_archaeology_lake(scale: float = 1.0, seed: int = 7) -> Database:
    """Build the archaeology lake (paper shape at ``scale=1.0``)."""
    rng = make_rng(seed)
    lake = Database("archaeology")
    # Row counts average to the paper's 11,289; excavation_log is kept small
    # enough that it is the one table a 200k-context model can ingest whole
    # (the §4.2 experiment needs both the overflow and the fits-but-fails path).
    lake.register(_field_samples(rng, scaled(24_000, scale)))
    lake.register(_artifacts(rng, scaled(20_000, scale)))
    lake.register(_sites(rng, 150))
    lake.register(_radiocarbon(rng, scaled(9_000, scale)))
    lake.register(_excavation_log(rng, scaled(3_295, scale)))
    return lake


# ----------------------------------------------------------------------
# Reference implementations (ground truth)
# ----------------------------------------------------------------------


def _interp_first_last_avg(
    lake: Database,
    table: str,
    filter_col: str,
    filter_val: str,
    date_col: str,
    measure: str,
    digits: int,
) -> float:
    """Filter → sort by date → linear interpolation → AVG at min/max date."""
    df = DataFrame.from_table(lake.resolve_table(table))
    df = df.filter(df[filter_col].map(lambda v: str(v).lower() == filter_val.lower()))
    df = df.sort_values(date_col)
    df = df.assign(**{measure: df[measure].interpolate()})
    dates = [d for d in df[date_col] if d is not None]
    lo, hi = min(dates), max(dates)
    values = [
        df[measure][i]
        for i in range(len(df))
        if df[date_col][i] in (lo, hi) and df[measure][i] is not None
    ]
    return _round(sum(values) / len(values), digits)


def _q1(lake: Database) -> float:
    return lake.query_value("SELECT AVG(potassium_ppm) FROM field_samples")


def _q2(lake: Database) -> float:
    return _interp_first_last_avg(
        lake, "field_samples", "region", "Maltese Islands", "record_date", "potassium_ppm", 4
    )


def _q3(lake: Database) -> int:
    return lake.query_value("SELECT COUNT(*) FROM artifacts WHERE material = 'Bronze'")


def _q4(lake: Database) -> float:
    return lake.query_value(
        "SELECT AVG(mass_grams) FROM artifacts WHERE period = 'Hellenistic'"
    )


def _q5(lake: Database) -> float:
    return lake.query_value(
        "SELECT AVG(f.phosphorus_ppm) FROM field_samples f JOIN sites s "
        "ON f.site_id = s.site_id WHERE s.protection_status = 'World Heritage'"
    )


def _q6(lake: Database) -> float:
    return lake.query_value("SELECT MEDIAN(age_bp) FROM radiocarbon_dates")


def _q7(lake: Database) -> float:
    gold = lake.query_value("SELECT AVG(insured_value) FROM artifacts WHERE material = 'Gold'")
    silver = lake.query_value("SELECT AVG(insured_value) FROM artifacts WHERE material = 'Silver'")
    return gold / silver


def _q8(lake: Database) -> int:
    table = lake.execute(
        "SELECT YEAR(log_date) AS y, SUM(finds_count) AS total FROM excavation_log "
        "GROUP BY YEAR(log_date) ORDER BY total DESC LIMIT 1"
    )
    return table.rows[0][0]


def _q9(lake: Database) -> float:
    coastal = lake.query_value(
        "SELECT AVG(f.ph_level) FROM field_samples f JOIN sites s ON f.site_id = s.site_id "
        "WHERE s.site_type = 'coastal'"
    )
    inland = lake.query_value(
        "SELECT AVG(f.ph_level) FROM field_samples f JOIN sites s ON f.site_id = s.site_id "
        "WHERE s.site_type = 'inland'"
    )
    return coastal - inland


def _q10(lake: Database) -> float:
    low = lake.query_value("SELECT COUNT(*) FROM radiocarbon_dates WHERE quality_flag = 'low'")
    total = lake.query_value("SELECT COUNT(*) FROM radiocarbon_dates")
    return 100.0 * low / total


def _q11(lake: Database) -> int:
    return lake.query_value(
        "SELECT COUNT(*) FROM (SELECT site_id FROM artifacts GROUP BY site_id "
        "HAVING COUNT(*) > 100) s"
    )


def _q12(lake: Database) -> float:
    table = lake.execute(
        "SELECT SUM(moisture_pct * depth_cm) AS num, SUM(depth_cm) AS den "
        "FROM field_samples WHERE moisture_pct IS NOT NULL"
    )
    num, den = table.rows[0]
    return num / den


def build_archaeology_questions() -> List[Question]:
    c = Concept
    return [
        Question(
            "arch-01", "archaeology",
            "What is the average potassium in ppm across all field samples?",
            "soil chemistry from past excavation studies",
            [c("field samples", "seed"), c("potassium", "column")],
            ["field_samples"], _q1, design="both",
        ),
        Question(
            "arch-02", "archaeology",
            "What is the average potassium in ppm from the first and last time the "
            "study recorded samples in the Maltese Islands? Assume that potassium is "
            "linearly interpolated between samples. Round your answer to 4 decimal places.",
            "historical data from the Maltese region",
            [
                c("Maltese", "seed"),
                c("potassium", "column"),
                c("linearly interpolated", "operation"),
                c("first and last recorded", "operation"),
            ],
            ["field_samples"], _q2, design="seeker",
        ),
        Question(
            "arch-03", "archaeology",
            "How many artifacts in the collection are made of Bronze?",
            "the excavated artifact collection",
            [c("artifacts", "seed"), c("bronze", "value")],
            ["artifacts"], _q3, design="both",
        ),
        Question(
            "arch-04", "archaeology",
            "What is the average mass in grams of artifacts from the Hellenistic period?",
            "the excavated artifact collection",
            [c("artifacts", "seed"), c("mass grams", "column"), c("hellenistic", "value")],
            ["artifacts"], _q4, design="seeker",
        ),
        Question(
            "arch-05", "archaeology",
            "What is the average phosphorus in ppm for field samples collected at "
            "sites with World Heritage protection status?",
            "soil chemistry and excavation sites",
            [c("phosphorus", "column"), c("sites", "seed"), c("world heritage", "value")],
            ["field_samples", "sites"], _q5, design="seeker",
        ),
        Question(
            "arch-06", "archaeology",
            "What is the median age BP across all radiocarbon dates?",
            "radiocarbon dating results",
            [c("radiocarbon", "seed"), c("age bp", "column")],
            ["radiocarbon_dates"], _q6, design="both",
        ),
        Question(
            "arch-07", "archaeology",
            "What is the ratio of the average insured value of Gold artifacts to the "
            "average insured value of Silver artifacts?",
            "the excavated artifact collection",
            [c("artifacts", "seed"), c("insured value", "column"), c("gold", "value")],
            ["artifacts"], _q7, design="none",
        ),
        Question(
            "arch-08", "archaeology",
            "In which calendar year did the excavation log record the largest total "
            "finds count across all sites?",
            "excavation activity logs",
            [c("excavation log", "seed"), c("finds count", "column")],
            ["excavation_log"], _q8, design="none",
        ),
        Question(
            "arch-09", "archaeology",
            "How much higher is the average soil pH at coastal sites than at inland sites?",
            "soil chemistry and excavation sites",
            [c("ph level", "column"), c("coastal", "value"), c("sites", "seed")],
            ["field_samples", "sites"], _q9, design="none",
        ),
        Question(
            "arch-10", "archaeology",
            "What percentage of radiocarbon dates carry a low quality flag?",
            "radiocarbon dating results",
            [c("radiocarbon", "seed"), c("quality flag", "column")],
            ["radiocarbon_dates"], _q10, design="none",
        ),
        Question(
            "arch-11", "archaeology",
            "How many sites yielded more than 100 artifacts?",
            "the excavated artifact collection",
            [c("artifacts", "seed"), c("sites", "seed")],
            ["artifacts", "sites"], _q11, design="none",
        ),
        Question(
            "arch-12", "archaeology",
            "What is the depth-weighted average moisture percentage across all field samples?",
            "soil chemistry from past excavation studies",
            [c("field samples", "seed"), c("moisture", "column"), c("depth", "column")],
            ["field_samples"], _q12, design="none",
        ),
    ]


def load_archaeology(scale: float = 1.0, seed: int = 7) -> BenchmarkDataset:
    """The archaeology benchmark: lake + 12 questions."""
    return BenchmarkDataset(
        name="archaeology",
        lake=build_archaeology_lake(scale, seed),
        questions=build_archaeology_questions(),
    )
