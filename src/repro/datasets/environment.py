"""The environment lake: 36 tables, 20 questions (KramaBench analogue).

Shape matches the paper's Table 1 (36 tables, ~9,199 avg rows, 10 avg
columns): per-year air-quality and water-quality tables (2012-2023), ten
regional weather tables, and two dimension tables (stations, regions).
The per-year split makes cross-year questions genuinely multi-table, and
station attributes (name, operator, type, region) live only in the
``stations`` dimension — questions that filter on them require a join.
"""

from __future__ import annotations

import datetime
from typing import List

from ..core.convergence import Concept
from ..frames.frame import DataFrame
from ..relational.catalog import Database
from ..relational.functions import _round
from ..relational.table import Table
from .generator import dates_between, make_rng, normal, pick, scaled, uniform_int, with_nulls
from .questions import BenchmarkDataset, Question

AIR_YEARS = list(range(2012, 2024))
WATER_YEARS = list(range(2012, 2024))
WEATHER_REGIONS = [
    "coastal", "inland", "highland", "valley", "desert",
    "forest", "urban", "rural", "island", "lakeside",
]
REGION_NAMES = [
    "Northern Highlands", "Coastal Strip", "Central Valley", "Eastern Forest",
    "Western Desert", "Lake District", "Urban Core", "Southern Plains",
    "Island Chain", "River Delta",
]
OPERATORS = ["National Observatory", "City Environment Agency", "River Authority"]
STATION_TYPES = ["marine", "coastal", "inland", "alpine"]


def _air_table(rng, year: int, n: int) -> Table:
    start = datetime.date(year, 1, 1)
    end = datetime.date(year, 12, 31)
    station_ids = uniform_int(rng, 1, 400, n)
    # The named stations (see _stations) always have readings, so join
    # questions are non-degenerate at every scale.
    station_ids[:3] = [1, 3, 2]
    return Table.from_columns(
        f"air_quality_{year}",
        {
            "station_id": station_ids,
            "reading_date": dates_between(rng, start, end, n),
            "pm25": with_nulls(rng, normal(rng, 18.0 + (year - 2012) * 0.4, 9.0, n, lo=0.5, hi=180, decimals=2), 0.06),
            "pm10": normal(rng, 32.0, 14.0, n, lo=1, hi=260),
            "ozone": with_nulls(rng, normal(rng, 48.0, 16.0, n, lo=2, hi=160), 0.05),
            "no2": normal(rng, 21.0, 8.0, n, lo=1, hi=120),
            "so2": normal(rng, 6.0, 3.0, n, lo=0.2, hi=60),
            "co": normal(rng, 0.6, 0.25, n, lo=0.05, hi=4, decimals=3),
            "temperature_c": normal(rng, 15.0, 9.0, n, lo=-20, hi=45),
            "humidity_pct": normal(rng, 62.0, 18.0, n, lo=5, hi=100),
        },
    )


def _water_table(rng, year: int, n: int) -> Table:
    start = datetime.date(year, 1, 1)
    end = datetime.date(year, 12, 31)
    dates = dates_between(rng, start, end, n)
    dissolved = with_nulls(rng, normal(rng, 8.2, 1.6, n, lo=0.5, hi=14, decimals=3), 0.08)
    nitrate = with_nulls(rng, normal(rng, 2.4, 1.1, n, lo=0.01, hi=12, decimals=3), 0.07)
    # Pin boundary dates with a missing measurement among them, so that
    # "linearly interpolated between samples" changes the answer: the filled
    # value (the mean of its neighbours) must differ from the raw boundary
    # mean, which the asymmetric max-date values guarantee.
    if n >= 4:
        dates[0], dates[1], dates[2] = start, start, start
        dates[3] = end
        dissolved[0], dissolved[1], dissolved[2], dissolved[3] = 8.5, None, 7.7, 9.9
        nitrate[0], nitrate[1], nitrate[2], nitrate[3] = 2.1, None, 3.3, 4.4
    station_ids = uniform_int(rng, 1, 400, n)
    station_ids[:3] = [1, 1, 3]
    return Table.from_columns(
        f"water_quality_{year}",
        {
            "station_id": station_ids,
            "sample_date": dates,
            "ph": normal(rng, 7.4, 0.5, n, lo=5, hi=9.5),
            "dissolved_oxygen": dissolved,
            "turbidity": normal(rng, 4.8, 2.2, n, lo=0.1, hi=30),
            "nitrate": nitrate,
            "phosphate": normal(rng, 0.35, 0.18, n, lo=0.005, hi=2.5, decimals=3),
            "lead_ppb": normal(rng, 2.8, 1.5, n, lo=0.05, hi=18, decimals=3),
            "ecoli_count": uniform_int(rng, 0, 900, n),
            "temperature_c": normal(rng, 13.0, 6.0, n, lo=0, hi=32),
        },
    )


def _weather_table(rng, region: str, n: int) -> Table:
    start = datetime.date(2012, 1, 1)
    end = datetime.date(2023, 12, 31)
    min_temp = normal(rng, 7.0, 8.0, n, lo=-30, hi=28)
    station_ids = uniform_int(rng, 1, 400, n)
    station_ids[:3] = [2, 2, 3]
    return Table.from_columns(
        f"weather_{region}",
        {
            "station_id": station_ids,
            "obs_date": dates_between(rng, start, end, n),
            "max_temperature": [round(t + abs(d), 2) for t, d in zip(min_temp, normal(rng, 9.0, 3.0, n))],
            "min_temperature": min_temp,
            "precipitation_mm": normal(rng, 3.1, 4.0, n, lo=0, hi=80),
            "wind_speed_kmh": normal(rng, 14.0, 7.0, n, lo=0, hi=110),
            "wind_direction": pick(rng, ["N", "NE", "E", "SE", "S", "SW", "W", "NW"], n),
            "pressure_hpa": normal(rng, 1013.0, 9.0, n, lo=950, hi=1060),
            "snow_cm": normal(rng, 0.4, 1.5, n, lo=0, hi=45),
            "visibility_km": normal(rng, 14.0, 6.0, n, lo=0.1, hi=40),
        },
    )


def _stations(rng, n: int = 400) -> Table:
    names = [f"Station {chr(65 + i % 26)}{i:03d}" for i in range(1, n + 1)]
    operators = pick(rng, OPERATORS, n)
    types = pick(rng, STATION_TYPES, n)
    regions = pick(rng, REGION_NAMES, n)
    # Fixed prefix rows: named stations the grounded questions refer to.
    names[0], operators[0], types[0], regions[0] = (
        "Harborview Station", "National Observatory", "marine", "Coastal Strip",
    )
    names[1], operators[1], types[1], regions[1] = (
        "Beacon Point", "City Environment Agency", "coastal", "Island Chain",
    )
    names[2], operators[2], types[2], regions[2] = (
        "Valley Gate", "National Observatory", "inland", "Northern Highlands",
    )
    return Table.from_columns(
        "stations",
        {
            "station_id": list(range(1, n + 1)),
            "station_name": names,
            "region": regions,
            "latitude": normal(rng, 45.0, 4.0, n, decimals=5),
            "longitude": normal(rng, 8.0, 6.0, n, decimals=5),
            "elevation_m": uniform_int(rng, 0, 2400, n),
            "operator": operators,
            "established_year": uniform_int(rng, 1950, 2018, n),
            "station_type": types,
            "active": pick(rng, [True, False], n, p=[0.9, 0.1]),
        },
    )


def _regions(rng) -> Table:
    n = 40
    names = [REGION_NAMES[i % len(REGION_NAMES)] + ("" if i < 10 else f" {i // 10}") for i in range(n)]
    return Table.from_columns(
        "regions",
        {
            "region_id": list(range(1, n + 1)),
            "region_name": names,
            "area_km2": uniform_int(rng, 200, 40000, n),
            "population_thousands": uniform_int(rng, 5, 4000, n),
            "coastal_flag": pick(rng, [True, False], n),
            "country": pick(rng, ["Atlantis", "Borduria", "Syldavia"], n),
            "climate_zone": pick(rng, ["temperate", "arid", "alpine", "mediterranean"], n),
            "protected_pct": normal(rng, 18.0, 9.0, n, lo=0, hi=80),
            "avg_elevation_m": uniform_int(rng, 5, 2600, n),
            "notes": pick(rng, ["", "seasonal flooding", "wildfire risk", "heavy industry"], n),
        },
    )


def build_environment_lake(scale: float = 1.0, seed: int = 21) -> Database:
    """Build the environment lake (paper shape at ``scale=1.0``)."""
    rng = make_rng(seed)
    lake = Database("environment")
    for year in AIR_YEARS:
        lake.register(_air_table(rng, year, scaled(12_000, scale)))
    for year in WATER_YEARS:
        lake.register(_water_table(rng, year, scaled(8_000, scale)))
    for i, region in enumerate(WEATHER_REGIONS):
        extra = 4 if i == 0 else 0  # tunes the Table 1 average to 9,199
        lake.register(_weather_table(rng, region, scaled(9_072 + extra, scale)))
    lake.register(_stations(rng))
    lake.register(_regions(rng))
    return lake


# ----------------------------------------------------------------------
# Reference implementations (ground truth)
# ----------------------------------------------------------------------


def _interp_first_last_avg(lake: Database, table: str, date_col: str, measure: str, digits: int) -> float:
    df = DataFrame.from_table(lake.resolve_table(table))
    df = df.sort_values(date_col)
    df = df.assign(**{measure: df[measure].interpolate()})
    dates = [d for d in df[date_col] if d is not None]
    lo, hi = min(dates), max(dates)
    values = [
        df[measure][i]
        for i in range(len(df))
        if df[date_col][i] in (lo, hi) and df[measure][i] is not None
    ]
    return _round(sum(values) / len(values), digits)


def _e01(lake):  # avg pm25 2019
    return lake.query_value("SELECT AVG(pm25) FROM air_quality_2019")


def _e02(lake):  # max ozone 2021
    return lake.query_value("SELECT MAX(ozone) FROM air_quality_2021")


def _e03(lake):  # median turbidity 2020
    return lake.query_value("SELECT MEDIAN(turbidity) FROM water_quality_2020")


def _e04(lake):  # min temperature at Beacon Point, coastal weather (join)
    return lake.query_value(
        "SELECT MIN(w.min_temperature) FROM weather_coastal w JOIN stations s "
        "ON w.station_id = s.station_id WHERE s.station_name = 'Beacon Point'"
    )


def _e05(lake):  # interpolated first/last dissolved oxygen 2016
    return _interp_first_last_avg(lake, "water_quality_2016", "sample_date", "dissolved_oxygen", 4)


def _e06(lake):  # avg lead at Harborview Station 2018 (join)
    return lake.query_value(
        "SELECT AVG(w.lead_ppb) FROM water_quality_2018 w JOIN stations s "
        "ON w.station_id = s.station_id WHERE s.station_name = 'Harborview Station'"
    )


def _e07(lake):  # avg pm25 2020 at National Observatory stations (join)
    return lake.query_value(
        "SELECT AVG(a.pm25) FROM air_quality_2020 a JOIN stations s "
        "ON a.station_id = s.station_id WHERE s.operator = 'National Observatory'"
    )


def _e08(lake):  # max ecoli 2017 at marine stations (join)
    return lake.query_value(
        "SELECT MAX(w.ecoli_count) FROM water_quality_2017 w JOIN stations s "
        "ON w.station_id = s.station_id WHERE s.station_type = 'marine'"
    )


def _e09(lake):  # interpolated first/last nitrate 2014
    return _interp_first_last_avg(lake, "water_quality_2014", "sample_date", "nitrate", 3)


def _e10(lake):  # stddev pm10 2013 in Northern Highlands (join)
    return lake.query_value(
        "SELECT STDDEV(a.pm10) FROM air_quality_2013 a JOIN stations s "
        "ON a.station_id = s.station_id WHERE s.region = 'Northern Highlands'"
    )


def _e11(lake):  # corr pm25/humidity 2022
    return lake.query_value("SELECT CORR(pm25, humidity_pct) FROM air_quality_2022")


def _e12(lake):  # avg pm25 2015..2020 (cross-year union)
    total, count = 0.0, 0
    for year in range(2015, 2021):
        t = lake.execute(f"SELECT SUM(pm25) AS s, COUNT(pm25) AS n FROM air_quality_{year}")
        s, n = t.rows[0]
        total += s or 0.0
        count += n
    return total / count


def _e13(lake):  # region with highest total precipitation 2019 (string!)
    best_region, best_total = None, None
    for region in WEATHER_REGIONS:
        total = lake.query_value(
            f"SELECT SUM(precipitation_mm) FROM weather_{region} "
            "WHERE YEAR(obs_date) = 2019"
        )
        if total is not None and (best_total is None or total > best_total):
            best_region, best_total = region, total
    return best_region


def _e14(lake):  # ratio nitrate 2012 / 2023
    a = lake.query_value("SELECT AVG(nitrate) FROM water_quality_2012")
    b = lake.query_value("SELECT AVG(nitrate) FROM water_quality_2023")
    return a / b


def _e15(lake):  # percentage of 2019 readings with pm25 > 35
    above = lake.query_value("SELECT COUNT(*) FROM air_quality_2019 WHERE pm25 > 35")
    total = lake.query_value("SELECT COUNT(pm25) FROM air_quality_2019")
    return 100.0 * above / total


def _e16(lake):  # population-weighted avg pm25 2021
    table = lake.execute(
        "SELECT SUM(x.avg_pm25 * x.pop) AS num, SUM(x.pop) AS den FROM ("
        "SELECT s.region AS region, AVG(a.pm25) AS avg_pm25, MAX(r.population_thousands) AS pop "
        "FROM air_quality_2021 a JOIN stations s ON a.station_id = s.station_id "
        "JOIN regions r ON s.region = r.region_name "
        "GROUP BY s.region) x"
    )
    num, den = table.rows[0]
    return num / den


def _e17(lake):  # change in avg ozone 2012 -> 2023
    a = lake.query_value("SELECT AVG(ozone) FROM air_quality_2012")
    b = lake.query_value("SELECT AVG(ozone) FROM air_quality_2023")
    return b - a


def _e18(lake):  # readings above 50 pm25 in 2020
    return lake.query_value("SELECT COUNT(*) FROM air_quality_2020 WHERE pm25 > 50")


def _e19(lake):  # avg DO 2015 when turbidity above median
    return lake.query_value(
        "SELECT AVG(dissolved_oxygen) FROM water_quality_2015 "
        "WHERE turbidity > (SELECT MEDIAN(turbidity) FROM water_quality_2015)"
    )


def _e20(lake):  # avg diurnal range inland
    return lake.query_value(
        "SELECT AVG(max_temperature - min_temperature) FROM weather_inland"
    )


def build_environment_questions() -> List[Question]:
    c = Concept
    return [
        Question(
            "env-01", "environment",
            "What is the average PM25 reading in the 2019 air quality data?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("pm25", "column")],
            ["air_quality_2019"], _e01, design="both",
        ),
        Question(
            "env-02", "environment",
            "What was the maximum ozone level recorded in 2021?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("ozone", "column")],
            ["air_quality_2021"], _e02, design="both",
        ),
        Question(
            "env-03", "environment",
            "What is the median turbidity of water samples collected in 2020?",
            "water quality sampling data",
            [c("water quality", "seed"), c("turbidity", "column")],
            ["water_quality_2020"], _e03, design="both",
        ),
        Question(
            "env-04", "environment",
            "What is the lowest minimum temperature recorded at the Beacon Point "
            "station in the coastal weather data?",
            "regional weather observations",
            [c("weather", "seed"), c("minimum temperature", "column"), c("beacon point", "value")],
            ["weather_coastal", "stations"], _e04, design="seeker",
        ),
        Question(
            "env-05", "environment",
            "What is the average dissolved oxygen from the first and last sampling "
            "dates recorded in 2016? Assume that dissolved oxygen is linearly "
            "interpolated between samples. Round your answer to 4 decimal places.",
            "water quality sampling data",
            [
                c("water quality", "seed"),
                c("dissolved oxygen", "column"),
                c("linearly interpolated", "operation"),
                c("first and last", "operation"),
            ],
            ["water_quality_2016"], _e05, design="seeker",
        ),
        Question(
            "env-06", "environment",
            "What is the average lead concentration in ppb measured at the "
            "Harborview Station in 2018?",
            "water quality sampling data",
            [c("water quality", "seed"), c("lead ppb", "column"), c("harborview station", "value")],
            ["water_quality_2018", "stations"], _e06, design="seeker",
        ),
        Question(
            "env-07", "environment",
            "What is the average PM25 in 2020 at stations operated by the National "
            "Observatory?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("pm25", "column"), c("national observatory", "value")],
            ["air_quality_2020", "stations"], _e07, design="seeker",
        ),
        Question(
            "env-08", "environment",
            "What is the maximum ecoli count in 2017 water samples taken at stations "
            "of type marine?",
            "water quality sampling data",
            [c("water quality", "seed"), c("ecoli count", "column"), c("marine", "value")],
            ["water_quality_2017", "stations"], _e08, design="seeker",
        ),
        Question(
            "env-09", "environment",
            "What is the average nitrate level from the first and last sampling dates "
            "in 2014? Assume that nitrate is linearly interpolated between samples. "
            "Round your answer to 3 decimal places.",
            "water quality sampling data",
            [
                c("water quality", "seed"),
                c("nitrate", "column"),
                c("linearly interpolated", "operation"),
                c("first and last", "operation"),
            ],
            ["water_quality_2014"], _e09, design="seeker",
        ),
        Question(
            "env-10", "environment",
            "What is the standard deviation of PM10 readings in 2013 at stations in "
            "the Northern Highlands region?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("pm10", "column"), c("northern highlands", "value")],
            ["air_quality_2013", "stations"], _e10, design="seeker",
        ),
        Question(
            "env-11", "environment",
            "What is the correlation between PM25 and humidity percentage in the 2022 "
            "air quality readings?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("pm25", "column"), c("humidity", "column")],
            ["air_quality_2022"], _e11, design="both",
        ),
        Question(
            "env-12", "environment",
            "What is the average PM25 across the years 2015 through 2020?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("pm25", "column")],
            [f"air_quality_{y}" for y in range(2015, 2021)], _e12, design="none",
        ),
        Question(
            "env-13", "environment",
            "Which region recorded the highest total precipitation in 2019 across the "
            "weather records?",
            "regional weather observations",
            [c("weather", "seed"), c("precipitation", "column")],
            [f"weather_{r}" for r in WEATHER_REGIONS], _e13, design="none",
        ),
        Question(
            "env-14", "environment",
            "What is the ratio of the average nitrate level in 2012 to the average "
            "nitrate level in 2023?",
            "water quality sampling data",
            [c("water quality", "seed"), c("nitrate", "column")],
            ["water_quality_2012", "water_quality_2023"], _e14, design="none",
        ),
        Question(
            "env-15", "environment",
            "What percentage of 2019 air quality readings exceeded a PM25 of 35?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("pm25", "column")],
            ["air_quality_2019"], _e15, design="none",
        ),
        Question(
            "env-16", "environment",
            "What is the population-weighted average PM25 across regions in 2021?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("pm25", "column"), c("population", "column")],
            ["air_quality_2021", "stations", "regions"], _e16, design="none",
        ),
        Question(
            "env-17", "environment",
            "By how much did the average ozone level change from 2012 to 2023?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("ozone", "column")],
            ["air_quality_2012", "air_quality_2023"], _e17, design="none",
        ),
        Question(
            "env-18", "environment",
            "How many readings in the 2020 air quality data recorded a PM25 above 50?",
            "air quality monitoring data",
            [c("air quality", "seed"), c("pm25", "column")],
            ["air_quality_2020"], _e18, design="none",
        ),
        Question(
            "env-19", "environment",
            "What is the average dissolved oxygen in 2015 on samples where turbidity "
            "was above its median?",
            "water quality sampling data",
            [c("water quality", "seed"), c("dissolved oxygen", "column"), c("turbidity", "column")],
            ["water_quality_2015"], _e19, design="none",
        ),
        Question(
            "env-20", "environment",
            "What was the average diurnal temperature range, maximum minus minimum, in "
            "the inland weather records?",
            "regional weather observations",
            [c("weather", "seed"), c("temperature", "column")],
            ["weather_inland"], _e20, design="none",
        ),
    ]


def load_environment(scale: float = 1.0, seed: int = 21) -> BenchmarkDataset:
    """The environment benchmark: lake + 20 questions."""
    return BenchmarkDataset(
        name="environment",
        lake=build_environment_lake(scale, seed),
        questions=build_environment_questions(),
    )
