"""Seeded synthetic-data helpers shared by the dataset builders."""

from __future__ import annotations

import datetime
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def pick(rng: np.random.Generator, values: Sequence[Any], n: int, p: Optional[Sequence[float]] = None) -> List[Any]:
    """n seeded choices from values (probabilities optional)."""
    idx = rng.choice(len(values), size=n, p=p)
    return [values[i] for i in idx]


def normal(rng: np.random.Generator, mean: float, std: float, n: int, lo: Optional[float] = None, hi: Optional[float] = None, decimals: int = 2) -> List[float]:
    data = rng.normal(mean, std, n)
    if lo is not None or hi is not None:
        data = np.clip(data, lo, hi)
    return [round(float(x), decimals) for x in data]


def uniform_int(rng: np.random.Generator, lo: int, hi: int, n: int) -> List[int]:
    return [int(x) for x in rng.integers(lo, hi + 1, n)]


def dates_between(
    rng: np.random.Generator,
    start: datetime.date,
    end: datetime.date,
    n: int,
    sort: bool = False,
) -> List[datetime.date]:
    span = (end - start).days
    offsets = rng.integers(0, span + 1, n)
    if sort:
        offsets = np.sort(offsets)
    return [start + datetime.timedelta(days=int(o)) for o in offsets]


def with_nulls(rng: np.random.Generator, values: List[Any], fraction: float) -> List[Any]:
    """Replace a seeded fraction of values with None (missing measurements)."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"null fraction must be in [0, 1), got {fraction}")
    mask = rng.random(len(values)) < fraction
    return [None if m else v for v, m in zip(values, mask)]


def scaled(n: int, scale: float, minimum: int = 40) -> int:
    """Scale a row count, keeping enough rows for filters to be non-empty."""
    return max(int(n * scale), minimum)


def build_planted_catalog(
    seed: int = 11,
    n_tables: int = 8,
    rows: int = 1500,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Any, List[Tuple[str, str, str, str]]]:
    """A synthetic catalog with planted FK->PK joins and distractor columns.

    Each table gets a primary-key column over its own disjoint id domain;
    every table after the first references an earlier table through a
    foreign-key column sampled (with a few nulls) from that parent's ids,
    so the planted pairs have true containment 1.0.  Distractor columns —
    per-table numeric offsets, per-table string vocabularies, per-table
    date windows — are constructed to *not* overlap across tables, which
    makes the planted list the discovery ground truth.

    Pass an explicit ``rng`` to drive the draws from a caller-owned seeded
    generator (scenario grids build many catalogs cell-by-cell from one
    stream); ``seed`` then only names the lake.

    Returns ``(lake, planted)`` where ``planted`` is a list of
    ``(fk_table, fk_column, pk_table, pk_column)`` tuples.
    """
    from ..relational.catalog import Database
    from ..relational.table import Table

    if rng is None:
        rng = make_rng(seed)
    names = [f"rel_{i:02d}" for i in range(n_tables)]
    lake = Database(f"planted_{seed}")
    planted: List[Tuple[str, str, str, str]] = []
    id_domains: dict = {}
    for i, name in enumerate(names):
        base = (i + 1) * 1_000_000
        ids = [base + j for j in range(rows)]
        id_domains[name] = ids
        columns = {f"{name}_id": list(ids)}
        parents: List[str] = []
        if i > 0:
            parents.append(names[int(rng.integers(0, i))])
        if i >= 4 and rng.random() < 0.5:
            other = names[int(rng.integers(0, i))]
            if other not in parents:
                parents.append(other)
        for parent in parents:
            fk_column = f"{parent}_ref"
            columns[fk_column] = with_nulls(rng, pick(rng, id_domains[parent], rows), 0.04)
            planted.append((name, fk_column, parent, f"{parent}_id"))
        # Distractors: same type families, deliberately disjoint values.
        columns["score"] = normal(rng, 1000.0 * i + 50.0, 12.0, rows)
        columns["grade"] = uniform_int(rng, base + 500_000, base + 500_400, rows)
        vocab = [f"{name}-tag-{t:03d}" for t in range(60)]
        columns["tag"] = pick(rng, vocab, rows)
        start = datetime.date(1980 + 3 * i, 1, 1)
        columns["logged_on"] = dates_between(
            rng, start, start + datetime.timedelta(days=700), rows
        )
        lake.register(Table.from_columns(name, columns))
    return lake, planted
