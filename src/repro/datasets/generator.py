"""Seeded synthetic-data helpers shared by the dataset builders."""

from __future__ import annotations

import datetime
from typing import Any, List, Optional, Sequence

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def pick(rng: np.random.Generator, values: Sequence[Any], n: int, p: Optional[Sequence[float]] = None) -> List[Any]:
    """n seeded choices from values (probabilities optional)."""
    idx = rng.choice(len(values), size=n, p=p)
    return [values[i] for i in idx]


def normal(rng: np.random.Generator, mean: float, std: float, n: int, lo: Optional[float] = None, hi: Optional[float] = None, decimals: int = 2) -> List[float]:
    data = rng.normal(mean, std, n)
    if lo is not None or hi is not None:
        data = np.clip(data, lo, hi)
    return [round(float(x), decimals) for x in data]


def uniform_int(rng: np.random.Generator, lo: int, hi: int, n: int) -> List[int]:
    return [int(x) for x in rng.integers(lo, hi + 1, n)]


def dates_between(
    rng: np.random.Generator,
    start: datetime.date,
    end: datetime.date,
    n: int,
    sort: bool = False,
) -> List[datetime.date]:
    span = (end - start).days
    offsets = rng.integers(0, span + 1, n)
    if sort:
        offsets = np.sort(offsets)
    return [start + datetime.timedelta(days=int(o)) for o in offsets]


def with_nulls(rng: np.random.Generator, values: List[Any], fraction: float) -> List[Any]:
    """Replace a seeded fraction of values with None (missing measurements)."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"null fraction must be in [0, 1), got {fraction}")
    mask = rng.random(len(values)) < fraction
    return [None if m else v for v, m in zip(values, mask)]


def scaled(n: int, scale: float, minimum: int = 40) -> int:
    """Scale a row count, keeping enough rows for filters to be non-empty."""
    return max(int(n * scale), minimum)
