"""The procurement lake + tariff web corpus: the paper's running example.

§1 and §3.6 walk through "What impact will tariffs have on our
organization?" over a procurement database plus tariff schedules fetched
from the web.  This module provides that scenario: a procurement lake
(orders, suppliers, categories, budgets) and an offline Web Search corpus
whose tariff pages carry structured records (new and previous rates per
country) the Materializer can integrate.
"""

from __future__ import annotations

import datetime
from typing import Tuple

from ..ir.web import WebPage, WebSearch
from ..relational.catalog import Database
from ..relational.table import Table
from .generator import dates_between, make_rng, normal, pick, scaled, uniform_int

COUNTRIES = ["Germany", "France", "Japan", "Brazil", "Canada"]

#: The simulated tariff schedule (rates as fractions, per country).
TARIFF_RECORDS = [
    {"country": "Germany", "new_tariff": 0.15, "previous_tariff": 0.05},
    {"country": "France", "new_tariff": 0.12, "previous_tariff": 0.06},
    {"country": "Japan", "new_tariff": 0.20, "previous_tariff": 0.10},
    {"country": "Brazil", "new_tariff": 0.08, "previous_tariff": 0.08},
    {"country": "Canada", "new_tariff": 0.05, "previous_tariff": 0.02},
]


def build_procurement_lake(scale: float = 1.0, seed: int = 11) -> Database:
    rng = make_rng(seed)
    lake = Database("procurement")

    n_suppliers = 60
    countries = pick(rng, COUNTRIES, n_suppliers)
    countries[:2] = ["Germany", "Japan"]
    lake.register(
        Table.from_columns(
            "suppliers",
            {
                "supplier_id": list(range(1, n_suppliers + 1)),
                "supplier_name": [f"Supplier {i:04d}" for i in range(1, n_suppliers + 1)],
                "country": countries,
                "rating": normal(rng, 4.0, 0.6, n_suppliers, lo=1, hi=5, decimals=1),
                "contract_start": dates_between(
                    rng, datetime.date(2015, 1, 1), datetime.date(2023, 1, 1), n_suppliers
                ),
            },
        )
    )

    n_orders = scaled(4_000, scale)
    lake.register(
        Table.from_columns(
            "purchase_orders",
            {
                "order_id": list(range(1, n_orders + 1)),
                "supplier_id": uniform_int(rng, 1, n_suppliers, n_orders),
                "country": pick(rng, COUNTRIES, n_orders, p=[0.35, 0.2, 0.2, 0.15, 0.1]),
                "category": pick(rng, ["lab equipment", "office supplies", "computing", "furniture"], n_orders),
                "order_date": dates_between(rng, datetime.date(2022, 1, 1), datetime.date(2024, 12, 31), n_orders),
                "price": normal(rng, 2400.0, 1200.0, n_orders, lo=20, hi=20000, decimals=2),
                "quantity": uniform_int(rng, 1, 200, n_orders),
            },
        )
    )

    n_budget = 48
    lake.register(
        Table.from_columns(
            "department_budgets",
            {
                "department": pick(rng, ["Finance", "Research", "Facilities", "IT"], n_budget),
                "fiscal_year": uniform_int(rng, 2020, 2025, n_budget),
                "budget_usd": normal(rng, 1_500_000.0, 400_000.0, n_budget, lo=100_000, decimals=2),
                "spent_usd": normal(rng, 1_100_000.0, 380_000.0, n_budget, lo=50_000, decimals=2),
            },
        )
    )
    return lake


def build_tariff_web() -> WebSearch:
    """The offline Web Search corpus with tariff schedules."""
    pages = [
        WebPage(
            url="https://trade.example.gov/tariff-schedule-2025",
            title="2025 Import Tariff Schedule by Country",
            text=(
                "Official import tariff schedule listing the newly enacted tariff "
                "rates and the previously active tariff rates for goods imported "
                "from trade partners including Germany, France, Japan, Brazil and "
                "Canada. Rates apply to all categories including lab equipment."
            ),
            records=TARIFF_RECORDS,
        ),
        WebPage(
            url="https://trade.example.gov/press-release",
            title="Ministry Announces Revised Trade Policy",
            text=(
                "The ministry announced revised trade policy affecting import "
                "duties. Analysts expect procurement costs to rise for organizations "
                "importing laboratory equipment from affected countries."
            ),
            records=[],
        ),
        WebPage(
            url="https://stats.example.org/exchange-rates",
            title="Historical Exchange Rates",
            text="Daily exchange rates for major currencies against the USD.",
            records=[],
        ),
    ]
    return WebSearch(pages)


def tariff_impact_ground_truth(lake: Database, country: str = "Germany") -> Tuple[float, float]:
    """The reference tariff impact for ``country``: (avg new cost, avg delta).

    Impact is computed relative to the previous active tariff, as the user
    clarifies in §3.6: price * (1 + new_tariff - previous_tariff).
    """
    record = next(r for r in TARIFF_RECORDS if r["country"] == country)
    uplift = 1 + record["new_tariff"] - record["previous_tariff"]
    avg_price = lake.query_value(
        f"SELECT AVG(price) FROM purchase_orders WHERE country = '{country}'"
    )
    return avg_price * uplift, avg_price * (uplift - 1)
