"""Benchmark questions: latent information needs with ground truth.

Each :class:`Question` carries the latent question text, the concepts that
constitute the information need (what LLM Sim must surface/articulate), the
tables involved, and a *reference implementation* that computes the ground
truth directly against the lake.  The ``design`` tag records why a question
is in the set (difficulty class); no system component ever reads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List

from ..core.convergence import Concept
from ..relational.catalog import Database


@dataclass
class Question:
    qid: str
    dataset: str
    text: str
    topic: str  # the broad opener topic for LLM Sim
    concepts: List[Concept]
    relevant_tables: List[str]
    reference: Callable[[Database], Any]
    design: str = ""  # difficulty class, documentation only
    tolerance: float = 1e-6

    def ground_truth(self, lake: Database) -> Any:
        """Compute the reference answer against a concrete lake instance."""
        return self.reference(lake)

    def concepts_json(self) -> List[dict]:
        return [c.to_json() for c in self.concepts]


def answers_match(expected: Any, actual: Any, tolerance: float = 1e-6) -> bool:
    """Numeric answers match within relative tolerance; others exactly."""
    if actual is None:
        return expected is None
    if isinstance(expected, (int, float)) and not isinstance(expected, bool):
        if not isinstance(actual, (int, float)) or isinstance(actual, bool):
            return False
        if expected == 0:
            return abs(actual) <= tolerance
        return abs(actual - expected) <= tolerance * max(abs(expected), 1.0)
    return expected == actual


@dataclass
class BenchmarkDataset:
    """A lake plus its questions (one KramaBench dataset analogue)."""

    name: str
    lake: Database
    questions: List[Question]

    def table_stats(self) -> dict:
        """The Table 1 characteristics: #tables, avg rows, avg cols."""
        tables = self.lake.tables()
        n = len(tables)
        return {
            "dataset": self.name,
            "num_tables": n,
            "avg_rows": sum(t.num_rows for t in tables) / n if n else 0.0,
            "avg_cols": sum(t.num_columns for t in tables) / n if n else 0.0,
            "num_questions": len(self.questions),
        }
