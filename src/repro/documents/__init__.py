"""documents — the uniform document abstraction of the IR System."""

from .document import Document

__all__ = ["Document"]
