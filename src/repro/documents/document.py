"""The uniform document object the IR System hands to other components.

The paper: "It abstracts heterogeneous retrieval format, such as tables and
text, into document objects."  A :class:`Document` carries a kind tag, a
human/LLM-readable text rendering, and a structured JSON payload that
policies can parse (schema + samples for tables, records for web pages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class Document:
    """One retrievable unit: a table summary, a web page, or knowledge."""

    doc_id: str
    kind: str  # 'table' | 'web' | 'knowledge'
    title: str
    text: str
    payload: Dict[str, Any] = field(default_factory=dict)
    score: float = 0.0
    source: str = ""  # which retriever produced it
    #: True when served by a degraded path (e.g. BM25-only because the
    #: dense half's circuit is open); ranking may differ from healthy.
    degraded: bool = False

    def brief(self, max_chars: int = 240) -> str:
        """A one-line description used in prompts and user-facing messages."""
        body = " ".join(self.text.split())
        if len(body) > max_chars:
            body = body[: max_chars - 3] + "..."
        return f"[{self.kind}] {self.title}: {body}"

    def to_json(self) -> Dict[str, Any]:
        data = {
            "doc_id": self.doc_id,
            "kind": self.kind,
            "title": self.title,
            "text": self.text,
            "payload": self.payload,
            "score": self.score,
            "source": self.source,
        }
        # Only serialized when set, so healthy-path JSON (and the prompts
        # rendered from it) stays bit-identical to the pre-resilience code.
        if self.degraded:
            data["degraded"] = True
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Document":
        return cls(
            doc_id=data["doc_id"],
            kind=data["kind"],
            title=data["title"],
            text=data.get("text", ""),
            payload=data.get("payload", {}),
            score=float(data.get("score", 0.0)),
            source=data.get("source", ""),
            degraded=bool(data.get("degraded", False)),
        )
