"""eval — the paper's evaluation harness (RQ1, RQ2, costs, reports)."""

from .accuracy_eval import (
    AccuracyResult,
    ContextOverflowResult,
    QuestionOutcome,
    evaluate_accuracy,
    evaluate_full_context,
)
from .convergence_eval import (
    ClassBreakdown,
    ConvergenceResult,
    build_sim_llm,
    evaluate_convergence,
)
from .cost_eval import CostRow, evaluate_costs
from .report import (
    render_context_overflow,
    render_convergence_figure,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "evaluate_convergence",
    "ClassBreakdown",
    "ConvergenceResult",
    "build_sim_llm",
    "evaluate_accuracy",
    "AccuracyResult",
    "QuestionOutcome",
    "evaluate_full_context",
    "ContextOverflowResult",
    "evaluate_costs",
    "CostRow",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_convergence_figure",
    "render_context_overflow",
]
