"""RQ2: accuracy evaluation (Table 3).

Each system answers every benchmark question from its fully specified
latent text; an answer counts when it matches the reference ground truth
within tolerance.  Also runs the O3 full-context baseline and counts its
context-length failures (the §4.2 side experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from ..datasets.questions import BenchmarkDataset, Question, answers_match

Answerer = Callable[[Question], Any]


@dataclass
class QuestionOutcome:
    qid: str
    truth: Any
    answer: Any
    correct: bool
    error: str = ""


@dataclass
class AccuracyResult:
    system: str
    dataset: str
    total: int
    correct: int
    outcomes: List[QuestionOutcome] = field(default_factory=list)

    @property
    def percentage(self) -> float:
        return 100.0 * self.correct / self.total if self.total else 0.0


def evaluate_accuracy(
    dataset: BenchmarkDataset,
    answerers: Dict[str, Answerer],
) -> List[AccuracyResult]:
    """Run every registered answerer over every question."""
    truths = {q.qid: q.ground_truth(dataset.lake) for q in dataset.questions}
    results: List[AccuracyResult] = []
    for name, answerer in answerers.items():
        outcomes: List[QuestionOutcome] = []
        for question in dataset.questions:
            error = ""
            try:
                answer = answerer(question)
            except Exception as exc:  # a baseline crash is a wrong answer
                answer = None
                error = f"{type(exc).__name__}: {exc}"
            truth = truths[question.qid]
            outcomes.append(
                QuestionOutcome(
                    qid=question.qid,
                    truth=truth,
                    answer=answer,
                    correct=answers_match(truth, answer, question.tolerance),
                    error=error,
                )
            )
        results.append(
            AccuracyResult(
                system=name,
                dataset=dataset.name,
                total=len(outcomes),
                correct=sum(o.correct for o in outcomes),
                outcomes=outcomes,
            )
        )
    return results


@dataclass
class ContextOverflowResult:
    dataset: str
    total: int
    exceeded: int
    correct: int

    @property
    def exceeded_fraction(self) -> str:
        return f"{self.exceeded}/{self.total}"


def evaluate_full_context(dataset: BenchmarkDataset, runner) -> ContextOverflowResult:
    """The O3 full-context experiment: count context overflows and correct answers."""
    exceeded = 0
    correct = 0
    for question in dataset.questions:
        outcome = runner.answer(question)
        if outcome.context_exceeded:
            exceeded += 1
            continue
        truth = question.ground_truth(dataset.lake)
        if answers_match(truth, outcome.value, question.tolerance):
            correct += 1
    return ContextOverflowResult(
        dataset=dataset.name,
        total=len(dataset.questions),
        exceeded=exceeded,
        correct=correct,
    )
