"""RQ1: convergence evaluation (Figures 4 and 5).

Metrics, as defined in §4.1: (1) percentage of benchmark questions for
which LLM Sim converges, and (2) median turns to convergence with an
imposed limit of 15 (non-converged questions count the limit).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..datasets.questions import BenchmarkDataset
from ..llm.policies import UserSimPolicy
from ..llm.rule_llm import RuleLLM
from ..sim.runner import ConversationalSystem, SimulationOutcome, SimulationRunner

SystemFactory = Callable[[], ConversationalSystem]


def build_sim_llm(model_name: str = "GPT-4o", **kwargs) -> RuleLLM:
    llm = RuleLLM(model_name=model_name, **kwargs)
    llm.register(UserSimPolicy())
    return llm


@dataclass
class ClassBreakdown:
    """Convergence within one scenario class (a question's ``design``)."""

    scenario_class: str
    total: int
    converged: int
    median_turns: float

    @property
    def percentage(self) -> float:
        return 100.0 * self.converged / self.total if self.total else 0.0


@dataclass
class ConvergenceResult:
    system: str
    dataset: str
    total: int
    converged: int
    median_turns: float
    avg_seconds_per_prompt: float = 0.0
    outcomes: List[SimulationOutcome] = field(default_factory=list)
    #: Per-scenario-class breakdown keyed by ``Question.design`` (insertion
    #: order follows first appearance in the dataset).  The aggregate
    #: fields above are kept as-is for back-compat.
    by_class: Dict[str, ClassBreakdown] = field(default_factory=dict)

    @property
    def percentage(self) -> float:
        return 100.0 * self.converged / self.total if self.total else 0.0


def _class_breakdowns(
    questions, outcomes: List[SimulationOutcome], max_turns: int
) -> Dict[str, ClassBreakdown]:
    """Group aligned (question, outcome) pairs by the question's design."""
    grouped: Dict[str, List[SimulationOutcome]] = {}
    for question, outcome in zip(questions, outcomes):
        grouped.setdefault(question.design or "unclassified", []).append(outcome)
    breakdowns: Dict[str, ClassBreakdown] = {}
    for scenario_class, members in grouped.items():
        turns = [o.turns if o.converged else max_turns for o in members]
        breakdowns[scenario_class] = ClassBreakdown(
            scenario_class=scenario_class,
            total=len(members),
            converged=sum(o.converged for o in members),
            median_turns=float(statistics.median(turns)) if turns else 0.0,
        )
    return breakdowns


def evaluate_convergence(
    dataset: BenchmarkDataset,
    factories: Dict[str, SystemFactory],
    max_turns: int = 15,
    sim_llm: Optional[RuleLLM] = None,
) -> List[ConvergenceResult]:
    """Run LLM Sim against each system on every question of ``dataset``."""
    results: List[ConvergenceResult] = []
    for name, factory in factories.items():
        outcomes: List[SimulationOutcome] = []
        seconds = []
        for question in dataset.questions:
            system = factory()
            llm = sim_llm or build_sim_llm()
            runner = SimulationRunner(llm, max_turns=max_turns)
            clock_source = getattr(system, "session", system)
            clock = getattr(getattr(clock_source, "llm", None), "clock", None)
            if clock is None:
                clock = getattr(clock_source, "clock", None)
            before = clock.now if clock else 0.0
            outcome = runner.run(system, question)
            outcomes.append(outcome)
            if clock and outcome.turns:
                seconds.append((clock.now - before) / outcome.turns)
        turns = [o.turns if o.converged else max_turns for o in outcomes]
        results.append(
            ConvergenceResult(
                system=name,
                dataset=dataset.name,
                total=len(outcomes),
                converged=sum(o.converged for o in outcomes),
                median_turns=float(statistics.median(turns)) if turns else 0.0,
                avg_seconds_per_prompt=(
                    sum(seconds) / len(seconds) if seconds else 0.0
                ),
                outcomes=outcomes,
                by_class=_class_breakdowns(dataset.questions, outcomes, max_turns),
            )
        )
    return results
