"""Table 2: estimated average token usage and costs across LLM price points.

Runs full LLM-Sim interactions against Pneuma-Seeker for every question of
a dataset, averages the metered Seeker-side token usage per interaction,
and prices it at each of the paper's six model price points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..baselines.seeker_system import SeekerSystem
from ..datasets.questions import BenchmarkDataset
from ..llm.pricing import MODEL_PRICES, TABLE2_MODEL_ORDER, CostBreakdown
from ..llm.tokens import Usage
from .convergence_eval import build_sim_llm
from ..sim.runner import SimulationRunner


@dataclass
class CostRow:
    """One row of Table 2: a dataset's average usage priced per model."""

    dataset: str
    avg_input_tokens: float
    avg_output_tokens: float
    costs: Dict[str, CostBreakdown] = field(default_factory=dict)


def evaluate_costs(
    dataset: BenchmarkDataset,
    max_turns: int = 15,
    enable_web: bool = False,
) -> CostRow:
    """Average Seeker-side tokens per full interaction, priced per model."""
    total_in = 0
    total_out = 0
    interactions = 0
    for question in dataset.questions:
        system = SeekerSystem(dataset.lake, enable_web=enable_web)
        runner = SimulationRunner(build_sim_llm(), max_turns=max_turns)
        runner.run(system, question)
        usage = system.session.llm.ledger.total()
        total_in += usage.prompt_tokens
        total_out += usage.completion_tokens
        interactions += 1
    avg_in = total_in / interactions if interactions else 0.0
    avg_out = total_out / interactions if interactions else 0.0
    average = Usage(prompt_tokens=int(avg_in), completion_tokens=int(avg_out))
    costs = {name: MODEL_PRICES[name].cost(average) for name in TABLE2_MODEL_ORDER}
    return CostRow(
        dataset=dataset.name,
        avg_input_tokens=avg_in,
        avg_output_tokens=avg_out,
        costs=costs,
    )
