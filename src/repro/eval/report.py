"""Render evaluation results the way the paper's tables and figures do."""

from __future__ import annotations

from typing import List, Sequence

from ..llm.pricing import TABLE2_MODEL_ORDER
from .accuracy_eval import AccuracyResult, ContextOverflowResult
from .convergence_eval import ConvergenceResult
from .cost_eval import CostRow


def render_table1(stats: Sequence[dict]) -> str:
    """Table 1: Characteristics of the Datasets."""
    lines = [
        "Table 1: Characteristics of the Datasets",
        f"{'Dataset':<14}{'# Tables':>10}{'Avg. #Rows':>14}{'Avg. #Cols':>12}",
    ]
    for row in stats:
        lines.append(
            f"{row['dataset']:<14}{row['num_tables']:>10}"
            f"{row['avg_rows']:>14,.0f}{row['avg_cols']:>12.0f}"
        )
    return "\n".join(lines)


def render_table2(rows: Sequence[CostRow]) -> str:
    """Table 2: Estimated Average Token Usage and Costs Across LLMs."""
    header = f"{'Dataset':<14}{'Avg In':>12}{'Avg Out':>10}"
    for model in TABLE2_MODEL_ORDER:
        header += f"{model + ' In':>14}{'Out':>8}"
    lines = ["Table 2: Estimated Average Token Usage and Costs", header]
    for row in rows:
        line = f"{row.dataset:<14}{row.avg_input_tokens:>12,.0f}{row.avg_output_tokens:>10,.0f}"
        for model in TABLE2_MODEL_ORDER:
            cost = row.costs[model]
            line += f"{'$' + format(cost.input_cost, '.2f'):>14}{'$' + format(cost.output_cost, '.2f'):>8}"
        lines.append(line)
    return "\n".join(lines)


def render_table3(results: Sequence[AccuracyResult]) -> str:
    """Table 3: Comparison of Accuracy across Datasets."""
    datasets = sorted({r.dataset for r in results})
    systems: List[str] = []
    for r in results:
        if r.system not in systems:
            systems.append(r.system)
    lines = ["Table 3: Comparison of Accuracy across Datasets"]
    header = f"{'System':<18}" + "".join(f"{d:>16}" for d in datasets)
    lines.append(header)
    for system in systems:
        line = f"{system:<18}"
        for dataset in datasets:
            match = next((r for r in results if r.system == system and r.dataset == dataset), None)
            line += f"{match.percentage if match else 0.0:>15.2f}%"
        lines.append(line)
    return "\n".join(lines)


def render_convergence_figure(results: Sequence[ConvergenceResult], title: str) -> str:
    """Figures 4/5: median turns to convergence vs convergence percentage.

    Rendered as the underlying data series plus an ASCII scatter matching
    the paper's axes (x: median turns 0-15, y: convergence % 0-100).
    """
    lines = [title, f"{'System':<18}{'Median Turns':>14}{'Convergence %':>15}{'Avg s/prompt':>14}"]
    for r in results:
        lines.append(
            f"{r.system:<18}{r.median_turns:>14.1f}{r.percentage:>14.1f}%"
            f"{r.avg_seconds_per_prompt:>14.2f}"
        )
        # Per-scenario-class breakdown (aggregate row above stays for
        # back-compat): one indented row per question design class.
        for breakdown in r.by_class.values():
            lines.append(
                f"  - {breakdown.scenario_class:<14}{breakdown.median_turns:>14.1f}"
                f"{breakdown.percentage:>14.1f}%"
                f"{'':>14} ({breakdown.converged}/{breakdown.total})"
            )
    # ASCII scatter: 11 rows (100..0 by 10), 31 cols (0..15 by 0.5).
    grid = [[" "] * 31 for _ in range(11)]
    markers = {}
    for i, r in enumerate(results):
        marker = str(i + 1)
        markers[marker] = r.system
        col = min(int(round(r.median_turns * 2)), 30)
        row = min(int(round((100 - r.percentage) / 10)), 10)
        grid[row][col] = marker
    lines.append("")
    lines.append("  convergence %")
    for i, row in enumerate(grid):
        label = f"{100 - i * 10:>4}"
        lines.append(f"{label} |" + "".join(row))
    lines.append("     +" + "-" * 31)
    lines.append("      0   2   4   6   8  10  12  14  (median turns)")
    for marker, system in markers.items():
        lines.append(f"      [{marker}] {system}")
    return "\n".join(lines)


def render_context_overflow(results: Sequence[ContextOverflowResult]) -> str:
    """§4.2 side experiment: O3 full-context overflow counts."""
    lines = ["O3 full-context baseline: context-length-exceeded questions"]
    for r in results:
        lines.append(
            f"  {r.dataset:<14} exceeded {r.exceeded_fraction} questions; "
            f"answered {r.correct} correctly"
        )
    return "\n".join(lines)
