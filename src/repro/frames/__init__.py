"""frames — a small, NULL-aware DataFrame library.

This is the reproduction's substitute for pandas; the Materializer's
Python-interpreter tool executes generated pipelines against this API.
"""

from .frame import DataFrame, FrameError
from .groupby import GroupBy
from .series import Series

__all__ = ["DataFrame", "Series", "GroupBy", "FrameError"]
