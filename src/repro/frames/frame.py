"""A small DataFrame (the reproduction's pandas substitute).

Columns are :class:`~repro.frames.series.Series`; all operations return new
frames.  The Materializer's generated pipelines run against this API inside
the sandboxed Python-interpreter tool.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .series import Series


class FrameError(Exception):
    """Raised for malformed frame operations (the interpreter reports these)."""


class DataFrame:
    """An ordered mapping of column names to equal-length Series."""

    def __init__(self, data: Optional[Mapping[str, Iterable[Any]]] = None):
        self._columns: Dict[str, Series] = {}
        if data:
            for name, values in data.items():
                series = values if isinstance(values, Series) else Series(values)
                self._columns[name] = series.rename(name)
            lengths = {len(s) for s in self._columns.values()}
            if len(lengths) > 1:
                raise FrameError(f"columns of unequal length: {lengths}")

    # ------------------------------------------------------------------
    # Constructors / converters
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]]) -> "DataFrame":
        names: List[str] = []
        for record in records:
            for key in record:
                if key not in names:
                    names.append(key)
        return cls({name: [r.get(name) for r in records] for name in names})

    @classmethod
    def from_table(cls, table: "Any") -> "DataFrame":
        """Build from a :class:`repro.relational.Table`.

        Reads the table's memoized column-major view instead of pivoting
        row tuples value-by-value; Series copies each column, so the
        frame never aliases the table's storage.
        """
        return cls(dict(zip(table.column_names(), table.as_columns())))

    def to_table(self, name: str) -> "Any":
        """Convert to a :class:`repro.relational.Table`."""
        from ..relational.table import Table

        return Table.from_columns(name, {c: s.tolist() for c, s in self._columns.items()})

    def to_dicts(self) -> List[Dict[str, Any]]:
        names = self.columns
        return [
            {name: self._columns[name][i] for name in names} for i in range(len(self))
        ]

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self), len(self._columns))

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, key: Union[str, Series, List[str]]) -> Union[Series, "DataFrame"]:
        if isinstance(key, str):
            try:
                return self._columns[key]
            except KeyError:
                raise FrameError(
                    f"column {key!r} not found; available: {self.columns}"
                ) from None
        if isinstance(key, Series):
            return self.filter(key)
        if isinstance(key, list):
            return self.select(key)
        raise FrameError(f"unsupported index type: {type(key).__name__}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataFrame({len(self)} rows x {len(self._columns)} cols: {self.columns})"

    def row(self, index: int) -> Dict[str, Any]:
        return {name: series[index] for name, series in self._columns.items()}

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "DataFrame":
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise FrameError(f"columns not found: {missing}; available: {self.columns}")
        return DataFrame({n: self._columns[n] for n in names})

    def drop(self, names: Sequence[str]) -> "DataFrame":
        drop_set = set(names)
        return DataFrame({n: s for n, s in self._columns.items() if n not in drop_set})

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        return DataFrame({mapping.get(n, n): s for n, s in self._columns.items()})

    def assign(self, **new_columns: Union[Series, Iterable[Any], Callable[["DataFrame"], Series]]) -> "DataFrame":
        data: Dict[str, Any] = {n: s for n, s in self._columns.items()}
        for name, value in new_columns.items():
            if callable(value) and not isinstance(value, Series):
                value = value(self)
            series = value if isinstance(value, Series) else Series(list(value))
            if self._columns and len(series) != len(self):
                raise FrameError(
                    f"assigned column {name!r} has length {len(series)}, expected {len(self)}"
                )
            data[name] = series
        return DataFrame(data)

    def filter(self, mask: Series) -> "DataFrame":
        if len(mask) != len(self):
            raise FrameError(f"mask length {len(mask)} != frame length {len(self)}")
        keep = [i for i, flag in enumerate(mask) if flag is True or flag == 1]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "DataFrame":
        return DataFrame(
            {n: Series([s[i] for i in indices], n) for n, s in self._columns.items()}
        )

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(range(min(n, len(self))))

    def tail(self, n: int = 5) -> "DataFrame":
        start = max(len(self) - n, 0)
        return self.take(range(start, len(self)))

    def sort_values(
        self, by: Union[str, Sequence[str]], ascending: Union[bool, Sequence[bool]] = True
    ) -> "DataFrame":
        keys = [by] if isinstance(by, str) else list(by)
        directions = (
            [ascending] * len(keys) if isinstance(ascending, bool) else list(ascending)
        )
        if len(directions) != len(keys):
            raise FrameError("ascending must match the number of sort keys")
        from ..relational.types import sort_key

        indices = list(range(len(self)))

        def composite(i: int) -> Tuple:
            parts = []
            for name, asc in zip(keys, directions):
                value = self[name][i]
                base = sort_key(value)
                if value is None:
                    parts.append((1, (0, 0.0, "")))  # NULLs last, either direction
                elif asc:
                    parts.append((0, base))
                else:
                    parts.append((0, _Inverted(base)))
            return tuple(parts)

        indices.sort(key=composite)
        return self.take(indices)

    def drop_duplicates(self, subset: Optional[Sequence[str]] = None) -> "DataFrame":
        names = list(subset) if subset else self.columns
        seen = set()
        keep: List[int] = []
        for i in range(len(self)):
            marker = tuple((type(self[n][i]).__name__, self[n][i]) for n in names)
            if marker not in seen:
                seen.add(marker)
                keep.append(i)
        return self.take(keep)

    def dropna(self, subset: Optional[Sequence[str]] = None) -> "DataFrame":
        names = list(subset) if subset else self.columns
        keep = [
            i for i in range(len(self)) if all(self[n][i] is not None for n in names)
        ]
        return self.take(keep)

    def fillna(self, value: Any, subset: Optional[Sequence[str]] = None) -> "DataFrame":
        names = set(subset) if subset else set(self.columns)
        return DataFrame(
            {
                n: (s.fillna(value) if n in names else s)
                for n, s in self._columns.items()
            }
        )

    # ------------------------------------------------------------------
    # Joins and concatenation
    # ------------------------------------------------------------------
    def merge(
        self,
        other: "DataFrame",
        on: Optional[Union[str, Sequence[str]]] = None,
        left_on: Optional[Union[str, Sequence[str]]] = None,
        right_on: Optional[Union[str, Sequence[str]]] = None,
        how: str = "inner",
        suffixes: Tuple[str, str] = ("", "_right"),
    ) -> "DataFrame":
        if on is not None:
            left_keys = [on] if isinstance(on, str) else list(on)
            right_keys = list(left_keys)
        else:
            if left_on is None or right_on is None:
                raise FrameError("merge requires `on` or both `left_on` and `right_on`")
            left_keys = [left_on] if isinstance(left_on, str) else list(left_on)
            right_keys = [right_on] if isinstance(right_on, str) else list(right_on)
        if how not in ("inner", "left", "right", "outer"):
            raise FrameError(f"unsupported merge how={how!r}")

        for key in left_keys:
            if key not in self._columns:
                raise FrameError(f"left merge key {key!r} not found; available: {self.columns}")
        for key in right_keys:
            if key not in other._columns:
                raise FrameError(
                    f"right merge key {key!r} not found; available: {other.columns}"
                )

        index: Dict[Tuple, List[int]] = {}
        for j in range(len(other)):
            key = tuple(other[k][j] for k in right_keys)
            if any(v is None for v in key):
                continue
            index.setdefault(key, []).append(j)

        shared_right = set(right_keys) if on is not None else set()
        right_out_names = {}
        for name in other.columns:
            if name in shared_right:
                continue
            out = name
            if out in self._columns:
                out = name + suffixes[1]
                if out in self._columns:
                    raise FrameError(f"suffixed column {out!r} still collides")
            right_out_names[name] = out

        out_cols: Dict[str, List[Any]] = {n: [] for n in self.columns}
        for name, out in right_out_names.items():
            out_cols[out] = []

        matched_right: set = set()

        def emit(i: Optional[int], j: Optional[int]) -> None:
            for n in self.columns:
                if i is not None:
                    out_cols[n].append(self[n][i])
                elif n in left_keys and j is not None and on is not None:
                    # Right-only row in an outer/right join: carry the key.
                    out_cols[n].append(other[right_keys[left_keys.index(n)]][j])
                else:
                    out_cols[n].append(None)
            for name, out in right_out_names.items():
                out_cols[out].append(other[name][j] if j is not None else None)

        for i in range(len(self)):
            key = tuple(self[k][i] for k in left_keys)
            matches = [] if any(v is None for v in key) else index.get(key, [])
            if matches:
                for j in matches:
                    matched_right.add(j)
                    emit(i, j)
            elif how in ("left", "outer"):
                emit(i, None)
        if how in ("right", "outer"):
            for j in range(len(other)):
                if j not in matched_right:
                    emit(None, j)
        return DataFrame(out_cols)

    def concat(self, other: "DataFrame") -> "DataFrame":
        names = list(self.columns)
        for n in other.columns:
            if n not in names:
                names.append(n)
        data: Dict[str, List[Any]] = {}
        for n in names:
            mine = self._columns.get(n, Series([None] * len(self), n)).tolist()
            theirs = other._columns.get(n, Series([None] * len(other), n)).tolist()
            data[n] = mine + theirs
        return DataFrame(data)

    # ------------------------------------------------------------------
    # Grouping
    # ------------------------------------------------------------------
    def groupby(self, keys: Union[str, Sequence[str]]) -> "GroupBy":
        from .groupby import GroupBy

        names = [keys] if isinstance(keys, str) else list(keys)
        for name in names:
            if name not in self._columns:
                raise FrameError(f"groupby key {name!r} not found; available: {self.columns}")
        return GroupBy(self, names)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def pretty(self, max_rows: int = 20) -> str:
        return self.to_table("frame").pretty(max_rows=max_rows)


class _Inverted:
    """Inverts ordering for descending sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_Inverted") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Inverted) and self.key == other.key
