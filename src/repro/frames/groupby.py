"""GroupBy support for :class:`~repro.frames.frame.DataFrame`."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Tuple, Union

from .series import Series

AggSpec = Union[str, Callable[[Series], Any]]

_BUILTIN_AGGS: Dict[str, Callable[[Series], Any]] = {
    "sum": Series.sum,
    "mean": Series.mean,
    "avg": Series.mean,
    "min": Series.min,
    "max": Series.max,
    "count": Series.count,
    "median": Series.median,
    "std": Series.std,
    "nunique": Series.nunique,
    "first": lambda s: s[0] if len(s) else None,
    "last": lambda s: s[len(s) - 1] if len(s) else None,
}


class GroupBy:
    """Deferred grouping: ``df.groupby("k").agg(total=("x", "sum"))``."""

    def __init__(self, frame: "Any", keys: List[str]):
        self.frame = frame
        self.keys = keys
        self._group_order: List[Tuple] = []
        self._groups: Dict[Tuple, List[int]] = {}
        for i in range(len(frame)):
            marker = tuple(
                (type(frame[k][i]).__name__, frame[k][i]) for k in keys
            )
            if marker not in self._groups:
                self._groups[marker] = []
                self._group_order.append(marker)
            self._groups[marker].append(i)

    def _resolve(self, spec: AggSpec) -> Callable[[Series], Any]:
        if callable(spec):
            return spec
        try:
            return _BUILTIN_AGGS[spec]
        except KeyError:
            raise ValueError(
                f"unknown aggregation {spec!r}; known: {sorted(_BUILTIN_AGGS)}"
            ) from None

    def agg(self, **outputs: Tuple[str, AggSpec]) -> "Any":
        """Aggregate named outputs: ``agg(total=("amount", "sum"))``."""
        from .frame import DataFrame, FrameError

        for name, (column, _) in outputs.items():
            if column not in self.frame:
                raise FrameError(f"aggregation column {column!r} not found")
        data: Dict[str, List[Any]] = {k: [] for k in self.keys}
        for name in outputs:
            data[name] = []
        for marker in self._group_order:
            indices = self._groups[marker]
            for k in self.keys:
                data[k].append(self.frame[k][indices[0]])
            for name, (column, spec) in outputs.items():
                fn = self._resolve(spec)
                member = Series([self.frame[column][i] for i in indices], column)
                data[name].append(fn(member))
        return DataFrame(data)

    def size(self) -> "Any":
        """Group sizes as a frame with a ``size`` column."""
        from .frame import DataFrame

        data: Dict[str, List[Any]] = {k: [] for k in self.keys}
        data["size"] = []
        for marker in self._group_order:
            indices = self._groups[marker]
            for k in self.keys:
                data[k].append(self.frame[k][indices[0]])
            data["size"].append(len(indices))
        return DataFrame(data)

    def apply(self, fn: Callable[["Any"], Mapping[str, Any]]) -> "Any":
        """Apply ``fn`` to each group's sub-frame; fn returns a record."""
        from .frame import DataFrame

        records: List[Mapping[str, Any]] = []
        for marker in self._group_order:
            indices = self._groups[marker]
            sub = self.frame.take(indices)
            record = dict(fn(sub))
            for k in self.keys:
                record.setdefault(k, self.frame[k][indices[0]])
            records.append(record)
        return DataFrame.from_records(records)
