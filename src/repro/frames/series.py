"""A NULL-aware column vector (the reproduction's pandas-Series substitute).

Arithmetic and comparisons are elementwise and propagate ``None`` the way
SQL NULL does, so pipeline code behaves consistently whether it runs in the
SQL executor or the Python interpreter tool.
"""

from __future__ import annotations

import datetime
import math
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Union

Number = Union[int, float]


class Series:
    """An immutable-by-convention list of values with vectorized operations."""

    def __init__(self, values: Iterable[Any], name: str = ""):
        self.values: List[Any] = list(values)
        self.name = name

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __eq__(self, other: Any):  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other: Any):  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __lt__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a >= b)

    def equals(self, other: "Series") -> bool:
        """Structural equality (``==`` is elementwise, like pandas)."""
        return isinstance(other, Series) and self.values == other.values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(repr(v) for v in self.values[:8])
        suffix = ", ..." if len(self.values) > 8 else ""
        return f"Series({self.name!r}, [{preview}{suffix}])"

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _binary(self, other: Any, op: Callable[[Any, Any], Any]) -> "Series":
        if isinstance(other, Series):
            if len(other) != len(self):
                raise ValueError(
                    f"length mismatch: {len(self)} vs {len(other)}"
                )
            pairs = zip(self.values, other.values)
        else:
            pairs = ((v, other) for v in self.values)
        out = []
        for a, b in pairs:
            if a is None or b is None:
                out.append(None)
            else:
                out.append(op(a, b))
        return Series(out, self.name)

    def _compare(self, other: Any, op: Callable[[Any, Any], bool]) -> "Series":
        return self._binary(other, op)

    def __add__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: a + b)

    def __radd__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: b + a)

    def __sub__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: b - a)

    def __mul__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: a * b)

    def __rmul__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: b * a)

    def __truediv__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: a / b)

    def __rtruediv__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: b / a)

    def __neg__(self) -> "Series":
        return self.map(lambda v: -v)

    def __and__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: bool(a) and bool(b))

    def __or__(self, other: Any) -> "Series":
        return self._binary(other, lambda a, b: bool(a) or bool(b))

    def __invert__(self) -> "Series":
        return Series([None if v is None else not bool(v) for v in self.values], self.name)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], skip_nulls: bool = True) -> "Series":
        """Apply ``fn`` elementwise (NULLs pass through unless told otherwise)."""
        if skip_nulls:
            return Series([None if v is None else fn(v) for v in self.values], self.name)
        return Series([fn(v) for v in self.values], self.name)

    def rename(self, name: str) -> "Series":
        return Series(self.values, name)

    def isnull(self) -> "Series":
        return Series([v is None for v in self.values], self.name)

    def notnull(self) -> "Series":
        return Series([v is not None for v in self.values], self.name)

    def fillna(self, value: Any) -> "Series":
        return Series([value if v is None else v for v in self.values], self.name)

    def astype(self, target: type) -> "Series":
        def convert(v: Any) -> Any:
            if target is float:
                return float(v)
            if target is int:
                return int(v)
            if target is str:
                return str(v)
            if target is bool:
                return bool(v)
            raise TypeError(f"unsupported astype target: {target!r}")

        return self.map(convert)

    def isin(self, candidates: Sequence[Any]) -> "Series":
        pool = set(candidates)
        return Series(
            [None if v is None else v in pool for v in self.values], self.name
        )

    def clip(self, lower: Optional[Number] = None, upper: Optional[Number] = None) -> "Series":
        def bound(v: Number) -> Number:
            if lower is not None and v < lower:
                return lower
            if upper is not None and v > upper:
                return upper
            return v

        return self.map(bound)

    def round(self, digits: int = 0) -> "Series":
        return self.map(lambda v: round(v, digits))

    def abs(self) -> "Series":
        return self.map(abs)

    def diff(self) -> "Series":
        """First difference; the first element (and any gap) is None."""
        out: List[Any] = [None]
        for prev, cur in zip(self.values, self.values[1:]):
            out.append(None if prev is None or cur is None else cur - prev)
        return Series(out, self.name)

    def shift(self, periods: int = 1) -> "Series":
        if periods >= 0:
            shifted = [None] * periods + self.values[: len(self.values) - periods]
        else:
            shifted = self.values[-periods:] + [None] * (-periods)
        return Series(shifted[: len(self.values)], self.name)

    def cumsum(self) -> "Series":
        total = 0.0
        out: List[Any] = []
        for v in self.values:
            if v is None:
                out.append(None)
            else:
                total += v
                out.append(total)
        return Series(out, self.name)

    def interpolate(self) -> "Series":
        """Linear interpolation over None gaps (ends stay None).

        This is the operation the paper's Maltese-potassium example needs:
        "Assume that Potassium is linearly interpolated between samples."
        """
        values = list(self.values)
        known = [i for i, v in enumerate(values) if v is not None]
        if len(known) < 2:
            return Series(values, self.name)
        for left, right in zip(known, known[1:]):
            gap = right - left
            if gap <= 1:
                continue
            lo, hi = values[left], values[right]
            for offset in range(1, gap):
                values[left + offset] = lo + (hi - lo) * offset / gap
        return Series(values, self.name)

    # ------------------------------------------------------------------
    # String / date accessors
    # ------------------------------------------------------------------
    def str_lower(self) -> "Series":
        return self.map(lambda s: s.lower())

    def str_upper(self) -> "Series":
        return self.map(lambda s: s.upper())

    def str_strip(self) -> "Series":
        return self.map(lambda s: s.strip())

    def str_contains(self, needle: str, case: bool = True) -> "Series":
        if case:
            return self.map(lambda s: needle in s)
        lowered = needle.lower()
        return self.map(lambda s: lowered in s.lower())

    def str_replace(self, old: str, new: str) -> "Series":
        return self.map(lambda s: s.replace(old, new))

    def str_split_part(self, sep: str, index: int) -> "Series":
        def part(s: str) -> str:
            pieces = s.split(sep)
            return pieces[index] if 0 <= index < len(pieces) else ""

        return self.map(part)

    def dt_year(self) -> "Series":
        return self.map(lambda d: d.year)

    def dt_month(self) -> "Series":
        return self.map(lambda d: d.month)

    def dt_day(self) -> "Series":
        return self.map(lambda d: d.day)

    def parse_dates(self, formats: Optional[Sequence[str]] = None) -> "Series":
        """Parse text dates (used for Materializer date-format repairs)."""
        from ..relational.types import parse_date

        def convert(v: Any) -> Any:
            if isinstance(v, datetime.date):
                return v
            return parse_date(str(v))

        return self.map(convert)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _non_null(self) -> List[Any]:
        return [v for v in self.values if v is not None]

    def count(self) -> int:
        return len(self._non_null())

    def sum(self) -> Any:
        data = self._non_null()
        return sum(data) if data else None

    def mean(self) -> Optional[float]:
        data = self._non_null()
        return sum(data) / len(data) if data else None

    def min(self) -> Any:
        data = self._non_null()
        return min(data) if data else None

    def max(self) -> Any:
        data = self._non_null()
        return max(data) if data else None

    def median(self) -> Any:
        data = sorted(self._non_null())
        if not data:
            return None
        mid = len(data) // 2
        if len(data) % 2 == 1:
            return data[mid]
        return (data[mid - 1] + data[mid]) / 2

    def std(self) -> Optional[float]:
        data = self._non_null()
        if len(data) < 2:
            return None
        mean = sum(data) / len(data)
        return math.sqrt(sum((v - mean) ** 2 for v in data) / (len(data) - 1))

    def nunique(self) -> int:
        return len(set(self._non_null()))

    def unique(self) -> List[Any]:
        seen: List[Any] = []
        marker = set()
        for v in self.values:
            key = (type(v).__name__, v)
            if key not in marker:
                marker.add(key)
                seen.append(v)
        return seen

    def tolist(self) -> List[Any]:
        return list(self.values)
