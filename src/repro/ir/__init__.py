"""ir — the IR System: multi-source retrieval behind one facade."""

from .docdb import DocumentDatabase, KnowledgeEntry
from .system import IRSystem, RetrievalResult
from .web import WebPage, WebSearch

__all__ = [
    "IRSystem",
    "RetrievalResult",
    "WebSearch",
    "WebPage",
    "DocumentDatabase",
    "KnowledgeEntry",
]
