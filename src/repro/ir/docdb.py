"""The Document Database: captured domain knowledge as a retrievable store.

The paper: Pneuma-Seeker "automatically captures knowledge from user
interactions and save[s] it to Document Database", enabling cross-user
knowledge transfer — one user's clarification (e.g. "tariff impact must
account for direct and indirect tariffs") accelerates later sessions.
It reuses Pneuma-Retriever's indexer (here: the same hybrid index).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..documents.document import Document
from ..retriever.index import HybridIndex
from ..storage.atomic import atomic_write_json


@dataclass
class KnowledgeEntry:
    entry_id: str
    text: str
    topic: str = ""
    author: str = ""


class DocumentDatabase:
    """Append-only store of domain-knowledge snippets with hybrid search."""

    def __init__(self) -> None:
        self.index = HybridIndex(dim=192)
        self._entries: Dict[str, KnowledgeEntry] = {}
        self._counter = 0
        # The serving layer shares one store across all sessions, so
        # captures from concurrent turns must not race on the counter.
        self._lock = threading.Lock()
        #: When set (by the storage layer), every captured entry is
        #: journaled before :meth:`add` returns — the WAL hook that makes
        #: knowledge captured between saves survive a crash.
        self.recorder: Optional[Callable[[dict], None]] = None

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, text: str, topic: str = "", author: str = "") -> KnowledgeEntry:
        """Capture one knowledge snippet; returns the stored entry."""
        if not text.strip():
            raise ValueError("knowledge text must be non-empty")
        with self._lock:
            self._counter += 1
            entry = KnowledgeEntry(f"k{self._counter}", text.strip(), topic, author)
            self._entries[entry.entry_id] = entry
            self.index.add(entry.entry_id, f"{topic}. {text}" if topic else text)
            if self.recorder is not None:
                self.recorder(
                    {
                        "id": entry.entry_id,
                        "text": entry.text,
                        "topic": entry.topic,
                        "author": entry.author,
                    }
                )
        return entry

    def entries(self) -> List[KnowledgeEntry]:
        with self._lock:
            return list(self._entries.values())

    def search(self, query: str, k: int = 3) -> List[Document]:
        # Serialized against add(): unlike the frozen table index, this
        # store keeps growing while other sessions search it.
        with self._lock:
            hits = self.index.search(query, k=k)
        documents = []
        for hit in hits:
            entry = self._entries[hit.doc_id]
            documents.append(
                Document(
                    doc_id=f"knowledge:{entry.entry_id}",
                    kind="knowledge",
                    title=entry.topic or "captured knowledge",
                    text=entry.text,
                    payload={"author": entry.author, "topic": entry.topic},
                    score=hit.score,
                    source="document-db",
                )
            )
        return documents

    # ------------------------------------------------------------------
    # Persistence (emergent documentation should survive the session)
    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        with self._lock:
            records = [
                {"id": e.entry_id, "text": e.text, "topic": e.topic, "author": e.author}
                for e in self._entries.values()
            ]
        # Published atomically (write-temp → fsync → rename → fsync-dir):
        # a crash mid-save leaves the previous file, never a torn one.
        atomic_write_json(path, records)

    @classmethod
    def load(cls, path: Path) -> "DocumentDatabase":
        db = cls()
        for record in json.loads(Path(path).read_text()):
            db.add(record["text"], record.get("topic", ""), record.get("author", ""))
        return db
