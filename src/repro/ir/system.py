"""The IR System: one retrieval facade over heterogeneous sources.

Dispatches a query to the registered retrievers (Pneuma-Retriever for
tables, Document Database for captured knowledge, Web Search for external
pages), normalizes everything into :class:`Document` objects, and merges.
New retrievers can be registered without changing callers — the
extensibility property §3.3 calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..documents.document import Document
from ..ir.docdb import DocumentDatabase
from ..obs import trace as obs
from ..ir.web import WebSearch
from ..retriever.retriever import PneumaRetriever

RetrieverFn = Callable[[str, int], List[Document]]
BatchRetrieverFn = Callable[[Sequence[str], int], List[List[Document]]]


@dataclass
class RetrievalResult:
    """What one IR call returns: merged documents plus per-source counts."""

    query: str
    documents: List[Document]
    per_source: Dict[str, int]

    def tables(self) -> List[Document]:
        return [d for d in self.documents if d.kind == "table"]

    def web(self) -> List[Document]:
        return [d for d in self.documents if d.kind == "web"]

    def knowledge(self) -> List[Document]:
        return [d for d in self.documents if d.kind == "knowledge"]

    @property
    def degraded(self) -> bool:
        """True when any source served this query on a degraded path
        (e.g. BM25-only table discovery with the dense half's circuit open)."""
        return any(d.degraded for d in self.documents)


class IRSystem:
    """Multi-source retrieval with a uniform Document interface."""

    def __init__(
        self,
        retriever: Optional[PneumaRetriever] = None,
        web: Optional[WebSearch] = None,
        knowledge: Optional[DocumentDatabase] = None,
    ):
        self._sources: Dict[str, RetrieverFn] = {}
        self._batch_sources: Dict[str, BatchRetrieverFn] = {}
        self.retriever = retriever
        self.web = web
        self.knowledge = knowledge
        if retriever is not None:
            self.register(
                "tables",
                lambda q, k: retriever.search(q, k),
                batch_fn=lambda qs, k: retriever.search_batch(qs, k=k),
            )
        if web is not None:
            self.register("web", lambda q, k: web.search(q, k))
        if knowledge is not None:
            self.register("knowledge", lambda q, k: knowledge.search(q, k))

    def register(
        self, name: str, fn: RetrieverFn, batch_fn: Optional[BatchRetrieverFn] = None
    ) -> None:
        """Plug in a new retriever under ``name`` (replaces an existing one).

        ``batch_fn`` optionally serves N queries in one call; sources
        without one are looped over by :meth:`retrieve_batch`.
        """
        self._sources[name] = fn
        if batch_fn is not None:
            self._batch_sources[name] = batch_fn
        else:
            self._batch_sources.pop(name, None)

    def unregister(self, name: str) -> None:
        """Remove a retriever (the evaluation disables 'web' this way)."""
        self._sources.pop(name, None)
        self._batch_sources.pop(name, None)

    def source_names(self) -> List[str]:
        return sorted(self._sources)

    def retrieve(
        self, query: str, k_tables: int = 6, k_other: int = 2
    ) -> RetrievalResult:
        """Query every registered source and merge the results."""
        documents: List[Document] = []
        per_source: Dict[str, int] = {}
        for name in sorted(self._sources):
            k = k_tables if name == "tables" else k_other
            with obs.span(f"ir.source.{name}", k=k) as sp:
                docs = self._sources[name](query, k)
                sp.set_attr("documents", len(docs))
            per_source[name] = len(docs)
            documents.extend(docs)
        return RetrievalResult(query=query, documents=documents, per_source=per_source)

    def retrieve_batch(
        self, queries: Sequence[str], k_tables: int = 6, k_other: int = 2
    ) -> List[RetrievalResult]:
        """One :class:`RetrievalResult` per query, batching where possible.

        The table source is driven through Pneuma-Retriever's
        ``search_batch`` (one index pass for N queries); sources without a
        batch entry point fall back to per-query calls.  Result order and
        content match N sequential :meth:`retrieve` calls exactly.
        """
        queries = list(queries)
        if not queries:
            return []
        merged: List[List[Document]] = [[] for _ in queries]
        per_source: List[Dict[str, int]] = [{} for _ in queries]
        for name in sorted(self._sources):
            k = k_tables if name == "tables" else k_other
            batch_fn = self._batch_sources.get(name)
            with obs.span(f"ir.source.{name}", k=k, queries=len(queries)):
                if batch_fn is not None:
                    batches = batch_fn(queries, k)
                else:
                    fn = self._sources[name]
                    batches = [fn(q, k) for q in queries]
            for i, docs in enumerate(batches):
                per_source[i][name] = len(docs)
                merged[i].extend(docs)
        return [
            RetrievalResult(query=q, documents=docs, per_source=counts)
            for q, docs, counts in zip(queries, merged, per_source)
        ]

    # ------------------------------------------------------------------
    # Grounding hooks used by Conductor (see §3.2: grounding decisions on
    # retrieved data instead of assumptions)
    # ------------------------------------------------------------------
    def column_values(self, table_name: str, column: str, limit: int = 200) -> List:
        if self.retriever is None:
            return []
        return self.retriever.column_values(table_name, column, limit)

    def capture_knowledge(self, text: str, topic: str = "", author: str = "") -> None:
        """Persist a clarification into the Document Database."""
        if self.knowledge is not None:
            self.knowledge.add(text, topic=topic, author=author)
