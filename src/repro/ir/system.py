"""The IR System: one retrieval facade over heterogeneous sources.

Dispatches a query to the registered retrievers (Pneuma-Retriever for
tables, Document Database for captured knowledge, Web Search for external
pages), normalizes everything into :class:`Document` objects, and merges.
New retrievers can be registered without changing callers — the
extensibility property §3.3 calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..documents.document import Document
from ..ir.docdb import DocumentDatabase
from ..ir.web import WebSearch
from ..retriever.retriever import PneumaRetriever

RetrieverFn = Callable[[str, int], List[Document]]


@dataclass
class RetrievalResult:
    """What one IR call returns: merged documents plus per-source counts."""

    query: str
    documents: List[Document]
    per_source: Dict[str, int]

    def tables(self) -> List[Document]:
        return [d for d in self.documents if d.kind == "table"]

    def web(self) -> List[Document]:
        return [d for d in self.documents if d.kind == "web"]

    def knowledge(self) -> List[Document]:
        return [d for d in self.documents if d.kind == "knowledge"]


class IRSystem:
    """Multi-source retrieval with a uniform Document interface."""

    def __init__(
        self,
        retriever: Optional[PneumaRetriever] = None,
        web: Optional[WebSearch] = None,
        knowledge: Optional[DocumentDatabase] = None,
    ):
        self._sources: Dict[str, RetrieverFn] = {}
        self.retriever = retriever
        self.web = web
        self.knowledge = knowledge
        if retriever is not None:
            self.register("tables", lambda q, k: retriever.search(q, k))
        if web is not None:
            self.register("web", lambda q, k: web.search(q, k))
        if knowledge is not None:
            self.register("knowledge", lambda q, k: knowledge.search(q, k))

    def register(self, name: str, fn: RetrieverFn) -> None:
        """Plug in a new retriever under ``name`` (replaces an existing one)."""
        self._sources[name] = fn

    def unregister(self, name: str) -> None:
        """Remove a retriever (the evaluation disables 'web' this way)."""
        self._sources.pop(name, None)

    def source_names(self) -> List[str]:
        return sorted(self._sources)

    def retrieve(
        self, query: str, k_tables: int = 6, k_other: int = 2
    ) -> RetrievalResult:
        """Query every registered source and merge the results."""
        documents: List[Document] = []
        per_source: Dict[str, int] = {}
        for name in sorted(self._sources):
            k = k_tables if name == "tables" else k_other
            docs = self._sources[name](query, k)
            per_source[name] = len(docs)
            documents.extend(docs)
        return RetrievalResult(query=query, documents=documents, per_source=per_source)

    # ------------------------------------------------------------------
    # Grounding hooks used by Conductor (see §3.2: grounding decisions on
    # retrieved data instead of assumptions)
    # ------------------------------------------------------------------
    def column_values(self, table_name: str, column: str, limit: int = 200) -> List:
        if self.retriever is None:
            return []
        return self.retriever.column_values(table_name, column, limit)

    def capture_knowledge(self, text: str, topic: str = "", author: str = "") -> None:
        """Persist a clarification into the Document Database."""
        if self.knowledge is not None:
            self.knowledge.add(text, topic=topic, author=author)
