"""Offline Web Search: a corpus of synthetic "web pages" behind the same
retrieval interface the paper's thin web-search wrapper exposes.

Pages carry both prose (for retrieval/interpretation) and structured
``records`` (so the Materializer can integrate them, e.g. tariff schedules
becoming a column of a procurement table).  The evaluation harness disables
this retriever, exactly as the paper does for KramaBench runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..documents.document import Document
from ..retriever.index import HybridIndex


@dataclass
class WebPage:
    url: str
    title: str
    text: str
    records: List[Dict[str, Any]] = field(default_factory=list)


class WebSearch:
    """A thin interface to an (offline) search engine."""

    def __init__(self, pages: Optional[List[WebPage]] = None):
        self.index = HybridIndex(dim=192)
        self._pages: Dict[str, WebPage] = {}
        for page in pages or []:
            self.add_page(page)

    def add_page(self, page: WebPage) -> None:
        self._pages[page.url] = page
        self.index.add(page.url, f"{page.title}. {page.text}")

    def __len__(self) -> int:
        return len(self._pages)

    def search(self, query: str, k: int = 3) -> List[Document]:
        documents = []
        for hit in self.index.search(query, k=k):
            page = self._pages[hit.doc_id]
            documents.append(
                Document(
                    doc_id=f"web:{page.url}",
                    kind="web",
                    title=page.title,
                    text=page.text,
                    payload={"url": page.url, "records": page.records},
                    score=hit.score,
                    source="web-search",
                )
            )
        return documents
