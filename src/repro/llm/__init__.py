"""llm — the offline language-model substrate.

Components talk to the model through prompt strings and parse text
responses (:mod:`repro.llm.prompts`); :class:`RuleLLM` answers them with
deterministic role policies, meters token usage (:mod:`repro.llm.tokens`),
enforces a context window, and ticks a virtual latency clock.
"""

from .clock import (
    INDEX_LOOKUP_SECONDS,
    LLM_CALL_SECONDS,
    TOOL_CALL_SECONDS,
    SimulatedLatencyClock,
    VirtualClock,
)
from .interface import ContextLengthExceeded, LanguageModel, ModelLimits
from .pricing import MODEL_PRICES, TABLE2_MODEL_ORDER, CostBreakdown, ModelPrice, price_for
from .prompts import (
    PromptFormatError,
    parse_prompt,
    parse_response,
    render_prompt,
    render_response,
    section_json,
)
from .rule_llm import Policy, RuleLLM
from .tokens import Usage, UsageEvent, UsageLedger, count_tokens

__all__ = [
    "RuleLLM",
    "Policy",
    "LanguageModel",
    "ModelLimits",
    "ContextLengthExceeded",
    "VirtualClock",
    "SimulatedLatencyClock",
    "LLM_CALL_SECONDS",
    "TOOL_CALL_SECONDS",
    "INDEX_LOOKUP_SECONDS",
    "UsageLedger",
    "Usage",
    "UsageEvent",
    "count_tokens",
    "MODEL_PRICES",
    "TABLE2_MODEL_ORDER",
    "ModelPrice",
    "CostBreakdown",
    "price_for",
    "render_prompt",
    "parse_prompt",
    "render_response",
    "parse_response",
    "section_json",
    "PromptFormatError",
]
