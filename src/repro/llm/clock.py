"""A virtual clock for latency accounting.

The paper reports Pneuma-Seeker taking 70.26 s per prompt on average while
FTS and Pneuma-Retriever answer "almost instantaneously".  Offline we model
latency with a virtual clock that components tick: LLM calls cost seconds,
static index lookups cost milliseconds.  Benches report virtual seconds
alongside measured wall-clock (EXPERIMENTS.md documents the substitution).
"""

from __future__ import annotations


class VirtualClock:
    """Accumulates simulated seconds."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def tick(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot tick backwards")
        self._now += seconds

    def reset(self) -> None:
        self._now = 0.0


#: Virtual latency constants (seconds), chosen so that a typical Seeker turn
#: (4-6 LLM calls plus tool work) lands near the paper's ~70 s/prompt.
LLM_CALL_SECONDS = 12.0
TOOL_CALL_SECONDS = 1.5
INDEX_LOOKUP_SECONDS = 0.05
