"""A virtual clock for latency accounting.

The paper reports Pneuma-Seeker taking 70.26 s per prompt on average while
FTS and Pneuma-Retriever answer "almost instantaneously".  Offline we model
latency with a virtual clock that components tick: LLM calls cost seconds,
static index lookups cost milliseconds.  Benches report virtual seconds
alongside measured wall-clock (EXPERIMENTS.md documents the substitution).
"""

from __future__ import annotations

import time


class VirtualClock:
    """Accumulates simulated seconds."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def tick(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot tick backwards")
        self._now += seconds

    def reset(self) -> None:
        self._now = 0.0


class SimulatedLatencyClock(VirtualClock):
    """A virtual clock whose ticks also block for real wall time.

    The serving layer's workload is dominated by LLM and tool calls that,
    against a hosted model, are *network-bound*: the Python process waits
    on I/O while the GIL is released.  To study concurrency offline, each
    virtual tick sleeps ``seconds * real_time_factor`` — e.g. a factor of
    1e-3 turns the paper's 12 s LLM call into a 12 ms stall.  Threaded
    sessions overlap these stalls exactly as they would overlap real
    network waits, which is what the throughput benchmark measures.
    """

    def __init__(self, real_time_factor: float = 0.0) -> None:
        super().__init__()
        if real_time_factor < 0:
            raise ValueError("real_time_factor must be non-negative")
        self.real_time_factor = real_time_factor

    def tick(self, seconds: float) -> None:
        super().tick(seconds)
        if self.real_time_factor > 0 and seconds > 0:
            time.sleep(seconds * self.real_time_factor)


#: Virtual latency constants (seconds), chosen so that a typical Seeker turn
#: (4-6 LLM calls plus tool work) lands near the paper's ~70 s/prompt.
LLM_CALL_SECONDS = 12.0
TOOL_CALL_SECONDS = 1.5
INDEX_LOOKUP_SECONDS = 0.05
