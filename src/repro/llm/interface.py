"""The language-model interface every component programs against."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from .tokens import count_tokens


class ContextLengthExceeded(Exception):
    """Raised when a prompt exceeds the model's context window.

    The paper's §4.2 reports exactly this failure mode for the O3
    full-context baseline (6/12 archaeology, 17/20 environment questions).
    Retrying cannot help — the same prompt overflows the same window — so
    the resilience layer classifies it non-retryable (:func:`is_retryable`)
    and lets it propagate to the caller unchanged.
    """

    def __init__(self, tokens: int, limit: int):
        super().__init__(f"prompt of {tokens} tokens exceeds context limit of {limit}")
        self.tokens = tokens
        self.limit = limit


class TransientDependencyError(RuntimeError):
    """A dependency (model endpoint, ANN half, SQL backend) failed in a way
    a retry may fix: timeouts, 5xx-style flakes, injected faults.

    This is the one exception type the serving layer's retry loop and
    circuit breakers react to; everything else is treated as a permanent,
    caller-visible error.  ``dependency`` names which backend failed
    ("llm" | "retriever" | "sql") so per-dependency breakers can attribute
    the failure.
    """

    def __init__(self, dependency: str, message: str = ""):
        super().__init__(message or f"transient failure in dependency {dependency!r}")
        self.dependency = dependency


def is_retryable(exc: BaseException) -> bool:
    """Retry classification at the model/tool boundary.

    Transient dependency failures are retryable; :class:`ContextLengthExceeded`
    and every other exception (protocol misuse, genuine bugs) are not.
    """
    return isinstance(exc, TransientDependencyError)


class LanguageModel(Protocol):
    """Minimal protocol: text in, text out."""

    @property
    def model_name(self) -> str: ...

    def complete(self, prompt: str, component: str = "llm") -> str: ...


@dataclass
class ModelLimits:
    """Context-window budget enforced on every call."""

    context_tokens: int = 200_000

    def check(self, prompt: str) -> int:
        tokens = count_tokens(prompt)
        if tokens > self.context_tokens:
            raise ContextLengthExceeded(tokens, self.context_tokens)
        return tokens
