"""The language-model interface every component programs against."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from .tokens import count_tokens


class ContextLengthExceeded(Exception):
    """Raised when a prompt exceeds the model's context window.

    The paper's §4.2 reports exactly this failure mode for the O3
    full-context baseline (6/12 archaeology, 17/20 environment questions).
    """

    def __init__(self, tokens: int, limit: int):
        super().__init__(f"prompt of {tokens} tokens exceeds context limit of {limit}")
        self.tokens = tokens
        self.limit = limit


class LanguageModel(Protocol):
    """Minimal protocol: text in, text out."""

    @property
    def model_name(self) -> str: ...

    def complete(self, prompt: str, component: str = "llm") -> str: ...


@dataclass
class ModelLimits:
    """Context-window budget enforced on every call."""

    context_tokens: int = 200_000

    def check(self, prompt: str) -> int:
        tokens = count_tokens(prompt)
        if tokens > self.context_tokens:
            raise ContextLengthExceeded(tokens, self.context_tokens)
        return tokens
