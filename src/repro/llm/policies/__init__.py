"""Role-specific policies behind the offline RuleLLM."""

from .conductor import ConductorPolicy
from .ds_guru import DSGuruPolicy
from .full_context import FullContextPolicy
from .materializer import MaterializerPolicy
from .rag import RAGPolicy
from .user_sim import UserSimPolicy

ALL_POLICIES = (
    ConductorPolicy,
    MaterializerPolicy,
    RAGPolicy,
    UserSimPolicy,
    DSGuruPolicy,
    FullContextPolicy,
)

__all__ = [
    "ConductorPolicy",
    "MaterializerPolicy",
    "RAGPolicy",
    "UserSimPolicy",
    "DSGuruPolicy",
    "FullContextPolicy",
    "ALL_POLICIES",
]
