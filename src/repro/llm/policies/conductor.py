"""The Conductor policy: ReAct-style action selection (§3.2).

Given the sections the Conductor component renders into its prompt — the
latest user message, accumulated intent, the current ``(T, Q)`` state,
retrieved documents, grounded column values, and this turn's prior actions —
the policy emits one ``{"thought", "action"}`` response at a time.

The decision order mirrors the paper's narrative: retrieve before
assuming; ground filter values in actual data; reify the interpreted need
as a target schema and queries; materialize; execute; always end with a
user-facing message.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..prompts import render_response, section_json
from ..semantics import (
    SchemaView,
    content_tokens,
    detect_aggregate,
    name_match_score,
    score_table,
)
from .planning import build_plan, plan_to_json


def _keyword_query(intent: str) -> str:
    tokens = content_tokens(intent)
    # Deduplicate while preserving order; cap for index-friendliness.
    seen: List[str] = []
    for token in tokens:
        if token not in seen:
            seen.append(token)
    return " ".join(seen[:24])


def _target_name(table: str) -> str:
    return f"{table}_target"


class ConductorPolicy:
    """Selects the Conductor's next action."""

    role = "conductor"

    def respond(self, sections: Mapping[str, str]) -> str:
        intent = sections.get("INTENT") or sections.get("USER_MESSAGE", "")
        user_message = sections.get("USER_MESSAGE", "")
        state = section_json(sections, "STATE", {}) or {}
        docs = section_json(sections, "RETRIEVED", []) or []
        grounded = section_json(sections, "GROUNDED", {}) or {}
        actions_taken = section_json(sections, "ACTIONS", []) or []
        last_error = sections.get("LAST_ERROR", "")
        last_result = section_json(sections, "LAST_RESULT", None)
        knowledge = [d for d in docs if d.get("kind") == "knowledge"]

        kinds = list(actions_taken)
        tables = [
            SchemaView.from_payload(d["payload"]) for d in docs if d.get("kind") == "table"
        ]

        # The harness interrupted us at the action limit: end with a
        # user-facing message, as §3.2 prescribes.
        if sections.get("FORCE_MESSAGE"):
            return self._emit(
                "The action limit was reached; summarizing progress for the user.",
                {
                    "kind": "message_user",
                    "message": self._summary_message(
                        state, tables, last_result, last_error, user_message
                    ),
                },
            )

        # 1. No evidence yet: retrieve before assuming anything.  On later
        # turns, retrieve again whenever the user mentions terms the working
        # documents do not cover (the need moved; the evidence must follow).
        if "retrieve" not in kinds:
            if not docs:
                return self._emit(
                    "I have no retrieved data for this need yet; I should query the "
                    "IR System before proposing any schema.",
                    {"kind": "retrieve", "query": _keyword_query(intent)},
                )
            residual = self._residual_tokens(user_message, docs, grounded)
            if residual:
                return self._emit(
                    f"The user now mentions {residual}, which none of my retrieved "
                    "documents cover; retrieving again before replanning.",
                    {"kind": "retrieve", "query": " ".join(residual)},
                )
            probe = self._connection_probe(user_message, tables)
            if probe:
                anchor_table, query = probe
                return self._emit(
                    f"The user asks what connects to {anchor_table!r}; tables that "
                    "reference it carry its name in their foreign-key columns, so I "
                    "will pivot-retrieve on that pattern.",
                    {"kind": "retrieve", "query": query},
                )

        if not tables:
            return self._emit(
                "Retrieval returned no tables, so the need cannot be grounded in "
                "available data; I must tell the user instead of fabricating a schema.",
                {
                    "kind": "message_user",
                    "message": (
                        "I could not find tables relevant to your request in the "
                        "available sources. Could you describe the data you expect "
                        "to exist (topic, entities, measurements)?"
                    ),
                },
            )

        # Augment intent with captured domain knowledge (cross-user transfer).
        effective_intent = intent
        for doc in knowledge:
            effective_intent += " " + doc.get("text", "")

        plan_needed = detect_aggregate(effective_intent) is not None
        sample_plan = build_plan(effective_intent, tables) if plan_needed else None
        anchor = sample_plan.table if sample_plan else (tables[0].table if tables else None)
        anchor_schema = next((t for t in tables if t.table == anchor), None)
        anchor_has_text = bool(anchor_schema and anchor_schema.text_columns())

        # 2. Ground candidate filter values in real data before planning.
        if plan_needed and anchor_has_text and "ground_values" not in kinds:
            if anchor not in grounded:
                return self._emit(
                    f"The plan will likely filter text columns of {anchor!r}; I should "
                    "fetch the actual distinct values rather than assume spellings.",
                    {"kind": "ground_values", "table": anchor, "column": "*"},
                )

        # 2b. The anchor itself has nothing to filter on: if the question
        # names an entity no retrieved document mentions, retrieve again with
        # just the unresolved terms (the dimension table carrying them is
        # easily crowded out of the first result set).
        if (
            plan_needed
            and not anchor_has_text
            and kinds.count("retrieve") == 1
            and "update_state" not in kinds
        ):
            residual = self._residual_tokens(user_message, docs, grounded)
            if residual:
                return self._emit(
                    f"The question mentions {residual} but no retrieved document "
                    "covers those terms; retrieving again with just them.",
                    {"kind": "retrieve", "query": " ".join(residual)},
                )

        # 3. Reify the (possibly updated) information need as (T, Q).
        if "update_state" not in kinds:
            if plan_needed:
                plan = build_plan(effective_intent, tables, known_values=grounded)
                if plan is None:
                    return self._emit(
                        "The user asks for a computation but I cannot identify the "
                        "measure in the retrieved schemas; I need clarification.",
                        {
                            "kind": "message_user",
                            "message": self._clarification_message(tables),
                        },
                    )
                return self._emit(
                    f"Interpreting the need as: {plan.describe()}. I will reify it as "
                    "a target schema and a SQL query over the materialized table.",
                    self._update_state_action(plan, tables, docs, effective_intent),
                )
            linked = self._enrichment_targets(user_message, tables)
            if len(linked) >= 2:
                names = [schema.table for _, schema, _ in linked]
                return self._emit(
                    f"The user wants columns of {names} linked row-by-row; I will "
                    "reify one target table spanning them and let the alignment "
                    "compiler find the join path through discovered candidates.",
                    self._enrichment_state_action(linked),
                )
            return self._emit(
                "The user is exploring; I will reify a browsing schema over the most "
                "relevant table so they can see what is available.",
                self._exploratory_state_action(effective_intent, tables),
            )

        # 4. Materialize T if the spec exists but the instance does not.
        # Newest spec first: it reifies the *current* turn's need; earlier
        # specs left pending by an interrupted turn should not starve it.
        spec_names = [t["name"] for t in state.get("T", [])]
        materialized = set(state.get("materialized", []))
        pending = [name for name in spec_names if name not in materialized]
        if pending and "materialize" not in kinds and not last_error:
            return self._emit(
                f"T defines {pending[-1]!r} but it is not materialized yet; Q cannot "
                "run until the Materializer populates it.",
                {"kind": "materialize", "table": pending[-1], "note": user_message},
            )

        # 5. Execute Q once the spec it queries (the newest) is materialized.
        if (
            state.get("Q")
            and spec_names
            and spec_names[-1] in materialized
            and last_result is None
            and "execute_sql" not in kinds
            and not last_error
        ):
            return self._emit(
                "T is materialized and Q is defined; executing Q grounds my answer "
                "in actual data.",
                {"kind": "execute_sql"},
            )

        # 6. Close the turn with user-facing communication.
        return self._emit(
            "I have enough to report back; ending the sequence with a user-facing "
            "message as instructed.",
            {"kind": "message_user", "message": self._summary_message(
                state, tables, last_result, last_error, user_message
            )},
        )

    #: Stemmed words that describe the computation rather than the data;
    #: they never indicate a missing document.
    _QUERY_WORDS = frozenset(
        "averag mean total sum count many maximum minimum highest lowest "
        "largest smallest least most median middl standard deviate deviation "
        "correlate ratio percentage round decimal place assum linearly "
        "interpolat first last record read measur taken collect level "
        "exceed chang rang what which how much data "
        "pleas link reach give show alongsid connect connection other "
        "trac trail chain start study surround understand overview hold "
        "partner every tabl".split()
    )

    #: Stemmed cues that the user wants rows of several tables linked
    #: together (enrichment), rather than a computation over one.
    _ENRICH_CUES = frozenset("link alongsid enrich pair join".split())

    #: Stemmed cues that the user is asking what *connects to* known data —
    #: the walk step of an investigation whose endpoint is still unknown.
    _CONNECT_CUES = frozenset("connect connection link trail chain".split())

    def _residual_tokens(self, message: str, docs, grounded) -> List[str]:
        """Question tokens covered by no retrieved document or grounded value."""
        from ...text.tokenize import tokenize

        known = set()
        for doc in docs:
            known.update(tokenize(doc.get("text", "")))
            known.update(tokenize(doc.get("title", "")))
            for col in doc.get("payload", {}).get("columns", []):
                known.update(tokenize(col["name"]))
        for columns in grounded.values():
            for values in columns.values():
                for value in values[:200]:
                    known.update(tokenize(str(value)))
        residual = []
        for token in content_tokens(message):
            if token.isdigit() or token in self._QUERY_WORDS or token in known:
                continue
            if token not in residual:
                residual.append(token)
        return residual[:6]

    def _enrichment_targets(self, message: str, tables: List[SchemaView]):
        """Retrieved tables whose columns the message names fully.

        An enrichment request ("link X to Y, show x alongside y") names one
        column per endpoint table.  A table qualifies only when its best
        column clears the full-name threshold (0.6 — partial overlaps such
        as foreign-key columns sharing one token stay below it).  Results
        are ordered by where the column is named in the message, so the
        reified spec lists endpoints in the user's order.
        """
        from ...text.tokenize import tokenize

        tokens = content_tokens(message)
        if not set(tokens) & self._ENRICH_CUES:
            return []
        matched = []
        for schema in tables:
            best_score, best_col = 0.0, None
            for col in schema.columns:
                score = name_match_score(tokens, col.name)
                if score > best_score:
                    best_score, best_col = score, col
            if best_col is None or best_score <= 0.6:
                continue
            position = min(
                (tokens.index(t) for t in tokenize(best_col.name) if t in tokens),
                default=len(tokens),
            )
            matched.append((position, schema, best_col))
        matched.sort(key=lambda m: m[0])
        return matched

    def _connection_probe(self, message: str, tables: List[SchemaView]):
        """A pivot query for "what connects to <known table>?" questions.

        Tables that reference another carry its name inside their
        foreign-key columns (``vendor_custody_ref``), so retrieving on the
        known table's name plus reference words surfaces its children even
        though the user cannot name them yet.  Fires only when the message
        has a connection cue, names a table already retrieved, and is not
        itself a full enrichment request (which needs no more discovery).
        """
        from ...text.tokenize import tokenize

        tokens = content_tokens(message)
        if not set(tokens) & self._CONNECT_CUES:
            return None
        if len(self._enrichment_targets(message, tables)) >= 2:
            return None
        named = []
        for schema in tables:
            table_tokens = tokenize(schema.table)
            if table_tokens and all(t in tokens for t in table_tokens):
                named.append((max(tokens.index(t) for t in table_tokens), schema))
        if not named:
            return None
        named.sort(key=lambda m: m[0])
        anchor = named[-1][1]
        query_tokens = list(dict.fromkeys(tokenize(anchor.table))) + ["ref", "reference"]
        return anchor.table, " ".join(query_tokens)

    # ------------------------------------------------------------------
    # Action builders
    # ------------------------------------------------------------------
    def _update_state_action(
        self, plan, tables: List[SchemaView], docs: Optional[List[Dict[str, Any]]] = None, intent: str = ""
    ) -> Dict[str, Any]:
        from ..semantics import plan_to_sql

        target = _target_name(plan.table)
        primary = next(s for s in tables if s.table == plan.table)
        columns: List[Dict[str, str]] = []

        def add_column(name: str, dtype: str, source: str) -> None:
            if name and all(c["name"] != name for c in columns):
                columns.append({"name": name, "dtype": dtype, "source": source})

        web_specs = self._web_integration(plan, primary, docs or [], intent)
        for spec in web_specs:
            add_column(spec["new_column"], "DOUBLE", f"web:{spec['doc_id']}")

        if plan.measure:
            col = primary.column(plan.measure)
            add_column(plan.measure, col.dtype if col else "DOUBLE", f"{plan.table}.{plan.measure}")
        if plan.second_measure:
            add_column(plan.second_measure, "DOUBLE", f"{plan.table}.{plan.second_measure}")
        if plan.order_column:
            col = primary.column(plan.order_column)
            add_column(plan.order_column, col.dtype if col else "DATE", f"{plan.table}.{plan.order_column}")
        for f in plan.filters:
            source_table = plan.join["table"] if plan.join and primary.column(f.column) is None else plan.table
            add_column(f.column, "TEXT" if isinstance(f.value, str) else "DOUBLE", f"{source_table}.{f.column}")
        if plan.join:
            add_column(plan.join["left_on"], "TEXT", f"{plan.table}.{plan.join['left_on']}")

        integration: Dict[str, Any] = {}
        if plan.join:
            integration["join"] = plan.join
        if plan.interpolate:
            integration["interpolate"] = {"column": plan.measure, "order_by": plan.order_column}
        if web_specs:
            integration["web"] = [
                {k: v for k, v in spec.items() if k != "doc_id"} for spec in web_specs
            ]
            add_column(web_specs[0]["key"], "TEXT", f"{plan.table}.{web_specs[0]['key']}")

        table_spec = {
            "name": target,
            "columns": columns,
            "base_tables": [plan.table] + ([plan.join["table"]] if plan.join else []),
            "integration": integration,
            "notes": plan.describe(),
        }
        return {
            "kind": "update_state",
            "table_spec": table_spec,
            "queries": [plan_to_sql(plan, target)],
            "plan": plan_to_json(plan),
        }

    def _web_integration(
        self,
        plan,
        primary: SchemaView,
        docs: List[Dict[str, Any]],
        intent: str,
    ) -> List[Dict[str, Any]]:
        """Integrate web-page records as new columns (the §3.6 tariff flow).

        A web document's records become a column when (a) one record field
        matches a text column of the primary table (the join key, e.g.
        ``country``) and (b) the remaining numeric fields look relevant to
        the intent.  When the integrated fields are tariff-like, the plan's
        measure becomes the derived impact expression the paper walks
        through: ``price * (1 + new_tariff - previous_tariff)``.
        """
        from ..semantics import content_tokens, name_match_score

        specs: List[Dict[str, Any]] = []
        intent_tokens = content_tokens(intent)
        for doc in docs:
            if doc.get("kind") != "web":
                continue
            records = doc.get("payload", {}).get("records") or []
            if not records:
                continue
            fields = list(records[0].keys())
            key_field = None
            key_column = None
            best = 0.0
            for f in fields:
                for col in primary.text_columns():
                    score = name_match_score(content_tokens(col.name), f)
                    if score > max(best, 0.45):
                        best = score
                        key_field, key_column = f, col.name
            if key_field is None:
                continue
            for f in fields:
                if f == key_field:
                    continue
                if not any(isinstance(r.get(f), (int, float)) for r in records):
                    continue
                if name_match_score(intent_tokens, f) <= 0.05:
                    continue
                specs.append(
                    {
                        "doc_id": doc.get("doc_id", ""),
                        "records": records,
                        "key": key_column,
                        "record_key": key_field,
                        "value_field": f,
                        "new_column": f,
                    }
                )
        # Derived tariff-impact measure (§3.6): relative to the previous
        # active tariff when the user said so, else the new rate alone.
        new_cols = [s["new_column"] for s in specs]
        tariff_new = next((c for c in new_cols if "new" in c.lower() and "tariff" in c.lower()), None)
        tariff_prev = next(
            (c for c in new_cols if ("prev" in c.lower() or "old" in c.lower()) and "tariff" in c.lower()),
            None,
        )
        lowered = intent.lower()
        if plan.measure and tariff_new:
            if tariff_prev and ("previous" in lowered or "relative" in lowered):
                plan.measure_expr = f"{plan.measure} * (1 + {tariff_new} - {tariff_prev})"
            else:
                plan.measure_expr = f"{plan.measure} * (1 + {tariff_new})"
        return specs

    def _enrichment_state_action(self, matched) -> Dict[str, Any]:
        """Reify an enrichment need as one target spanning several tables.

        The spec carries only the named endpoint columns and base tables;
        the bridge tables of a multi-hop chain are deliberately absent —
        resolving the path through discovered join candidates is the
        alignment compiler's job, not the policy's.
        """
        base_tables = [schema.table for _, schema, _ in matched]
        target = "linked_" + "_".join(base_tables)
        columns = [
            {"name": col.name, "dtype": col.dtype, "source": f"{schema.table}.{col.name}"}
            for _, schema, col in matched
        ]
        table_spec = {
            "name": target,
            "columns": columns,
            "base_tables": base_tables,
            "integration": {},
            "notes": f"enrichment linking {' and '.join(base_tables)}",
        }
        selected = ", ".join(c["name"] for c in columns)
        return {
            "kind": "update_state",
            "table_spec": table_spec,
            "queries": [f"SELECT {selected} FROM {target} LIMIT 5"],
            "plan": None,
        }

    def _exploratory_state_action(self, intent: str, tables: List[SchemaView]) -> Dict[str, Any]:
        from .planning import choose_primary_table

        primary = choose_primary_table(intent, tables) or tables[0]
        target = _target_name(primary.table)
        table_spec = {
            "name": target,
            "columns": [
                {"name": c.name, "dtype": c.dtype, "source": f"{primary.table}.{c.name}"}
                for c in primary.columns
            ],
            "base_tables": [primary.table],
            "integration": {},
            "notes": f"browsing view over {primary.table}",
        }
        return {
            "kind": "update_state",
            "table_spec": table_spec,
            "queries": [f"SELECT * FROM {target} LIMIT 5"],
            "plan": None,
        }

    # ------------------------------------------------------------------
    # Message builders (these surface concepts to the user / LLM Sim)
    # ------------------------------------------------------------------
    def _clarification_message(self, tables: List[SchemaView]) -> str:
        parts = ["I found these candidate tables but could not pin down the quantity to compute:"]
        for schema in tables[:3]:
            cols = ", ".join(schema.column_names()[:10])
            parts.append(f"- {schema.table} (columns: {cols})")
        parts.append("Which measurement should the analysis use?")
        return "\n".join(parts)

    def _summary_message(
        self,
        state: Mapping[str, Any],
        tables: List[SchemaView],
        last_result: Any,
        last_error: str,
        message: str = "",
    ) -> str:
        if last_error:
            return (
                "I hit a problem while preparing the data: "
                f"{last_error}. I have kept the current T and Q in the state view; "
                "could you adjust or confirm the intended columns and filters?"
            )
        parts: List[str] = []
        specs = state.get("T", [])
        browsing = bool(specs) and all(
            "browsing view" in s.get("notes", "") for s in specs
        )
        if browsing:
            # Exploration: surface what is available across the top tables,
            # not just the one we picked to browse.  Rank by relevance to
            # the latest message (stable, so untouched ties keep retrieval
            # order): a freshly discovered table the user just asked about
            # must not be crowded out by older working-memory documents.
            ranked = sorted(
                range(len(tables)),
                key=lambda i: (-score_table(message, tables[i]), i),
            ) if message else range(len(tables))
            overview = []
            for index in list(ranked)[:3]:
                schema = tables[index]
                overview.append(
                    f"{schema.table} has variables: {', '.join(schema.column_names())}"
                )
            parts.append("Here is an overview of the most relevant data I found. ")
            parts.append("; ".join(overview))
            parts.append(
                "I put a browsing view of the most relevant table into T (see the "
                "state view). Tell me which variables matter and any conditions, "
                "and I will materialize T and compute it"
            )
            return ". ".join(parts)
        if specs:
            spec = specs[-1]
            cols = ", ".join(c["name"] for c in spec.get("columns", []))
            parts.append(
                f"I designed the target table {spec['name']} with columns ({cols})"
            )
            if spec.get("notes"):
                parts.append(f"interpreting your need as: {spec['notes']}")
        if state.get("Q"):
            parts.append(f"Q is: {state['Q'][-1]}")
        if last_result is not None:
            if isinstance(last_result, dict) and "value" in last_result:
                parts.append(f"Executing Q gives the answer = {last_result['value']}")
            else:
                parts.append(f"Executing Q returned: {last_result}")
            parts.append("Does this match what you had in mind, or should I refine the scope?")
        elif not specs:
            names = ", ".join(s.table for s in tables[:4])
            parts.append(f"I found potentially relevant tables: {names}")
        else:
            parts.append(
                "Tell me which variables matter and any conditions, and I will "
                "materialize T and compute it"
            )
        return ". ".join(parts)

    @staticmethod
    def _emit(thought: str, action: Dict[str, Any]) -> str:
        return render_response({"thought": thought, "action": action})
