"""The DS-Guru policy: KramaBench's reference framework as a baseline.

"DS-Guru ... instructs an LLM to decompose a question into a sequence of
subtasks, reason through each step, and synthesize Python code [to]
implement the plan."  One-shot: it plans against the question plus the
schemas/sample rows it is handed — no value grounding through an IR
system, no iterative user feedback, no error-repair loop.  Those missing
behaviours (not hard-coded failure lists) are what cost it accuracy
relative to Pneuma-Seeker in Table 3.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from ..prompts import render_response, section_json
from ..semantics import (
    SchemaView,
    detect_aggregate,
    detect_round_digits,
    extract_years,
    plan_to_sql,
    wants_first_last,
    wants_interpolation,
)
from .planning import build_plan, plan_to_json


class DSGuruPolicy:
    """One-shot question → subtasks → pipeline + SQL."""

    role = "ds_guru"

    def respond(self, sections: Mapping[str, str]) -> str:
        question = sections.get("QUESTION", "")
        docs = section_json(sections, "SCHEMAS", []) or []
        schemas = [SchemaView.from_payload(d) for d in docs]

        subtasks = self._decompose(question)

        # One-shot plan: sample-row grounding only, single table (DS-Guru
        # synthesizes per-file pandas code; cross-file joins are where it
        # loses most KramaBench questions).
        plan = build_plan(question, schemas, known_values=None, allow_join=False)
        if plan is None:
            return render_response(
                {"subtasks": subtasks, "plan": None, "program": None, "sql": None}
            )
        # DS-Guru's toolkit has no interpolation primitive; it reasons about
        # the aggregate but materializes the raw column.
        plan.interpolate = False

        program: List[Dict[str, Any]] = [
            {"op": "load", "table": plan.table, "as": "main"},
            {"op": "result", "frame": "main", "name": f"{plan.table}_dsguru"},
        ]
        sql = plan_to_sql(plan, f"{plan.table}_dsguru")
        return render_response(
            {
                "subtasks": subtasks,
                "plan": plan_to_json(plan),
                "program": program,
                "sql": sql,
            }
        )

    @staticmethod
    def _decompose(question: str) -> List[str]:
        """The visible 'reason through each step' trace."""
        steps = ["identify the relevant file(s) for the question"]
        if detect_aggregate(question):
            steps.append(f"compute the {detect_aggregate(question)} of the target column")
        years = extract_years(question)
        if years:
            steps.append(f"restrict to year(s) {years}")
        if wants_first_last(question):
            steps.append("locate the first and last recorded observations")
        if wants_interpolation(question):
            steps.append("interpolate between samples")
        digits = detect_round_digits(question)
        if digits is not None:
            steps.append(f"round the answer to {digits} decimal places")
        steps.append("synthesize code implementing the plan")
        return steps
