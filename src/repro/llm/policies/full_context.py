"""The full-context answerer (the paper's O3 baseline in §4.2).

Receives the *entire* relevant tables serialized into the prompt and
answers directly.  Whether it ever gets the chance is decided upstream by
the context-window check in :class:`RuleLLM` — exactly the failure the
paper reports (6/12 archaeology and 17/20 environment questions exceeded
the 200k limit).  When the prompt does fit, it plans like a competent
single-shot model with full visibility of the serialized rows.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, List, Mapping

from ..prompts import render_response, section_json
from ..semantics import SchemaView, plan_to_sql
from .planning import build_plan


class FullContextPolicy:
    """Answers from fully serialized tables (when they fit in context)."""

    role = "full_context"

    def respond(self, sections: Mapping[str, str]) -> str:
        question = sections.get("QUESTION", "")
        tables_csv = section_json(sections, "TABLES", {}) or {}

        schemas: List[SchemaView] = []
        values: Dict[str, Dict[str, List[Any]]] = {}
        for name, text in tables_csv.items():
            rows = list(csv.DictReader(io.StringIO(text)))
            if not rows:
                continue
            columns = [
                {"name": col, "dtype": _infer_dtype(rows, col)} for col in rows[0]
            ]
            schemas.append(
                SchemaView.from_payload(
                    {"name": name, "columns": columns, "num_rows": len(rows), "samples": rows[:5]}
                )
            )
            values[name] = {col: [r[col] for r in rows] for col in rows[0]}

        # Full context = full value visibility, so grounding is free here.
        plan = build_plan(question, schemas, known_values=values, allow_join=True)
        if plan is None:
            return render_response({"answer_value": None, "sql": None})
        plan.interpolate = False  # direct answering, no preparation toolkit
        return render_response(
            {"answer_value": None, "sql": plan_to_sql(plan, plan.table), "plan_table": plan.table}
        )


def _infer_dtype(rows: List[Mapping[str, str]], col: str) -> str:
    saw_float = False
    for row in rows[:50]:
        value = row.get(col, "")
        if value in ("", None):
            continue
        try:
            int(value)
            continue
        except ValueError:
            pass
        try:
            float(value)
            saw_float = True
            continue
        except ValueError:
            pass
        if len(value) == 10 and value[4:5] == "-" and value[7:8] == "-":
            return "DATE"
        return "TEXT"
    return "DOUBLE" if saw_float else "INTEGER"
