"""The Materializer policy: integration pipeline generation (§3.4).

Given the target-table spec, the interpreted plan, and the retrieved
documents, emit a JSON pipeline program for the Python-interpreter tool.
When the prompt carries an ERROR section (the tool's feedback from a failed
attempt), repair the previous program instead of regenerating it blindly —
the generate → execute → error-feedback → repair loop the paper describes.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional

from ..prompts import render_response, section_json
from ..semantics import SchemaView
from .planning import plan_from_json

_STEP_RE = re.compile(r"step (\d+) \((\w+)\)")


class MaterializerPolicy:
    """Produces and repairs pipeline programs."""

    role = "materializer"

    def respond(self, sections: Mapping[str, str]) -> str:
        spec = section_json(sections, "TARGET", {}) or {}
        plan_json = section_json(sections, "PLAN", None)
        docs = section_json(sections, "DOCS", []) or []
        error = sections.get("ERROR", "")
        previous = section_json(sections, "PREVIOUS_PROGRAM", None)

        if error and previous:
            program = self._repair(previous, error)
        else:
            program = self._generate(spec, plan_json, docs)
        return render_response({"program": program})

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _generate(
        self,
        spec: Mapping[str, Any],
        plan_json: Optional[Mapping[str, Any]],
        docs: List[Mapping[str, Any]],
    ) -> List[Dict[str, Any]]:
        base_tables = spec.get("base_tables", [])
        if not base_tables:
            return [{"op": "result", "frame": "main", "name": spec.get("name", "target")}]
        schemas = {
            d["payload"]["name"]: SchemaView.from_payload(d["payload"])
            for d in docs
            if d.get("kind") == "table"
        }
        primary = base_tables[0]
        program: List[Dict[str, Any]] = [{"op": "load", "table": primary, "as": "main"}]
        integration = spec.get("integration", {})

        join = integration.get("join")
        if join:
            program.append({"op": "load", "table": join["table"], "as": "dim"})
            program.append(
                {
                    "op": "join",
                    "left": "main",
                    "right": "dim",
                    "left_on": join["left_on"],
                    "right_on": join["right_on"],
                    "how": "inner",
                    "as": "main",
                }
            )

        web_specs = integration.get("web") or []
        if isinstance(web_specs, dict):
            web_specs = [web_specs]
        for web in web_specs:
            program.append(
                {
                    "op": "add_from_records",
                    "frame": "main",
                    "records": web["records"],
                    "key": web["key"],
                    "record_key": web["record_key"],
                    "value_field": web["value_field"],
                    "new_column": web["new_column"],
                }
            )

        plan = plan_from_json(plan_json) if plan_json else None
        if plan is not None:
            # Q filters on YEAR(col) / ordering need a real DATE column; repair
            # text-typed date columns the way §3.4's example describes.
            if plan.order_column:
                schema = schemas.get(primary)
                column = schema.column(plan.order_column) if schema else None
                if column is not None and column.is_text:
                    program.append(
                        {"op": "parse_dates", "frame": "main", "column": plan.order_column}
                    )
            for f in plan.filters:
                if f.op == "=" and isinstance(f.value, str):
                    program.append(
                        {
                            "op": "filter_equals",
                            "frame": "main",
                            "column": f.column,
                            "value": f.value,
                        }
                    )
            interp = integration.get("interpolate")
            if plan.interpolate and interp and interp.get("order_by"):
                program.append(
                    {
                        "op": "interpolate",
                        "frame": "main",
                        "column": interp["column"],
                        "order_by": interp["order_by"],
                    }
                )

        wanted = [c["name"] for c in spec.get("columns", [])]
        if wanted:
            program.append({"op": "select", "frame": "main", "columns": wanted})
        program.append({"op": "result", "frame": "main", "name": spec["name"]})
        return program

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _repair(
        self, previous: List[Dict[str, Any]], error: str
    ) -> List[Dict[str, Any]]:
        """Drop or relax the failing op based on the tool's error message."""
        match = _STEP_RE.search(error)
        program = [dict(op) for op in previous]
        if match:
            step = int(match.group(1))
            if 0 <= step < len(program):
                op = program[step]["op"]
                if op in ("select", "parse_dates", "filter_equals", "interpolate", "sort"):
                    # Optional refinements: drop the failing one.
                    del program[step]
                    return program
                if op == "join":
                    # Integration failed: fall back to the single base table.
                    return [p for p in program if p["op"] not in ("join",) and p.get("as") != "dim"]
        # Unrecognized failure: retry with the minimal load→result skeleton.
        loads = [p for p in program if p["op"] == "load"][:1]
        results = [p for p in program if p["op"] == "result"]
        return loads + results if loads and results else program
