"""Question → QueryPlan construction shared by the Conductor and DS-Guru
policies.

The two callers differ in *grounding*: the Conductor plans against full
distinct column values fetched through the IR System (the paper's §3.2
grounding behaviour), while DS-Guru plans one-shot against sample rows
only.  That difference — not special-casing — is what separates their
accuracies in Table 3.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..semantics import (
    FilterSpec,
    QueryPlan,
    SchemaView,
    best_measure_column,
    candidate_join_keys,
    content_tokens,
    detect_aggregate,
    detect_round_digits,
    ground_filters,
    name_match_score,
    score_table,
    wants_first_last,
    wants_interpolation,
)

KnownValues = Mapping[str, Mapping[str, Sequence[Any]]]  # table -> column -> values


def choose_primary_table(question: str, schemas: Sequence[SchemaView]) -> Optional[SchemaView]:
    """The table a question is most plausibly about (measure-aware)."""
    q_tokens = content_tokens(question)
    best: Optional[Tuple[float, SchemaView]] = None
    for schema in schemas:
        score = score_table(question, schema)
        measure = best_measure_column(question, schema)
        if measure is not None:
            score += 2.0 * name_match_score(q_tokens, measure.name)
        if best is None or score > best[0]:
            best = (score, schema)
    return best[1] if best else None


def build_plan(
    question: str,
    schemas: Sequence[SchemaView],
    known_values: Optional[KnownValues] = None,
    allow_join: bool = True,
) -> Optional[QueryPlan]:
    """Interpret a question over concrete schemas; None when no aggregate."""
    aggregate = detect_aggregate(question)
    if aggregate is None or not schemas:
        return None
    primary = choose_primary_table(question, schemas)
    if primary is None:
        return None

    measure = best_measure_column(question, primary)
    if measure is None and aggregate != "count":
        # Maybe the measure lives in another retrieved table; re-anchor.
        for schema in schemas:
            candidate = best_measure_column(question, schema)
            if candidate is not None:
                primary, measure = schema, candidate
                break
    if measure is None and aggregate != "count":
        return None

    second_measure = None
    if aggregate == "corr":
        q_tokens = content_tokens(question)
        scored = sorted(
            (
                (name_match_score(q_tokens, c.name), c.name)
                for c in primary.numeric_columns()
            ),
            reverse=True,
        )
        numeric_hits = [name for s, name in scored if s > 0.05]
        if len(numeric_hits) >= 2:
            measure_name, second_measure = numeric_hits[0], numeric_hits[1]
        else:
            return None
    else:
        measure_name = measure.name if measure else None

    primary_values = (known_values or {}).get(primary.table)
    filters = ground_filters(
        question,
        primary,
        known_values=primary_values,
        exclude_columns=[measure_name] if measure_name else [],
    )

    join: Optional[Dict[str, Any]] = None
    has_value_filter = any(f.op == "=" for f in filters)
    if allow_join and not has_value_filter:
        for other in schemas:
            if other.table == primary.table:
                continue
            other_filters = ground_filters(
                question,
                other,
                known_values=(known_values or {}).get(other.table),
            )
            value_filters = [f for f in other_filters if f.op == "="]
            if not value_filters:
                continue
            keys = candidate_join_keys(primary, other)
            if not keys:
                continue
            left_on, right_on = keys[0]
            join = {"table": other.table, "left_on": left_on, "right_on": right_on}
            filters.extend(value_filters)
            break

    order_column = None
    first_last = wants_first_last(question)
    interpolate = wants_interpolation(question)
    if first_last or interpolate:
        date_cols = primary.date_columns()
        if date_cols:
            order_column = date_cols[0].name
        else:
            # Fall back to a numeric time-like column (year, time, step).
            for col in primary.numeric_columns():
                if any(tok in col.name.lower() for tok in ("year", "time", "date", "step")):
                    order_column = col.name
                    break
        if order_column is None:
            first_last = False
            interpolate = False

    return QueryPlan(
        table=primary.table,
        aggregate=aggregate,
        measure=measure_name,
        filters=filters,
        order_column=order_column,
        interpolate=interpolate,
        first_last=first_last,
        round_digits=detect_round_digits(question),
        join=join,
        second_measure=second_measure,
    )


def plan_to_json(plan: QueryPlan) -> Dict[str, Any]:
    return {
        "table": plan.table,
        "aggregate": plan.aggregate,
        "measure": plan.measure,
        "filters": [
            {"column": f.column, "value": f.value, "op": f.op} for f in plan.filters
        ],
        "group_by": plan.group_by,
        "order_column": plan.order_column,
        "interpolate": plan.interpolate,
        "first_last": plan.first_last,
        "round_digits": plan.round_digits,
        "join": plan.join,
        "second_measure": plan.second_measure,
        "measure_expr": plan.measure_expr,
    }


def plan_from_json(data: Mapping[str, Any]) -> QueryPlan:
    return QueryPlan(
        table=data["table"],
        aggregate=data["aggregate"],
        measure=data.get("measure"),
        filters=[
            FilterSpec(f["column"], f["value"], f.get("op", "="))
            for f in data.get("filters", [])
        ],
        group_by=data.get("group_by"),
        order_column=data.get("order_column"),
        interpolate=bool(data.get("interpolate")),
        first_last=bool(data.get("first_last")),
        round_digits=data.get("round_digits"),
        join=data.get("join"),
        second_measure=data.get("second_measure"),
        measure_expr=data.get("measure_expr"),
    )
