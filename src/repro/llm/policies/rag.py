"""The RAG-answerer policy (the LlamaIndex-like baseline's LLM).

Interprets the retrieved context for the user: names the relevant tables,
their variables, and sample values.  It does *not* execute anything — the
paper's explanation for LlamaIndex's 0% accuracy is that "the questions
require actual computation ..., not just interpretation of the top-k
context", and this policy reproduces that boundary honestly.
"""

from __future__ import annotations

from typing import List, Mapping

from ..prompts import render_response, section_json
from ..semantics import SchemaView, detect_aggregate, wants_first_last, wants_interpolation


class RAGPolicy:
    """Summarizes retrieved context; never computes."""

    role = "rag"

    def respond(self, sections: Mapping[str, str]) -> str:
        question = sections.get("QUESTION", "")
        docs = section_json(sections, "CONTEXT", []) or []
        parts: List[str] = []
        tables = [d for d in docs if d.get("kind") == "table"]
        others = [d for d in docs if d.get("kind") != "table"]
        if not docs:
            parts.append("The retrieved context contains nothing relevant to your question.")
        for doc in tables:
            schema = SchemaView.from_payload(doc["payload"])
            cols = ", ".join(schema.column_names())
            parts.append(
                f"The table {schema.table} is relevant; it has variables: {cols}."
            )
            if schema.samples:
                sample = schema.samples[0]
                rendered = ", ".join(f"{k}={v}" for k, v in list(sample.items())[:6])
                parts.append(f"For example, one record shows {rendered}.")
        for doc in others:
            parts.append(f"Additional context ({doc.get('kind')}): {doc.get('text', '')[:200]}")
        # Interpret preparation needs in the user's own terms (LlamaIndex
        # explains; it just cannot execute).
        if wants_interpolation(question):
            parts.append(
                "Note that your analysis assumes values linearly interpolated "
                "between samples."
            )
        if wants_first_last(question):
            parts.append(
                "You would compare the first and last recorded observations."
            )
        if detect_aggregate(question) and tables:
            parts.append(
                "Computing that value would require aggregating the underlying rows; "
                "based on the retrieved snippets I can describe the relevant variables "
                "but the context alone does not contain the aggregate."
            )
        return render_response({"answer": " ".join(parts)})
