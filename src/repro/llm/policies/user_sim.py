"""The LLM-Sim policy: a simulated domain expert (§4, Figure 3).

The sim holds a *latent* information need (the benchmark question) and a
set of concepts that constitute it.  It starts broad, reveals concepts
gradually — operations like "linearly interpolated" only after the system
has surfaced the relevant measure (the paper's "the user ... expresses this
explicitly after seeing an intermediate output") — and declares convergence
only when its articulated need is fully addressed by the system's output.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Set

from ...text.tokenize import tokenize
from ..prompts import render_response, section_json


def _mentioned(token_phrase: str, text_tokens: Set[str]) -> bool:
    """All stemmed words of the concept phrase appear in the text."""
    words = tokenize(token_phrase)
    return bool(words) and all(w in text_tokens for w in words)


class UserSimPolicy:
    """Generates the simulated user's next message."""

    role = "user_sim"

    def respond(self, sections: Mapping[str, str]) -> str:
        goal = sections.get("GOAL", "")
        system_kind = sections.get("SYSTEM_KIND", "interactive")
        concepts = section_json(sections, "CONCEPTS", []) or []
        conversation = section_json(sections, "CONVERSATION", []) or []
        topic = sections.get("TOPIC", "the available data")

        system_text = " ".join(
            turn["text"] for turn in conversation if turn.get("speaker") == "system"
        )
        own_text = " ".join(
            turn["text"] for turn in conversation if turn.get("speaker") == "you"
        )
        latest_system = next(
            (t["text"] for t in reversed(conversation) if t.get("speaker") == "system"),
            "",
        )
        system_tokens = set(tokenize(system_text))
        latest_tokens = set(tokenize(latest_system))
        own_tokens = set(tokenize(own_text))

        surfaced = [c for c in concepts if _mentioned(c["token"], system_tokens)]
        articulated = [c for c in concepts if _mentioned(c["token"], own_tokens)]
        articulated_ids = {c["token"] for c in articulated}
        surfaced_ids = {c["token"] for c in surfaced}

        # Opening message: broad, naming only seed knowledge (Figure 3's
        # initial_broad_prompt).
        if not conversation:
            seeds = [c["token"] for c in concepts if c.get("kind") == "seed"]
            hint = f" around {', '.join(seeds[:2])}" if seeds else ""
            message = (
                f"I'm curious to dive into {topic}{hint}. Could you give me an "
                "overview of the different variables we have?"
            )
            return render_response({"message": message, "converged": False})

        measure_surfaced = any(
            c.get("kind") == "column" and c["token"] in surfaced_ids for c in concepts
        )

        # Which unarticulated concepts is the sim ready to voice?
        ready: List[Dict[str, Any]] = []
        for concept in concepts:
            token = concept["token"]
            kind = concept.get("kind", "column")
            if token in articulated_ids:
                continue
            if kind in ("seed", "value"):
                ready.append(concept)
            elif kind == "column" and token in surfaced_ids:
                ready.append(concept)
            elif kind == "operation" and measure_surfaced:
                ready.append(concept)

        all_articulated = len(articulated_ids) == len(concepts)
        own_messages = [
            t["text"] for t in conversation if t.get("speaker") == "you"
        ]

        if all_articulated:
            addressed = self._addressed(
                concepts, latest_tokens, latest_system, system_kind, goal
            )
            if addressed:
                return render_response(
                    {
                        "message": "That matches exactly what I needed, thank you.",
                        "converged": True,
                    }
                )
            if goal not in own_messages:
                # Everything said; push the full, specific question.
                return render_response({"message": goal, "converged": False})
            # The system answered but missed part of the need: give
            # corrective feedback naming what is missing (the iterative
            # refinement loop of §2.3).
            uncovered_tokens = [
                c["token"] for c in concepts if not _mentioned(c["token"], latest_tokens)
            ]
            if uncovered_tokens:
                message = (
                    "That is not quite it - please make sure the analysis also "
                    f"accounts for {', '.join(uncovered_tokens[:2])}."
                )
            else:
                message = goal
            return render_response({"message": message, "converged": False})

        if ready:
            message = self._articulate(ready[:2])
            return render_response({"message": message, "converged": False})

        # Nothing surfaced anything new.  Probe generically at first (the
        # "keeps trying to adjust its queries" behaviour the paper observes
        # against static systems), then fall back on domain knowledge and
        # name the measurements the expert cares about.
        probes = [
            "Could you show me more of what these records contain?",
            "Is there anything else related to my question in the data?",
            "Can you give more detail on the variables you just mentioned?",
        ]
        generic_sent = sum(1 for m in own_messages if m in probes)
        if generic_sent < 2:
            message = probes[generic_sent]
        else:
            unknown = [
                c
                for c in concepts
                if c["token"] not in articulated_ids
                and c.get("kind") in ("column", "operation")
            ]
            if unknown:
                message = f"Do we have any data on {unknown[0]['token']}?"
            else:
                message = probes[len(own_messages) % len(probes)]
        return render_response({"message": message, "converged": False})

    # ------------------------------------------------------------------
    @staticmethod
    def _articulate(concepts: Sequence[Mapping[str, Any]]) -> str:
        parts: List[str] = []
        for concept in concepts:
            kind = concept.get("kind", "column")
            token = concept["token"]
            if kind == "value":
                parts.append(f"I only care about {token}")
            elif kind == "operation":
                parts.append(f"please assume {token}")
            else:
                parts.append(f"let's focus on {token}")
        return "; ".join(parts) + "."

    @staticmethod
    def _addressed(
        concepts: Sequence[Mapping[str, Any]],
        latest_tokens: Set[str],
        latest_system: str,
        system_kind: str,
        goal: str = "",
    ) -> bool:
        """Does the latest system output satisfy the articulated need?"""
        covered = all(_mentioned(c["token"], latest_tokens) for c in concepts)
        if system_kind == "seeker":
            # A seeker-style system must both cover the concepts and show an
            # executed, interpreted result.
            has_result = "answer" in latest_system.lower() or "= " in latest_system
            return covered and has_result
        if system_kind == "rag":
            # A RAG system addresses the need by *interpreting* the context:
            # coverage of every concept in its own words suffices.
            return covered
        # A static system returns raw tables the sim must interpret itself
        # (§4.1).  Sample rows can surface variables, but they cannot carry
        # an aggregate computation or a preparation step — so a domain
        # expert's computational need is never met by them, and the sim
        # keeps adjusting its queries instead.
        if any(c.get("kind") == "operation" for c in concepts):
            return False
        from ..semantics import detect_aggregate

        goal_needs_compute = detect_aggregate(goal) is not None
        return covered and not goal_needs_compute
