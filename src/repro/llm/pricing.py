"""Model price points used in the paper's Table 2.

Prices are USD per 1M tokens.  The O4-mini rates ($1.1 in / $4.4 out) are
stated in the paper's §4.1; the others are the public list prices the
paper's Table 2 costs imply (see EXPERIMENTS.md for the derivation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .tokens import Usage


@dataclass(frozen=True)
class ModelPrice:
    name: str
    input_per_million: float
    output_per_million: float

    def cost(self, usage: Usage) -> "CostBreakdown":
        return CostBreakdown(
            model=self.name,
            input_cost=usage.prompt_tokens * self.input_per_million / 1_000_000,
            output_cost=usage.completion_tokens * self.output_per_million / 1_000_000,
        )


@dataclass(frozen=True)
class CostBreakdown:
    model: str
    input_cost: float
    output_cost: float

    @property
    def total(self) -> float:
        return self.input_cost + self.output_cost


#: The six price points of Table 2, in the paper's column order.
MODEL_PRICES: Dict[str, ModelPrice] = {
    "Haiku 4.5": ModelPrice("Haiku 4.5", 1.00, 5.00),
    "O4-mini": ModelPrice("O4-mini", 1.10, 4.40),
    "O3": ModelPrice("O3", 2.00, 8.00),
    "gpt-5.1": ModelPrice("gpt-5.1", 1.25, 10.00),
    "Sonnet 4.5": ModelPrice("Sonnet 4.5", 3.00, 15.00),
    "Opus 4.5": ModelPrice("Opus 4.5", 5.00, 25.00),
}

TABLE2_MODEL_ORDER: List[str] = list(MODEL_PRICES)


def price_for(model: str) -> ModelPrice:
    try:
        return MODEL_PRICES[model]
    except KeyError:
        raise KeyError(
            f"unknown model {model!r}; known: {TABLE2_MODEL_ORDER}"
        ) from None
