"""The structured prompt protocol between components and the LLM.

Every component talks to the language model through *rendered prompt
strings* and parses *text responses* — the same boundary a hosted LLM
would sit behind.  Prompts are section-structured::

    ## ROLE
    conductor
    ## USER_MESSAGE
    What impact will tariffs have on our organization?
    ## STATE
    {...json...}

``render_prompt``/``parse_prompt`` define that format; JSON payloads ride
inside sections.  The offline :class:`~repro.llm.rule_llm.RuleLLM` parses
the sections back out; a hosted model would read the same text.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

SECTION_MARKER = "## "


class PromptFormatError(ValueError):
    """Raised when a prompt or response does not follow the protocol."""


def render_prompt(role: str, sections: Mapping[str, Any]) -> str:
    """Render a role plus named sections into the prompt wire format.

    Non-string section values are serialized as JSON (sorted keys, so the
    rendering — and therefore token accounting — is deterministic).
    """
    if not role or "\n" in role:
        raise PromptFormatError(f"invalid role: {role!r}")
    lines = [f"{SECTION_MARKER}ROLE", role]
    for name, value in sections.items():
        upper = name.upper()
        if upper == "ROLE":
            raise PromptFormatError("section name ROLE is reserved")
        body = value if isinstance(value, str) else json.dumps(value, sort_keys=True, default=str)
        lines.append(f"{SECTION_MARKER}{upper}")
        lines.append(body)
    return "\n".join(lines)


def parse_prompt(prompt: str) -> Tuple[str, Dict[str, str]]:
    """Parse a prompt back into (role, sections)."""
    sections: Dict[str, str] = {}
    current: Optional[str] = None
    buffer: list = []
    for line in prompt.split("\n"):
        if line.startswith(SECTION_MARKER):
            if current is not None:
                sections[current] = "\n".join(buffer).strip()
            current = line[len(SECTION_MARKER) :].strip().upper()
            buffer = []
        else:
            buffer.append(line)
    if current is not None:
        sections[current] = "\n".join(buffer).strip()
    role = sections.pop("ROLE", "")
    if not role:
        raise PromptFormatError("prompt has no ROLE section")
    return role, sections


def section_json(sections: Mapping[str, str], name: str, default: Any = None) -> Any:
    """Parse a JSON-bearing section; returns ``default`` when absent."""
    body = sections.get(name.upper())
    if body is None or body == "":
        return default
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise PromptFormatError(f"section {name} is not valid JSON: {exc}") from exc


def render_response(payload: Any) -> str:
    """Serialize a structured LLM response (JSON text on the wire)."""
    return json.dumps(payload, sort_keys=True, default=str)


def parse_response(text: str) -> Any:
    """Parse a structured LLM response; raises on malformed output."""
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise PromptFormatError(f"LLM response is not valid JSON: {exc}") from exc
