"""The offline, deterministic language model.

:class:`RuleLLM` sits behind the same boundary a hosted LLM would: callers
render prompt *strings* (:mod:`repro.llm.prompts`) and parse text responses.
Internally a registry of role-specific :class:`Policy` objects produces the
responses — the reproduction's substitute for O4-mini/GPT-4o (DESIGN.md §2).
Every call is metered (tokens, virtual latency) and checked against the
context window, so Table 2 and the §4.2 context-overflow behaviour are
reproduced mechanically.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Protocol

from .clock import LLM_CALL_SECONDS, VirtualClock
from .interface import ModelLimits
from .prompts import parse_prompt
from .tokens import UsageLedger, count_tokens


class Policy(Protocol):
    """A role-specific response generator (the model's 'capability')."""

    role: str

    def respond(self, sections: Mapping[str, str]) -> str: ...


class RuleLLM:
    """Deterministic multi-role language model with usage metering."""

    def __init__(
        self,
        model_name: str = "O4-mini",
        limits: Optional[ModelLimits] = None,
        ledger: Optional[UsageLedger] = None,
        clock: Optional[VirtualClock] = None,
        seconds_per_call: float = LLM_CALL_SECONDS,
    ):
        self._model_name = model_name
        self.limits = limits or ModelLimits()
        self.ledger = ledger or UsageLedger()
        self.clock = clock or VirtualClock()
        self.seconds_per_call = seconds_per_call
        self._policies: Dict[str, Policy] = {}

    @property
    def model_name(self) -> str:
        return self._model_name

    def register(self, policy: Policy) -> None:
        self._policies[policy.role] = policy

    def roles(self) -> list:
        return sorted(self._policies)

    def complete(self, prompt: str, component: str = "") -> str:
        """One LLM call: context check, policy dispatch, metering."""
        prompt_tokens = self.limits.check(prompt)  # may raise ContextLengthExceeded
        role, sections = parse_prompt(prompt)
        policy = self._policies.get(role)
        if policy is None:
            raise KeyError(f"no policy registered for role {role!r}; known: {self.roles()}")
        response = policy.respond(sections)
        self.ledger.record(component or role, prompt_tokens, count_tokens(response))
        self.clock.tick(self.seconds_per_call)
        return response
