"""Natural-language understanding utilities shared by the LLM policies.

This module is the "intelligence" of the offline :class:`RuleLLM`: it maps
question text onto schemas — detecting the aggregate, the measure column,
filters grounded in sample values, grouping, interpolation, and join needs —
and synthesizes SQL / pipeline plans from the result.  Both the Conductor
policy and the DS-Guru baseline policy build on it (they differ in *how*
they use it: grounded-and-iterative versus one-shot).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..text.embedding import CachedEmbedder, cosine_similarity
from ..text.tokenize import tokenize

# Memoized: policies re-score the same table/column names on every
# Conductor step, and under the serving layer's GIL-bound fan-out that
# redundant feature hashing is the hottest CPU path of a turn.
_EMBEDDER = CachedEmbedder(dim=192)


# ----------------------------------------------------------------------
# Schema views (parsed from document JSON payloads)
# ----------------------------------------------------------------------


@dataclass
class ColumnView:
    name: str
    dtype: str  # 'INTEGER' | 'DOUBLE' | 'TEXT' | 'DATE' | 'BOOLEAN' | 'NULL'

    @property
    def is_numeric(self) -> bool:
        return self.dtype in ("INTEGER", "DOUBLE")

    @property
    def is_text(self) -> bool:
        return self.dtype == "TEXT"

    @property
    def is_date(self) -> bool:
        return self.dtype == "DATE"


@dataclass
class SchemaView:
    """What a policy knows about one table: schema plus sample rows."""

    table: str
    columns: List[ColumnView]
    num_rows: int = 0
    samples: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SchemaView":
        columns = [ColumnView(c["name"], c.get("dtype", "TEXT")) for c in payload["columns"]]
        return cls(
            table=payload["name"],
            columns=columns,
            num_rows=int(payload.get("num_rows", 0)),
            samples=list(payload.get("samples", [])),
        )

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Optional[ColumnView]:
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        return None

    def numeric_columns(self) -> List[ColumnView]:
        return [c for c in self.columns if c.is_numeric]

    def text_columns(self) -> List[ColumnView]:
        return [c for c in self.columns if c.is_text]

    def date_columns(self) -> List[ColumnView]:
        return [c for c in self.columns if c.is_date]


# ----------------------------------------------------------------------
# Intent detection
# ----------------------------------------------------------------------

_AGGREGATE_CUES: List[Tuple[str, Sequence[str]]] = [
    ("avg", ("average", "mean", "typical")),
    ("sum", ("total", "sum", "combined", "overall amount")),
    ("count", ("how many", "count", "number of")),
    ("max", ("maximum", "highest", "largest", "most", "peak", "max")),
    ("min", ("minimum", "lowest", "smallest", "least", "min")),
    ("median", ("median", "middle")),
    ("stddev", ("standard deviation", "stddev", "variability")),
    ("corr", ("correlation", "correlated", "relationship between")),
]

_ROUND_RE = re.compile(r"round(?:ed)?[^0-9]{0,40}?(\d+)\s+decimal", re.IGNORECASE)


def detect_aggregate(text: str) -> Optional[str]:
    """Which aggregate the question asks for (earliest whole-word cue wins)."""
    lowered = text.lower()
    best: Optional[Tuple[int, str]] = None
    for agg, cues in _AGGREGATE_CUES:
        for cue in cues:
            # Whole-word matching: "sum" must not fire inside "assume".
            match = re.search(rf"\b{re.escape(cue)}\b", lowered)
            if match and (best is None or match.start() < best[0]):
                best = (match.start(), agg)
    return best[1] if best else None


def detect_round_digits(text: str) -> Optional[int]:
    """'Round your answer to 4 decimal places.' -> 4."""
    match = _ROUND_RE.search(text)
    return int(match.group(1)) if match else None


def wants_interpolation(text: str) -> bool:
    return "interpolat" in text.lower()


def wants_first_last(text: str) -> bool:
    lowered = text.lower()
    return ("first" in lowered and "last" in lowered) or "earliest and latest" in lowered


def wants_ratio(text: str) -> bool:
    lowered = text.lower()
    return "ratio" in lowered or "compared to" in lowered or " versus " in lowered


def detect_group_by(text: str) -> bool:
    lowered = text.lower()
    return bool(re.search(r"\b(per|by|for each|grouped by)\b", lowered))


_YEAR_RE = re.compile(r"\b(19[5-9]\d|20[0-4]\d)\b")


def extract_years(text: str) -> List[int]:
    return [int(y) for y in _YEAR_RE.findall(text)]


def content_tokens(text: str) -> List[str]:
    """Stemmed content tokens of the question."""
    return tokenize(text)


# ----------------------------------------------------------------------
# Column and table matching
# ----------------------------------------------------------------------


def name_match_score(question_tokens: Sequence[str], column_name: str) -> float:
    """Lexical + embedding score of a column name against question tokens."""
    col_tokens = set(tokenize(column_name))
    if not col_tokens:
        return 0.0
    q_tokens = set(question_tokens)
    overlap = len(col_tokens & q_tokens) / len(col_tokens)
    emb = cosine_similarity(
        _EMBEDDER.embed(column_name), _EMBEDDER.embed(" ".join(question_tokens))
    )
    return 0.8 * overlap + 0.2 * max(emb, 0.0)


def is_id_like(name: str) -> bool:
    """Identifier columns are join keys, never measures."""
    lowered = name.lower()
    return lowered == "id" or lowered.endswith("_id")


def best_measure_column(question: str, schema: SchemaView) -> Optional[ColumnView]:
    """The numeric column the question most plausibly asks about."""
    q_tokens = content_tokens(question)
    best: Optional[Tuple[float, ColumnView]] = None
    for col in schema.numeric_columns():
        if is_id_like(col.name):
            continue
        score = name_match_score(q_tokens, col.name)
        if score <= 0.05:
            continue
        if best is None or score > best[0]:
            best = (score, col)
    return best[1] if best else None


def score_table(question: str, schema: SchemaView) -> float:
    """How relevant a table looks for a question (name + columns)."""
    q_tokens = content_tokens(question)
    scores = [name_match_score(q_tokens, schema.table)]
    scores += [name_match_score(q_tokens, c.name) for c in schema.columns]
    scores.sort(reverse=True)
    return sum(scores[:4])


# ----------------------------------------------------------------------
# Filter grounding
# ----------------------------------------------------------------------


@dataclass
class FilterSpec:
    column: str
    value: Any
    op: str = "="  # '=' | 'contains' | 'year'

    def to_sql(self, qualifier: str = "") -> str:
        prefix = f"{qualifier}." if qualifier else ""
        if self.op == "contains":
            escaped = str(self.value).replace("'", "''")
            return f"LOWER({prefix}{self.column}) LIKE '%{escaped.lower()}%'"
        if self.op == "year":
            return f"YEAR({prefix}{self.column}) = {int(self.value)}"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"{prefix}{self.column} = '{escaped}'"
        return f"{prefix}{self.column} = {self.value}"


def _value_tokens(value: Any) -> Set[str]:
    return set(tokenize(str(value)))


def ground_filters(
    question: str,
    schema: SchemaView,
    known_values: Optional[Mapping[str, Sequence[Any]]] = None,
    exclude_columns: Sequence[str] = (),
) -> List[FilterSpec]:
    """Find filters by matching question tokens against column values.

    ``known_values`` maps column name to the values visible to the policy:
    for a grounded (Seeker) plan these are full distinct column values from
    the IR system; for a one-shot (DS-Guru) plan they are only the sample
    rows — which is precisely why ungrounded plans miss filters whose value
    spelling does not appear in the first few rows.
    """
    q_tokens = set(content_tokens(question))
    excluded = {c.lower() for c in exclude_columns}
    filters: List[FilterSpec] = []
    for col in schema.text_columns():
        if col.name.lower() in excluded:
            continue
        pool: Sequence[Any]
        if known_values and col.name in known_values:
            pool = known_values[col.name]
        else:
            pool = [row.get(col.name) for row in schema.samples]
        best: Optional[Tuple[float, Any]] = None
        seen: Set[str] = set()
        for value in pool:
            if value is None:
                continue
            key = str(value)
            if key in seen:
                continue
            seen.add(key)
            v_tokens = _value_tokens(value)
            if not v_tokens:
                continue
            # Only a *full* mention counts: every content token of the value
            # must appear in the question.  Partial overlaps ("collection"
            # matching 'Regional Collection') produce spurious filters.
            if not v_tokens <= q_tokens:
                continue
            score = 1.0 + len(v_tokens)
            if best is None or score > best[0]:
                best = (score, value)
        if best is not None:
            filters.append(FilterSpec(col.name, best[1], "="))
    # Year filters on date columns.
    years = extract_years(question)
    if years and schema.date_columns():
        date_col = schema.date_columns()[0]
        for year in years[:1]:
            filters.append(FilterSpec(date_col.name, year, "year"))
    return filters


# ----------------------------------------------------------------------
# Join inference
# ----------------------------------------------------------------------


def candidate_join_keys(left: SchemaView, right: SchemaView) -> List[Tuple[str, str]]:
    """Column pairs that plausibly join two tables.

    Exact name matches first; then id-suffix matches (``site`` vs
    ``site_id``); sample-value overlap is used as a tie-breaker signal.
    """
    pairs: List[Tuple[float, Tuple[str, str]]] = []
    for lcol in left.columns:
        for rcol in right.columns:
            lname, rname = lcol.name.lower(), rcol.name.lower()
            score = 0.0
            if lname == rname:
                score = 2.0
            else:
                lbase = lname[:-3] if lname.endswith("_id") else lname
                rbase = rname[:-3] if rname.endswith("_id") else rname
                if lbase == rbase:
                    score = 1.5
            if score == 0.0:
                continue
            # Key-like names make better join columns than attribute names
            # (site_id over region when both match exactly); this has to
            # outweigh the sample-overlap bonus, which is noisy on the few
            # sample rows a policy sees.
            if lname.endswith("_id") or lname == "id":
                score += 0.6
            lvals = {str(row.get(lcol.name)) for row in left.samples} - {"None"}
            rvals = {str(row.get(rcol.name)) for row in right.samples} - {"None"}
            if lvals and rvals and lvals & rvals:
                score += 0.5
            pairs.append((score, (lcol.name, rcol.name)))
    pairs.sort(key=lambda p: (-p[0], p[1]))
    return [pair for _, pair in pairs]


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


@dataclass
class QueryPlan:
    """A structured interpretation of a question over concrete schemas."""

    table: str
    aggregate: str
    measure: Optional[str]
    filters: List[FilterSpec] = field(default_factory=list)
    group_by: Optional[str] = None
    order_column: Optional[str] = None  # date/order column for first-last
    interpolate: bool = False
    first_last: bool = False
    round_digits: Optional[int] = None
    join: Optional[Dict[str, Any]] = None  # {"table","left_on","right_on"}
    second_measure: Optional[str] = None  # for corr
    measure_expr: Optional[str] = None  # derived measure (e.g. tariff impact)

    def describe(self) -> str:
        parts = [f"{self.aggregate.upper()}({self.measure or '*'}) over {self.table}"]
        if self.join:
            parts.append(f"joined with {self.join['table']}")
        if self.filters:
            rendered = ", ".join(f"{f.column}~{f.value}" for f in self.filters)
            parts.append(f"filtered by {rendered}")
        if self.interpolate:
            parts.append("with linear interpolation")
        if self.first_last:
            parts.append("at the first and last recorded time")
        return "; ".join(parts)


_AGG_SQL = {
    "avg": "AVG",
    "sum": "SUM",
    "count": "COUNT",
    "max": "MAX",
    "min": "MIN",
    "median": "MEDIAN",
    "stddev": "STDDEV",
    "corr": "CORR",
}


def plan_to_sql(plan: QueryPlan, table_name: Optional[str] = None) -> str:
    """Render a plan as SQL over the (materialized) target table."""
    table = table_name or plan.table
    agg = _AGG_SQL[plan.aggregate]
    if plan.aggregate == "count":
        expr = "COUNT(*)"
    elif plan.aggregate == "corr" and plan.second_measure:
        expr = f"CORR({plan.measure}, {plan.second_measure})"
    elif plan.measure_expr:
        expr = f"{agg}({plan.measure_expr})"
    else:
        expr = f"{agg}({plan.measure})"
    if plan.round_digits is not None and plan.aggregate != "count":
        expr = f"ROUND({expr}, {plan.round_digits})"
    sql = f"SELECT {expr} AS answer FROM {table}"
    clauses = [f.to_sql() for f in plan.filters]
    if plan.first_last and plan.order_column:
        clauses.append(
            f"({plan.order_column} = (SELECT MIN({plan.order_column}) FROM {table})"
            f" OR {plan.order_column} = (SELECT MAX({plan.order_column}) FROM {table}))"
        )
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    if plan.group_by:
        sql = (
            f"SELECT {plan.group_by}, {expr} AS answer FROM {table}"
            + (" WHERE " + " AND ".join(clauses) if clauses else "")
            + f" GROUP BY {plan.group_by} ORDER BY {plan.group_by}"
        )
    return sql
