"""Token counting and usage accounting.

The paper's Table 2 reports average input/output tokens per interaction and
the implied cost across model price points.  We meter every prompt and
response that crosses the LLM boundary with a deterministic tokenizer
approximation (≈ GPT-style BPE: max(words·4/3, chars/4))."""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

_PIECE_RE = re.compile(r"[A-Za-z]+|\d{1,4}|[^\w\s]")
_LONG_WORD_RE = re.compile(r"[A-Za-z]{7,}")


def count_tokens(text: str) -> int:
    """Approximate LLM token count of ``text``.

    BPE-style approximation: alphabetic runs, digit groups (up to four
    digits per token), and punctuation marks each count as one piece, and
    long words contribute extra subword pieces (~one per four characters).
    This tracks real tokenizers on both prose and serialized tables — CSV
    rows in particular, where every comma and number costs tokens even
    though the row contains no whitespace.
    """
    if not text:
        return 0
    pieces = len(_PIECE_RE.findall(text))
    extra = sum((len(word) - 1) // 4 for word in _LONG_WORD_RE.findall(text))
    return max(pieces + extra, 1)


@dataclass(frozen=True)
class UsageEvent:
    """One metered LLM call."""

    component: str  # e.g. 'conductor', 'materializer', 'user_sim'
    prompt_tokens: int
    completion_tokens: int


@dataclass
class Usage:
    """Aggregated token totals."""

    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def add(self, prompt: int, completion: int) -> None:
        self.prompt_tokens += prompt
        self.completion_tokens += completion


class UsageLedger:
    """Records every LLM call so experiments can report per-component costs."""

    def __init__(self) -> None:
        self.events: List[UsageEvent] = []

    def record(self, component: str, prompt_tokens: int, completion_tokens: int) -> None:
        if prompt_tokens < 0 or completion_tokens < 0:
            raise ValueError("token counts must be non-negative")
        self.events.append(UsageEvent(component, prompt_tokens, completion_tokens))

    def total(self) -> Usage:
        usage = Usage()
        for event in self.events:
            usage.add(event.prompt_tokens, event.completion_tokens)
        return usage

    def by_component(self) -> Dict[str, Usage]:
        out: Dict[str, Usage] = defaultdict(Usage)
        for event in self.events:
            out[event.component].add(event.prompt_tokens, event.completion_tokens)
        return dict(out)

    def num_calls(self, component: Optional[str] = None) -> int:
        if component is None:
            return len(self.events)
        return sum(1 for e in self.events if e.component == component)

    def reset(self) -> None:
        self.events.clear()
