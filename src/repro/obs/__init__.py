"""End-to-end observability: metrics registry, tracer, slow-turn capture.

Stdlib-only leaf package — every other subsystem (service, relational,
retriever, storage, core) may import it without cycles.
"""

from .config import ObservabilityConfig
from .export import registry_to_json, render_prometheus, render_span_tree
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    percentile,
    percentile_sorted,
)
from .slowlog import SlowTurnLog
from .trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    active_span,
    active_tracer,
    event,
    set_attr,
    span,
)

__all__ = [
    "ObservabilityConfig",
    "MetricsRegistry",
    "MetricFamily",
    "DEFAULT_LATENCY_BUCKETS",
    "percentile",
    "percentile_sorted",
    "SlowTurnLog",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "span",
    "event",
    "set_attr",
    "active_span",
    "active_tracer",
    "render_prometheus",
    "render_span_tree",
    "registry_to_json",
]
