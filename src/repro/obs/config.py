"""Observability configuration for the serving layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["ObservabilityConfig"]


@dataclass(frozen=True)
class ObservabilityConfig:
    """How a :class:`~repro.service.PneumaService` traces its turns.

    ``tracing=False`` (or passing ``observability=None`` to the service)
    is bit-transparent: no tracer is constructed and instrumented code
    hits only the no-op fast path.  ``clock`` overrides the tracer's
    timestamp source (``time.perf_counter`` by default); inject a virtual
    clock for fully reproducible span trees.
    """

    tracing: bool = True
    trace_seed: int = 0
    max_traces: int = 256
    slow_turn_seconds: float = 0.5
    slow_log_capacity: int = 32
    clock: Optional[Callable[[], float]] = None
