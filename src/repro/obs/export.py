"""Exposition: Prometheus text and JSON for the registry, pretty span trees.

All three renderers are pure functions over snapshot data so they can be
called from the service (``metrics_text()``), the benchmarks, and
``scripts/tracetool.py`` without touching live metric state.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from .registry import MetricsRegistry

__all__ = ["render_prometheus", "registry_to_json", "render_span_tree"]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_str(names: List[str], values: List[str], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for family in registry.collect():
        name, kind, names = family["name"], family["kind"], family["label_names"]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            values = series["labels"]
            if kind in ("counter", "gauge"):
                suffix = "_total" if kind == "counter" and not name.endswith("_total") else ""
                lines.append(
                    f"{name}{suffix}{_label_str(names, values)} {_format_value(series['value'])}"
                )
            else:  # histogram
                for bound, cumulative in series["buckets"]:
                    le = _label_str(names, values, f'le="{_format_value(float(bound))}"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                inf = _label_str(names, values, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {series['count']}")
                lines.append(f"{name}_sum{_label_str(names, values)} {repr(series['sum'])}")
                lines.append(f"{name}_count{_label_str(names, values)} {series['count']}")
    return "\n".join(lines) + "\n"


def registry_to_json(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """The registry as JSON-serializable data (``collect()`` verbatim)."""
    return registry.collect()


def render_span_tree(trace: Dict[str, Any], unit_ms: bool = True) -> str:
    """Pretty-print one exported trace tree (the ``Span.to_json()`` shape).

    Durations render relative to the root so virtual-clock and wall-clock
    traces read the same way::

        turn 14.203ms [ok]
        ├─ retrieval.search 3.101ms [ok] sources=2
        │  ├─ retrieval.bm25 1.004ms [ok]
        │  └─ retrieval.vector 1.711ms [ok]
        └─ llm.complete 9.882ms [ok] attempts=1
    """
    scale = 1000.0 if unit_ms else 1.0
    unit = "ms" if unit_ms else "s"
    lines: List[str] = []

    def describe(node: Dict[str, Any]) -> str:
        duration = (node.get("end", node["start"]) - node["start"]) * scale
        text = f"{node['name']} {duration:.3f}{unit} [{node.get('status', 'ok')}]"
        attrs = node.get("attrs") or {}
        if attrs:
            rendered = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            text += f" {rendered}"
        for event in node.get("events") or []:
            text += f" !{event['name']}"
        return text

    def walk(node: Dict[str, Any], prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(describe(node))
            child_prefix = ""
        else:
            branch = "└─ " if is_last else "├─ "
            lines.append(prefix + branch + describe(node))
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = node.get("children") or []
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1, False)

    walk(trace, "", True, True)
    return "\n".join(lines)
