"""A labeled metrics registry: typed Counter/Gauge/Histogram families.

The registry is the service's one source of numeric telemetry.  Design:

* **Typed families.**  A metric name maps to exactly one family of one
  kind (counter, gauge, histogram) with a fixed label-name tuple;
  re-registering the same name returns the existing family and a
  kind/label mismatch raises — exposition can therefore never render a
  name under two types.
* **O(1), lock-striped hot path.**  Each child (one per label-value
  combination) holds a reference to one of the registry's ``stripes``
  locks, chosen by hash at creation.  Recording is one dict hit plus one
  striped-lock increment; no registry-wide lock is ever taken to record.
  Callers on hot paths cache the child itself (as ``ServiceMetrics``
  does), making a record exactly one lock acquire.
* **Bounded.**  Histograms optionally keep a raw-sample reservoir
  (``max_samples``) for exact percentile queries; it is trimmed by the
  same drop-oldest-half splice the serving metrics always used, so a
  long-lived service cannot grow without limit.

Exposition lives in :mod:`repro.obs.export` (Prometheus text and JSON);
:meth:`MetricsRegistry.collect` is the stable snapshot contract between
the two.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "MetricFamily",
    "DEFAULT_LATENCY_BUCKETS",
    "percentile",
    "percentile_sorted",
]

#: Prometheus-style latency bounds (seconds); +Inf is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def percentile_sorted(ordered: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) of an already-sorted sample list,
    by linear interpolation between closest ranks."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def percentile(samples: Iterable[float], p: float) -> float:
    """The ``p``-th percentile (0..100); sorts a copy of its input.

    Callers computing several percentiles of one sample set should sort
    once and call :func:`percentile_sorted` per cut.
    """
    return percentile_sorted(sorted(samples), p)


class _Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class _Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}


class _Histogram:
    """Cumulative-bucket histogram plus an optional exact reservoir.

    Buckets serve the Prometheus exposition; the bounded reservoir (when
    ``max_samples > 0``) serves exact interpolated percentiles — the same
    numbers ``ServiceMetrics.snapshot()`` always reported.
    """

    __slots__ = ("_lock", "buckets", "max_samples", "_counts", "_sum", "_count", "_samples")

    def __init__(self, lock: threading.Lock, buckets: Sequence[float], max_samples: int = 0):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = lock
        self.buckets = bounds
        self.max_samples = max_samples
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self.max_samples:
                self._samples.append(value)
                if len(self._samples) > self.max_samples:
                    # Drop the oldest half in one splice; amortized O(1).
                    del self._samples[: self.max_samples // 2]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def samples(self) -> List[float]:
        """A copy of the reservoir (unsorted, in observation order)."""
        with self._lock:
            return list(self._samples)

    def percentile(self, p: float) -> float:
        ordered = self.samples()
        ordered.sort()
        return percentile_sorted(ordered, p)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, bucket_sum = self._count, self._sum
        cumulative = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            cumulative.append((bound, running))
        return {"buckets": cumulative, "count": total, "sum": bucket_sum}


_CHILD_KINDS = {"counter": _Counter, "gauge": _Gauge, "histogram": _Histogram}


class MetricFamily:
    """One named metric and its per-label-value children.

    For unlabeled families the recording surface (``inc``/``set``/
    ``observe``/…) proxies to the single default child, so
    ``registry.counter("x").inc()`` just works.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        **opts: Any,
    ):
        self._registry = registry
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._opts = opts
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not label_names:
            self.labels()  # materialize the default child eagerly

    def labels(self, *values: Any):
        """The child for one label-value combination (created on first use)."""
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is not None:
            return child
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {len(key)} value(s)"
            )
        with self._registry._registration_lock:
            child = self._children.get(key)
            if child is None:
                child = _CHILD_KINDS[self.kind](
                    self._registry._stripe(self.name, key), **self._opts
                )
                self._children[key] = child
        return child

    def items(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """A snapshot of ``(label_values, child)`` pairs, sorted by labels."""
        with self._registry._registration_lock:
            pairs = list(self._children.items())
        return sorted(pairs, key=lambda kv: kv[0])

    # -- unlabeled convenience proxies ---------------------------------
    def _default(self):
        if self.label_names:
            raise ValueError(f"{self.name} is labeled {self.label_names}; call .labels(...)")
        return self._children[()]

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self):
        return self._default().value

    def snapshot(self) -> Dict[str, Any]:
        """Exposition-ready view: kind, help, and every child's state."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": [
                {"labels": list(values), **child.snapshot()}
                for values, child in self.items()
            ],
        }


class MetricsRegistry:
    """The service-wide registry of metric families."""

    def __init__(self, stripes: int = 64):
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self._registration_lock = threading.Lock()
        self._stripes = tuple(threading.Lock() for _ in range(stripes))
        self._families: Dict[str, MetricFamily] = {}

    def _stripe(self, name: str, label_values: Tuple[str, ...]) -> threading.Lock:
        return self._stripes[hash((name,) + label_values) % len(self._stripes)]

    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        max_samples: int = 0,
    ) -> MetricFamily:
        return self._family(
            name, "histogram", help_text, labels, buckets=tuple(buckets), max_samples=max_samples
        )

    def _family(
        self, name: str, kind: str, help_text: str, labels: Sequence[str], **opts: Any
    ) -> MetricFamily:
        label_names = tuple(labels)
        with self._registration_lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}; cannot re-register as "
                        f"{kind} with labels {label_names}"
                    )
                return family
        # Build outside the lock would race a concurrent registration of
        # the same name; re-check-and-insert under the lock instead.
        family = MetricFamily(self, name, kind, help_text, label_names, **opts)
        with self._registration_lock:
            existing = self._families.get(name)
            if existing is not None:
                return existing
            self._families[name] = family
        return family

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        with self._registration_lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._registration_lock:
            families = list(self._families.values())
        return sorted(families, key=lambda f: f.name)

    def collect(self) -> List[Dict[str, Any]]:
        """Every family's snapshot, sorted by name — the exposition feed."""
        return [family.snapshot() for family in self.families()]
