"""Slow-turn capture: retain full span trees of anomalous turns.

The tracer's ring buffer keeps the *most recent* traces; under heavy
traffic a slow or failed turn is evicted within seconds.  The slow-turn
log keeps the *interesting* ones: any turn whose latency exceeds a
configurable threshold, or whose outcome is failed/degraded/shed, has
its whole span tree retained as an exemplar.  The log is bounded — when
full, a new exemplar evicts the least interesting retained one (fastest
``ok``-outcome first), so the worst turns survive arbitrarily long runs.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .trace import Span

__all__ = ["SlowTurnLog"]

#: Outcomes always retained regardless of latency.
ANOMALOUS_OUTCOMES = frozenset({"failed", "degraded", "shed"})


class SlowTurnLog:
    """Bounded store of exemplar turn traces.

    ``offer()`` is called once per traced turn with the finished root
    span and the turn's outcome classification; the log decides whether
    the trace is worth keeping.
    """

    def __init__(self, threshold_seconds: float = 0.5, capacity: int = 32):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_seconds = threshold_seconds
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: List[Dict[str, Any]] = []
        self._offered = 0
        self._retained = 0

    def offer(self, root: Span, outcome: str) -> bool:
        """Consider one finished turn trace; returns True if retained."""
        duration = root.duration
        interesting = outcome in ANOMALOUS_OUTCOMES or duration >= self.threshold_seconds
        with self._lock:
            self._offered += 1
            if not interesting:
                return False
            entry = {"outcome": outcome, "duration": duration, "root": root}
            if len(self._entries) >= self.capacity:
                victim = min(range(len(self._entries)), key=self._keep_priority)
                if self._keep_priority(victim) >= self._priority(entry):
                    return False  # everything retained is at least as interesting
                del self._entries[victim]
            self._entries.append(entry)
            self._retained += 1
            return True

    def _keep_priority(self, index: int) -> tuple:
        return self._priority(self._entries[index])

    @staticmethod
    def _priority(entry: Dict[str, Any]) -> tuple:
        # Anomalous outcomes outrank merely-slow ok turns; ties break on
        # duration, so the fastest ok exemplar is evicted first.
        return (entry["outcome"] in ANOMALOUS_OUTCOMES, entry["duration"])

    # ------------------------------------------------------------------
    def exemplars(self) -> List[Dict[str, Any]]:
        """Retained entries, slowest/most-anomalous first."""
        with self._lock:
            entries = list(self._entries)
        return sorted(entries, key=self._priority, reverse=True)

    def slowest(self) -> Optional[Span]:
        entries = self.exemplars()
        return entries[0]["root"] if entries else None

    def dump_jsonl(self, path: Union[str, Path]) -> int:
        """One JSON object per exemplar (outcome + span tree); returns count."""
        entries = self.exemplars()
        with open(path, "w", encoding="utf-8") as handle:
            for entry in entries:
                record = {
                    "outcome": entry["outcome"],
                    "duration": entry["duration"],
                    "trace": entry["root"].to_json(),
                }
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            outcomes: Dict[str, int] = {}
            for entry in self._entries:
                outcomes[entry["outcome"]] = outcomes.get(entry["outcome"], 0) + 1
            return {
                "threshold_seconds": self.threshold_seconds,
                "capacity": self.capacity,
                "offered": self._offered,
                "retained": self._retained,
                "held": len(self._entries),
                "held_by_outcome": outcomes,
            }
