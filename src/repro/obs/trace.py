"""Structured tracing: deterministic span trees with thread-local context.

One :class:`Tracer` per service records where a turn spends its time
across the Seeker loop (discovery retrieval → schema reification →
preparation/SQL → LLM narration).  Design constraints, in order:

* **Bit-transparent when off.**  Instrumented code calls the module-level
  :func:`span` / :func:`event` helpers; with no trace active on the
  current thread they return a shared no-op singleton, so the disabled
  cost is one thread-local lookup and nothing about behavior changes.
* **Deterministic.**  Span ids are blake2b digests off a seeded stream
  (``seed → trace counter → per-trace span counter``), never
  ``random``/``uuid`` — tracing must not perturb the seeded fault/crash
  determinism oracles.  With an injected virtual ``clock`` the full span
  tree, timestamps included, is reproducible run to run.
* **Bounded.**  Finished traces land in a ring buffer (``max_traces``);
  a long-lived service cannot grow without limit.  Exemplar retention
  beyond the ring is the slow-turn log's job (:mod:`repro.obs.slowlog`).

A trace is single-threaded by construction: the serving layer starts the
root span on the worker thread that runs the turn, and every child span
is opened and closed on that same thread (the same way the per-session
lock already serializes a turn).  Cross-thread propagation is therefore
not needed — context is one ``threading.local``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "span",
    "event",
    "set_attr",
    "active_span",
    "active_tracer",
]


def derive_id(stream: str, n: int, size: int = 8) -> str:
    """The ``n``-th id of a named stream: blake2b, hex, ``size`` bytes."""
    return hashlib.blake2b(f"{stream}:{n}".encode("utf-8"), digest_size=size).hexdigest()


_ACTIVE = threading.local()


class _NoopSpan:
    """The shared do-nothing span returned when no trace is active.

    Supports the full recording surface so instrumented code never
    branches on whether tracing is on.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _TraceContext:
    """Per-trace bookkeeping: the id stream, the clock, the current span."""

    __slots__ = ("tracer", "trace_id", "clock", "current", "seq")

    def __init__(self, tracer: "Tracer", trace_id: str, clock: Callable[[], float]):
        self.tracer = tracer
        self.trace_id = trace_id
        self.clock = clock
        self.current: Optional[Span] = None
        self.seq = 0  # spans minted so far; the per-trace id stream

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


class Span:
    """One timed operation; a node of a trace tree and a context manager.

    Entering makes it the thread's current span (children attach to it);
    exiting records the end timestamp, marks ``status="error"`` if an
    exception passed through, and restores the parent.  When the root
    exits, the finished tree is handed to the tracer's ring buffer.
    """

    __slots__ = ("name", "start", "end", "attrs", "events", "children", "status", "_ctx", "_parent", "_seq")

    def __init__(self, ctx: _TraceContext, name: str, parent: Optional["Span"], attrs: Dict[str, Any]):
        self._ctx = ctx
        self._parent = parent
        self._seq = ctx.next_seq()
        self.name = name
        self.start = ctx.clock()
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.events: List[Dict[str, Any]] = []
        self.children: List[Span] = []
        self.status = "ok"
        if parent is not None:
            parent.children.append(self)

    # -- identity (derived lazily: ids are export-time data, not hot-path
    # cost; the stream is deterministic so lazy == eager) ---------------
    @property
    def trace_id(self) -> str:
        return self._ctx.trace_id

    @property
    def span_id(self) -> str:
        return derive_id(self._ctx.trace_id, self._seq)

    @property
    def parent_id(self) -> Optional[str]:
        return self._parent.span_id if self._parent is not None else None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    # -- recording ------------------------------------------------------
    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def event(self, name: str, **attrs: Any) -> None:
        record: Dict[str, Any] = {"name": name, "at": self._ctx.clock()}
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    # -- context management --------------------------------------------
    def __enter__(self) -> "Span":
        self._ctx.current = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._ctx.clock()
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self._ctx.current = self._parent
        if self._parent is None:
            if getattr(_ACTIVE, "ctx", None) is self._ctx:
                _ACTIVE.ctx = None
            self._ctx.tracer._finish_trace(self)
        return False

    # -- introspection --------------------------------------------------
    def iter_spans(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def span_names(self) -> List[str]:
        return [s.name for s in self.iter_spans()]

    def find(self, name: str) -> List["Span"]:
        return [s for s in self.iter_spans() if s.name == name]

    def to_json(self) -> Dict[str, Any]:
        node: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.events:
            node["events"] = [dict(e) for e in self.events]
        if self.children:
            node["children"] = [child.to_json() for child in self.children]
        return node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration * 1000:.3f}ms, children={len(self.children)})"


class Tracer:
    """Mints traces, owns the finished-trace ring buffer.

    ``clock`` is any zero-argument callable returning seconds as float;
    the default is ``time.perf_counter``.  Injecting a virtual clock makes
    timestamps (and therefore whole exported trees) reproducible.
    """

    def __init__(
        self,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
        max_traces: int = 256,
    ):
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self.seed = seed
        self.clock = clock if clock is not None else time.perf_counter
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=max_traces)
        self._trace_n = 0
        self._finished = 0
        self._spans = 0

    # ------------------------------------------------------------------
    def start_trace(self, name: str, **attrs: Any) -> Span:
        """Mint a root span and install its trace on the current thread.

        Use as ``with tracer.start_trace("turn") as root:`` — children
        opened on this thread nest under it until the block exits.
        """
        with self._lock:
            self._trace_n += 1
            n = self._trace_n
        ctx = _TraceContext(self, derive_id(f"trace:{self.seed}", n, size=12), self.clock)
        root = Span(ctx, name, None, attrs)
        ctx.current = root
        _ACTIVE.ctx = ctx
        return root

    def _finish_trace(self, root: Span) -> None:
        with self._lock:
            self._traces.append(root)
            self._finished += 1
            self._spans += root._ctx.seq

    # ------------------------------------------------------------------
    def traces(self, name: Optional[str] = None) -> List[Span]:
        """Finished traces still in the ring, oldest first."""
        with self._lock:
            roots = list(self._traces)
        if name is not None:
            roots = [r for r in roots if r.name == name]
        return roots

    def slowest(self, name: Optional[str] = None) -> Optional[Span]:
        roots = self.traces(name)
        return max(roots, key=lambda r: r.duration) if roots else None

    def export_jsonl(self, path: Union[str, Path], name: Optional[str] = None) -> int:
        """Write one JSON trace tree per line; returns the trace count."""
        roots = self.traces(name)
        with open(path, "w", encoding="utf-8") as handle:
            for root in roots:
                handle.write(json.dumps(root.to_json(), sort_keys=True) + "\n")
        return len(roots)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "traces_started": self._trace_n,
                "traces_finished": self._finished,
                "traces_retained": len(self._traces),
                "max_traces": self.max_traces,
                "spans_recorded": self._spans,
            }


# ----------------------------------------------------------------------
# Module-level helpers — what instrumented code calls.  All of them are
# no-ops (returning NOOP_SPAN / doing nothing) when the current thread
# has no active trace, which is the bit-transparency guarantee.
# ----------------------------------------------------------------------
def span(name: str, **attrs: Any):
    """Open a child span of the current thread's trace (or a no-op)."""
    ctx = getattr(_ACTIVE, "ctx", None)
    if ctx is None:
        return NOOP_SPAN
    return Span(ctx, name, ctx.current, attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point-in-time event on the current span (or nothing)."""
    ctx = getattr(_ACTIVE, "ctx", None)
    if ctx is not None and ctx.current is not None:
        ctx.current.event(name, **attrs)


def set_attr(key: str, value: Any) -> None:
    """Set an attribute on the current span (or nothing)."""
    ctx = getattr(_ACTIVE, "ctx", None)
    if ctx is not None and ctx.current is not None:
        ctx.current.set_attr(key, value)


def active_span() -> Optional[Span]:
    ctx = getattr(_ACTIVE, "ctx", None)
    return ctx.current if ctx is not None else None


def active_tracer() -> Optional[Tracer]:
    ctx = getattr(_ACTIVE, "ctx", None)
    return ctx.tracer if ctx is not None else None
