"""prep — sketch-based discovery and preparation over the catalog.

The paper's "automate discovery, guide preparation" made concrete:

* :mod:`repro.prep.sketches` — per-column MinHash + HyperLogLog sketches;
* :mod:`repro.prep.profile` — column/table profiles (sketches + statistics);
* :mod:`repro.prep.store` — the fingerprint-keyed, versioned ProfileStore;
* :mod:`repro.prep.discovery` — join/union candidate ranking over sketches;
* :mod:`repro.prep.align` — the alignment compiler (reified need -> SQL);
* :mod:`repro.prep.pipeline` — the facade the service and sessions use.
"""

from .align import AlignmentCompiler, AlignmentError, JoinEdge, PreparationPlan
from .discovery import (
    JoinCandidate,
    UnionCandidate,
    candidate_keys,
    discover_join_candidates,
    discover_union_candidates,
    exact_join_candidates,
)
from .pipeline import PreparationPipeline
from .profile import ColumnProfile, TableProfile, profile_column, profile_table, type_family
from .sketches import ColumnSketch, encode_values, exact_containment, exact_jaccard
from .store import ProfileStore

__all__ = [
    "AlignmentCompiler",
    "AlignmentError",
    "ColumnProfile",
    "ColumnSketch",
    "JoinCandidate",
    "JoinEdge",
    "PreparationPipeline",
    "PreparationPlan",
    "ProfileStore",
    "TableProfile",
    "UnionCandidate",
    "candidate_keys",
    "discover_join_candidates",
    "discover_union_candidates",
    "encode_values",
    "exact_containment",
    "exact_jaccard",
    "exact_join_candidates",
    "profile_column",
    "profile_table",
    "type_family",
]
