"""The alignment compiler: reified need -> executable preparation plan.

Takes a :class:`~repro.core.state.TargetTable` spec (the paper's ``T``)
plus the join candidates discovery surfaced, resolves every target column
to a concrete lake column, connects the source tables through the
candidate graph, and compiles the whole thing to one SELECT executed on
the columnar engine.  Compilation is total-or-nothing: anything the
compiler cannot guarantee — web provenance, transforms, unresolvable
columns, disconnected tables — raises :class:`AlignmentError` and the
caller falls back to the LLM materialization loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.state import TargetTable
from ..relational.catalog import Database
from ..relational.errors import RelationalError
from ..relational.plan import compile_select
from ..relational.table import Table
from .discovery import JoinCandidate

#: Integration hints the compiler can honor.  Anything else (``web``,
#: ``interpolate``, ``transform``, ...) needs the generate/repair loop.
_SUPPORTED_HINTS = {"join"}


class AlignmentError(Exception):
    """The spec cannot be compiled to a lake-only preparation plan."""


@dataclass
class JoinEdge:
    """One equi-join step of the compiled plan."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str
    containment: float

    def condition(self) -> str:
        return f"{self.left_table}.{self.left_column} = {self.right_table}.{self.right_column}"


@dataclass
class PreparationPlan:
    """A compiled, executable preparation plan for one target table."""

    target: str
    sql: str
    tables: List[str]
    joins: List[JoinEdge] = field(default_factory=list)
    column_map: List[Tuple[str, str, str]] = field(default_factory=list)  # (target, table, column)

    def explain(self) -> str:
        lines = [f"prepare {self.target!r} from {', '.join(self.tables)}"]
        for target, table, column in self.column_map:
            lines.append(f"  {target} <- {table}.{column}")
        for edge in self.joins:
            lines.append(f"  join on {edge.condition()} (containment {edge.containment:.2f})")
        lines.append(f"  sql: {self.sql}")
        return "\n".join(lines)


class AlignmentCompiler:
    """Compile target-table specs against one lake + one candidate set."""

    def __init__(self, lake: Database, candidates: Sequence[JoinCandidate]):
        self.lake = lake
        # Undirected adjacency keyed by lowercase table name; the best
        # (highest-containment) candidate per table pair wins.
        self._adjacency: Dict[str, Dict[str, JoinCandidate]] = {}
        for candidate in candidates:
            self._add_edge(candidate)

    def _add_edge(self, candidate: JoinCandidate) -> None:
        left = candidate.left_table.lower()
        right = candidate.right_table.lower()
        # Prefer containment, then key-like (high-distinct) join columns:
        # a category column can tie a true FK on containment (both 1.0)
        # but joining on it fans rows out instead of matching entities.
        rank = (candidate.containment, candidate.key_cardinality)
        for a, b in ((left, right), (right, left)):
            best = self._adjacency.setdefault(a, {}).get(b)
            if best is None or rank > (best.containment, best.key_cardinality):
                self._adjacency[a][b] = candidate

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, spec: TargetTable) -> PreparationPlan:
        if not spec.columns:
            raise AlignmentError(f"target {spec.name!r} declares no columns")
        unsupported = set(spec.integration) - _SUPPORTED_HINTS
        if unsupported:
            raise AlignmentError(
                f"integration hints {sorted(unsupported)} need the materialization loop"
            )

        column_map = [(c.name, *self._resolve(c.name, c.source, spec)) for c in spec.columns]
        targets = [name for name, _, _ in column_map]
        if len(set(n.lower() for n in targets)) != len(targets):
            raise AlignmentError(f"duplicate target column names in {spec.name!r}")

        tables: List[str] = []
        for _, table, _ in column_map:
            if table not in tables:
                tables.append(table)
        joins = self._connect(tables, spec)

        select_list = ", ".join(
            f"{table}.{column} AS {target}" for target, table, column in column_map
        )
        sql = f"SELECT {select_list} FROM {tables[0]}"
        ordered = [tables[0]]
        for edge in joins:
            new_table = edge.right_table if edge.right_table not in ordered else edge.left_table
            ordered.append(new_table)
            sql += f" JOIN {new_table} ON {edge.condition()}"

        plan = PreparationPlan(
            target=spec.name, sql=sql, tables=ordered, joins=joins, column_map=column_map
        )
        try:
            compile_select(self.lake, sql)  # bind errors surface at compile time
        except RelationalError as exc:
            raise AlignmentError(f"compiled SQL failed to bind: {exc}") from exc
        return plan

    def execute(self, plan: PreparationPlan) -> Table:
        """Run the plan on the columnar engine; result carries the target name."""
        try:
            return self.lake.execute(plan.sql).renamed(plan.target)
        except RelationalError as exc:
            raise AlignmentError(f"preparation plan failed: {exc}") from exc

    # ------------------------------------------------------------------
    # Column resolution
    # ------------------------------------------------------------------
    def _resolve(self, name: str, source: str, spec: TargetTable) -> Tuple[str, str]:
        """Map one target column to a concrete ``(table, column)`` pair."""
        if source:
            if ":" in source:  # e.g. 'web:tariff-schedule'
                raise AlignmentError(f"column {name!r} has non-lake provenance {source!r}")
            if "." in source:
                table_name, column = source.split(".", 1)
                table = self._lake_table(table_name)
                if table is None:
                    raise AlignmentError(f"source table {table_name!r} not in the lake")
                if not table.schema.has_column(column):
                    raise AlignmentError(f"source column {source!r} not found")
                return table.name, table.schema.column(column).name
            # A bare source names a column; fall through to search for it.
            name = source
        matches: List[Tuple[str, str]] = []
        search_order = [t for t in spec.base_tables if self._lake_table(t) is not None]
        search_order += [
            t.name for t in self.lake.tables() if t.name.lower() not in
            {s.lower() for s in search_order}
        ]
        for table_name in search_order:
            table = self._lake_table(table_name)
            if table is not None and table.schema.has_column(name):
                matches.append((table.name, table.schema.column(name).name))
        in_base = [m for m in matches if m[0].lower() in {b.lower() for b in spec.base_tables}]
        pool = in_base or matches
        if not pool:
            raise AlignmentError(f"no lake column matches target column {name!r}")
        if len(pool) > 1:
            raise AlignmentError(
                f"target column {name!r} is ambiguous: {sorted(t for t, _ in pool)}"
            )
        return pool[0]

    def _lake_table(self, name: str) -> Optional[Table]:
        if self.lake.has_table(name):
            return self.lake.resolve_table(name)
        return None

    # ------------------------------------------------------------------
    # Join-path construction
    # ------------------------------------------------------------------
    def _connect(self, tables: List[str], spec: TargetTable) -> List[JoinEdge]:
        """Join edges connecting ``tables``, in an order where each edge
        attaches exactly one new table to the already-connected set."""
        if len(tables) <= 1:
            return []
        adjacency = {t: dict(n) for t, n in self._adjacency.items()}
        hint = spec.integration.get("join")
        if hint:
            hinted = self._hinted_candidate(hint, tables)
            if hinted is not None:
                left = hinted.left_table.lower()
                right = hinted.right_table.lower()
                adjacency.setdefault(left, {})[right] = hinted
                adjacency.setdefault(right, {})[left] = hinted

        connected = {tables[0].lower()}
        edges: List[JoinEdge] = []
        for target in tables[1:]:
            if target.lower() in connected:
                continue
            path = self._shortest_path(adjacency, connected, target.lower())
            if path is None:
                raise AlignmentError(
                    f"no discovered join path connects {target!r} for target {spec.name!r}"
                )
            for candidate, new_table in path:
                # Orient the edge so the right side is the newly attached table.
                if candidate.left_table.lower() == new_table:
                    edge = JoinEdge(
                        left_table=candidate.right_table,
                        left_column=candidate.right_column,
                        right_table=candidate.left_table,
                        right_column=candidate.left_column,
                        containment=candidate.containment,
                    )
                else:
                    edge = JoinEdge(
                        left_table=candidate.left_table,
                        left_column=candidate.left_column,
                        right_table=candidate.right_table,
                        right_column=candidate.right_column,
                        containment=candidate.containment,
                    )
                edges.append(edge)
                connected.add(new_table)
        return edges

    def _hinted_candidate(
        self, hint: Mapping[str, str], tables: List[str]
    ) -> Optional[JoinCandidate]:
        """An integration 'join' hint as a forced, top-confidence edge."""
        right = hint.get("table")
        left_on = hint.get("left_on")
        right_on = hint.get("right_on")
        if not (right and left_on and right_on) or not tables:
            return None
        left_table = self._lake_table(tables[0])
        right_table = self._lake_table(right)
        if left_table is None or right_table is None:
            return None
        if not left_table.schema.has_column(left_on):
            return None
        if not right_table.schema.has_column(right_on):
            return None
        return JoinCandidate(
            left_table=left_table.name,
            left_column=left_table.schema.column(left_on).name,
            right_table=right_table.name,
            right_column=right_table.schema.column(right_on).name,
            jaccard=1.0,
            containment=1.0,
            key_cardinality=float("inf"),  # a forced hint outranks any discovered edge
        )

    @staticmethod
    def _shortest_path(
        adjacency: Dict[str, Dict[str, JoinCandidate]],
        connected: set,
        target: str,
    ) -> Optional[List[Tuple[JoinCandidate, str]]]:
        """BFS from the connected set to ``target`` through the candidate
        graph; ties between equal-hop frontiers break on containment."""
        parents: Dict[str, Tuple[str, JoinCandidate]] = {}
        frontier = deque(sorted(connected))
        seen = set(connected)
        while frontier:
            node = frontier.popleft()
            neighbors = sorted(
                adjacency.get(node, {}).items(),
                key=lambda item: (-item[1].containment, -item[1].key_cardinality, item[0]),
            )
            for neighbor, candidate in neighbors:
                if neighbor in seen:
                    continue
                parents[neighbor] = (node, candidate)
                if neighbor == target:
                    path: List[Tuple[JoinCandidate, str]] = []
                    current = target
                    while current not in connected:
                        parent, edge = parents[current]
                        path.append((edge, current))
                        current = parent
                    path.reverse()
                    return path
                seen.add(neighbor)
                frontier.append(neighbor)
        return None
