"""Join/union candidate discovery over column sketches.

The sketch path never touches row data: candidate enumeration compares
MinHash signatures (stacked into one matrix per type family, so the
pairwise slot-match counts come out of a handful of numpy matmul-shaped
passes) and derives containment from the HLL cardinalities.  The exact
path — full pairwise distinct-set intersection — is kept as the oracle
and the benchmark baseline; it is what discovery would cost without
sketches.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Set, Tuple

import numpy as np

from ..relational.catalog import Database
from .profile import ColumnProfile, TableProfile, type_family
from .sketches import distinct_values


@dataclass(frozen=True)
class JoinCandidate:
    """A directed join hypothesis: ``left`` (fk side) contained in ``right``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str
    jaccard: float
    containment: float  # est. |left n right| / |left|
    key_cardinality: float = 0.0  # est. distinct count of the smaller side

    @property
    def score(self) -> float:
        return self.containment

    def key(self) -> Tuple[str, str, str, str]:
        return (self.left_table, self.left_column, self.right_table, self.right_column)

    def to_json(self) -> Dict[str, Any]:
        return {
            "left": f"{self.left_table}.{self.left_column}",
            "right": f"{self.right_table}.{self.right_column}",
            "jaccard": round(self.jaccard, 4),
            "containment": round(self.containment, 4),
        }


@dataclass(frozen=True)
class UnionCandidate:
    """Two tables whose schemas align well enough to stack."""

    left_table: str
    right_table: str
    column_pairs: Tuple[Tuple[str, str], ...]
    score: float  # fraction of columns aligned, weighted by name/type match

    def to_json(self) -> Dict[str, Any]:
        return {
            "left": self.left_table,
            "right": self.right_table,
            "columns": [list(pair) for pair in self.column_pairs],
            "score": round(self.score, 4),
        }


def _flatten(profiles: Mapping[str, TableProfile]) -> List[ColumnProfile]:
    columns: List[ColumnProfile] = []
    for table in profiles.values():
        columns.extend(table.column_profiles())
    return columns


def discover_join_candidates(
    profiles: Mapping[str, TableProfile],
    min_containment: float = 0.5,
    min_distinct: float = 2.0,
) -> List[JoinCandidate]:
    """Rank cross-table column pairs by estimated containment.

    Columns are grouped by type family and their signatures stacked into
    one ``(n, k)`` matrix; slot-match counts for all pairs fall out of a
    single broadcasted comparison per family.  Emits one candidate per
    *direction* whose containment clears ``min_containment``, sorted by
    containment then Jaccard (descending).
    """
    by_family: Dict[str, List[ColumnProfile]] = {}
    for column in _flatten(profiles):
        if column.family == "null" or column.sketch.is_empty():
            continue
        if column.distinct_estimate < min_distinct:
            continue
        by_family.setdefault(column.family, []).append(column)

    candidates: List[JoinCandidate] = []
    for columns in by_family.values():
        n = len(columns)
        if n < 2:
            continue
        signatures = np.stack([c.sketch.dense_signature() for c in columns])  # (n, k)
        k = signatures.shape[1]
        cards = np.array([c.distinct_estimate for c in columns])
        ids: Dict[str, int] = {}
        table_ids = np.array(
            [ids.setdefault(c.table, len(ids)) for c in columns], dtype=np.int64
        )  # same-table pairs are never join candidates
        # Sparse slot-match counting instead of the dense (n, n, k)
        # comparison: per signature slot, group columns by slot value and
        # count co-occurrences.  Disjoint columns never share a slot
        # value, so the work is ~k sorts plus a few increments per
        # genuinely-overlapping pair — near-linear in n, and identical in
        # output to the dense compare (uncounted pairs have Jaccard 0).
        pair_counts: Counter = Counter()
        for s in range(k):
            order = np.argsort(signatures[:, s], kind="stable")
            sv = signatures[order, s]
            bounds = np.flatnonzero(np.diff(sv)) + 1
            starts = np.r_[0, bounds]
            ends = np.r_[bounds, n]
            for r in np.flatnonzero(ends - starts >= 2):
                group = np.sort(order[starts[r] : ends[r]]).tolist()
                for x in range(len(group)):
                    gx = group[x]
                    for gy in group[x + 1 :]:
                        pair_counts[(gx, gy)] += 1
        if not pair_counts:
            continue
        idx = np.array(list(pair_counts), dtype=np.int64)  # (pairs, 2)
        counts = np.array(list(pair_counts.values()), dtype=np.float64)
        jaccards = counts / float(k)
        ci, cj = cards[idx[:, 0]], cards[idx[:, 1]]
        inter = np.clip(jaccards / (1.0 + jaccards) * (ci + cj), 0.0, np.minimum(ci, cj))
        cross = table_ids[idx[:, 0]] != table_ids[idx[:, 1]]
        for li, ri, card in ((0, 1, ci), (1, 0, cj)):
            with np.errstate(divide="ignore", invalid="ignore"):
                containment = np.where(card > 0, np.minimum(1.0, inter / card), 0.0)
            for row in np.flatnonzero(cross & (containment >= min_containment)):
                left, right = columns[idx[row, li]], columns[idx[row, ri]]
                candidates.append(
                    JoinCandidate(
                        left_table=left.table,
                        left_column=left.name,
                        right_table=right.table,
                        right_column=right.name,
                        jaccard=float(jaccards[row]),
                        containment=float(containment[row]),
                        key_cardinality=float(min(ci[row], cj[row])),
                    )
                )
    candidates.sort(key=lambda c: (-c.containment, -c.jaccard, c.key()))
    return candidates


def discover_union_candidates(
    profiles: Mapping[str, TableProfile], min_score: float = 0.6
) -> List[UnionCandidate]:
    """Rank table pairs by schema alignment (name + type-family matches)."""
    tables = sorted(profiles.values(), key=lambda t: t.name)
    candidates: List[UnionCandidate] = []
    for i in range(len(tables)):
        for j in range(i + 1, len(tables)):
            left, right = tables[i], tables[j]
            pairs: List[Tuple[str, str]] = []
            for column in left.column_profiles():
                if right.has_column(column.name):
                    other = right.column(column.name)
                    if type_family(column.dtype) == type_family(other.dtype):
                        pairs.append((column.name, other.name))
            width = max(len(left.columns), len(right.columns))
            score = len(pairs) / width if width else 0.0
            if score >= min_score:
                candidates.append(
                    UnionCandidate(
                        left_table=left.name,
                        right_table=right.name,
                        column_pairs=tuple(pairs),
                        score=score,
                    )
                )
    candidates.sort(key=lambda c: (-c.score, c.left_table, c.right_table))
    return candidates


# ----------------------------------------------------------------------
# Exact baseline (oracle + the cost sketches avoid)
# ----------------------------------------------------------------------
def exact_join_candidates(
    lake: Database, min_containment: float = 0.5, min_distinct: int = 2
) -> List[JoinCandidate]:
    """The same candidate enumeration via exact pairwise set comparison.

    Materializes every column's distinct-value set and intersects all
    cross-table same-family pairs — the quadratic cost the sketch path
    replaces.  Kept as the benchmark baseline and equivalence oracle.
    """
    columns: List[Tuple[str, str, str, Set[Any]]] = []  # (table, column, family, values)
    for table in lake.tables():
        for column in table.schema:
            family = type_family(column.dtype)
            if family == "null":
                continue
            values = distinct_values(table.column_values(column.name))
            # Mirror the sketch path's numeric coalescing (2 == 2.0).
            if family == "numeric":
                values = {float(v) if isinstance(v, (int, bool)) else v for v in values}
            if len(values) < min_distinct:
                continue
            columns.append((table.name, column.name, family, values))

    candidates: List[JoinCandidate] = []
    for i in range(len(columns)):
        ti, ci, fi, vi = columns[i]
        for j in range(i + 1, len(columns)):
            tj, cj, fj, vj = columns[j]
            if ti == tj or fi != fj:
                continue
            inter = len(vi & vj)
            if not inter:
                continue
            union = len(vi) + len(vj) - inter
            jac = inter / union if union else 0.0
            for (lt, lc, lv), (rt, rc, _) in (
                ((ti, ci, vi), (tj, cj, vj)),
                ((tj, cj, vj), (ti, ci, vi)),
            ):
                containment = inter / len(lv) if lv else 0.0
                if containment >= min_containment:
                    candidates.append(
                        JoinCandidate(
                            left_table=lt,
                            left_column=lc,
                            right_table=rt,
                            right_column=rc,
                            jaccard=jac,
                            containment=containment,
                            key_cardinality=float(min(len(vi), len(vj))),
                        )
                    )
    candidates.sort(key=lambda c: (-c.containment, -c.jaccard, c.key()))
    return candidates


def candidate_keys(candidates: Iterable[JoinCandidate]) -> Set[Tuple[str, str, str, str]]:
    return {c.key() for c in candidates}
