"""The preparation pipeline facade: profile -> discover -> align -> seed.

One :class:`PreparationPipeline` is built per service (or per standalone
caller) over one lake.  It owns a versioned :class:`ProfileStore`, caches
candidate discovery keyed by ``(lake version, store version)`` so an
unchanged catalog never re-enumerates pairs, and hands the Materializer
compiled preparation plans — the "sessions start seeded" path.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from ..core.state import TargetTable
from ..relational.catalog import Database
from ..relational.table import Table
from .align import AlignmentCompiler, PreparationPlan
from .discovery import (
    JoinCandidate,
    UnionCandidate,
    discover_join_candidates,
    discover_union_candidates,
)
from .profile import TableProfile
from .store import ProfileStore


class PreparationPipeline:
    """Sketch-based discovery and preparation over one lake."""

    def __init__(
        self,
        lake: Database,
        store: Optional[ProfileStore] = None,
        min_containment: float = 0.5,
        min_union_score: float = 0.6,
    ):
        self.lake = lake
        self.store = store if store is not None else ProfileStore()
        self.min_containment = min_containment
        self.min_union_score = min_union_score
        self._lock = threading.Lock()
        self._joins: Optional[List[JoinCandidate]] = None
        self._joins_key: Optional[Tuple[int, int]] = None
        self._discoveries = 0
        self._compiled = 0
        self._prepared = 0

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def profiles(self) -> Dict[str, TableProfile]:
        """Profiles for every lake table (unchanged tables hit the store)."""
        return self.store.profile_catalog(self.lake)

    def join_candidates(self) -> List[JoinCandidate]:
        """Ranked join candidates, cached until the lake or a profile changes."""
        profiles = self.profiles()  # refreshes the store first
        key = (self.lake.version, self.store.version)
        with self._lock:
            if self._joins is not None and self._joins_key == key:
                return self._joins
        joins = discover_join_candidates(profiles, min_containment=self.min_containment)
        with self._lock:
            self._joins = joins
            self._joins_key = key
            self._discoveries += 1
        return joins

    def union_candidates(self) -> List[UnionCandidate]:
        return discover_union_candidates(self.profiles(), min_score=self.min_union_score)

    # ------------------------------------------------------------------
    # Alignment
    # ------------------------------------------------------------------
    def compiler(self) -> AlignmentCompiler:
        return AlignmentCompiler(self.lake, self.join_candidates())

    def compile(self, spec: TargetTable) -> PreparationPlan:
        """Compile ``spec`` to a preparation plan (raises AlignmentError)."""
        plan = self.compiler().compile(spec)
        with self._lock:
            self._compiled += 1
        return plan

    def prepare(self, spec: TargetTable) -> Tuple[PreparationPlan, Table]:
        """Compile and execute a preparation plan for ``spec``."""
        compiler = self.compiler()
        plan = compiler.compile(spec)
        table = compiler.execute(plan)
        with self._lock:
            self._compiled += 1
            self._prepared += 1
        return plan, table

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            joins = len(self._joins) if self._joins is not None else 0
            return {
                "profile_store": self.store.stats(),
                "join_candidates": joins,
                "discoveries": self._discoveries,
                "plans_compiled": self._compiled,
                "plans_executed": self._prepared,
            }
