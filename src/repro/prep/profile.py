"""Per-column profiles: sketches plus the basic statistics discovery ranks on.

A :class:`TableProfile` is everything the preparation pipeline knows about
a catalog table without re-reading it: per-column MinHash + HLL sketches
(:mod:`repro.prep.sketches`) and cheap statistics (null fraction, distinct
estimate, min/max).  Profiles are immutable once built; the versioned
:class:`~repro.prep.store.ProfileStore` keys them by content fingerprint.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..relational.table import Table
from ..relational.types import DataType
from .sketches import ColumnSketch, encode_values, typed_array

#: Column-type families that are meaningfully sketch-comparable: a join
#: between a DATE and a TEXT column is noise even when hashes collide.
_FAMILIES: Dict[DataType, str] = {
    DataType.BOOLEAN: "numeric",
    DataType.INTEGER: "numeric",
    DataType.DOUBLE: "numeric",
    DataType.TEXT: "text",
    DataType.DATE: "date",
    DataType.NULL: "null",
}


def type_family(dtype: DataType) -> str:
    return _FAMILIES.get(dtype, "other")


@dataclass
class ColumnProfile:
    """One column's sketch and statistics, tagged with its provenance."""

    table: str
    name: str
    dtype: DataType
    sketch: ColumnSketch
    count: int
    nulls: int
    distinct_estimate: float
    minimum: Optional[Any] = None
    maximum: Optional[Any] = None

    @property
    def null_fraction(self) -> float:
        return self.nulls / self.count if self.count else 0.0

    @property
    def family(self) -> str:
        return type_family(self.dtype)

    def ref(self) -> str:
        return f"{self.table}.{self.name}"

    def comparable_with(self, other: "ColumnProfile") -> bool:
        """Whether a sketch comparison between the columns is meaningful."""
        return self.family == other.family and self.family != "null"

    def to_json(self) -> Dict[str, Any]:
        return {
            "table": self.table,
            "name": self.name,
            "dtype": str(self.dtype),
            "count": self.count,
            "nulls": self.nulls,
            "null_fraction": round(self.null_fraction, 4),
            "distinct_estimate": round(self.distinct_estimate, 1),
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass
class TableProfile:
    """All column profiles of one table plus row-level accounting."""

    name: str
    fingerprint: Tuple[str, int]
    row_count: int
    columns: Dict[str, ColumnProfile] = field(default_factory=dict)

    def column(self, name: str) -> ColumnProfile:
        return self.columns[name.lower()]

    def has_column(self, name: str) -> bool:
        return name.lower() in self.columns

    def column_profiles(self) -> List[ColumnProfile]:
        return list(self.columns.values())

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "row_count": self.row_count,
            "columns": [c.to_json() for c in self.columns.values()],
        }


def _min_max(
    non_null: List[Any],
    arr: Optional[np.ndarray],
) -> Tuple[Optional[Any], Optional[Any]]:
    """Min/max over non-null values; mixed uncomparable columns yield None.

    ``arr`` is the column's shared :func:`typed_array` view (or None);
    numeric columns reduce on it, everything else — including dates,
    whose typed view is epoch-days rather than the values themselves —
    falls back to python's min/max.
    """
    if not non_null:
        return None, None
    if arr is not None and not isinstance(non_null[0], datetime.date):
        kind = arr.dtype.kind
        if kind == "f":
            finite = arr[~np.isnan(arr)]
            if not finite.size:
                return None, None
            return finite.min().item(), finite.max().item()
        if kind in "biu":
            return arr.min().item(), arr.max().item()
    try:
        return min(non_null), max(non_null)
    except TypeError:
        return None, None


def profile_column(table: Table, name: str, k: int = 256, p: int = 10) -> ColumnProfile:
    values = table.column_values(name)
    non_null = [v for v in values if v is not None]
    arr = typed_array(non_null)
    keys = encode_values(non_null, prefiltered=True, typed=arr)
    sketch = ColumnSketch.from_keys(
        keys, k=k, p=p, total=len(values), nulls=len(values) - len(non_null)
    )
    minimum, maximum = _min_max(non_null, arr)
    return ColumnProfile(
        table=table.name,
        name=table.schema.column(name).name,
        dtype=table.schema.column(name).dtype,
        sketch=sketch,
        count=sketch.total,
        nulls=sketch.nulls,
        distinct_estimate=sketch.cardinality(),
        minimum=minimum,
        maximum=maximum,
    )


def profile_table(
    table: Table, fingerprint: Tuple[str, int], k: int = 256, p: int = 10
) -> TableProfile:
    """Profile every column of ``table`` (one shared columnar pass)."""
    table.as_columns()  # memoized pivot: every column read below is O(1)
    profile = TableProfile(name=table.name, fingerprint=fingerprint, row_count=table.num_rows)
    for column in table.schema:
        profile.columns[column.name.lower()] = profile_column(table, column.name, k=k, p=p)
    return profile
