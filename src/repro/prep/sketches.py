"""Column sketches: MinHash signatures and HyperLogLog registers.

One pass over a column produces a :class:`ColumnSketch` that answers the
two questions discovery keeps asking at candidate-enumeration scale:

* *How similar are two columns' value sets?*  A one-permutation MinHash
  signature (k bins over one hash pass, with optimal densification for
  sparsely filled bins) estimates Jaccard similarity as the fraction of
  matching signature slots — standard error ~= 1/sqrt(k), at O(d) build
  cost instead of classic MinHash's O(d*k).
* *How many distinct values does a column hold?*  HyperLogLog registers
  estimate cardinality within ~1.04/sqrt(m); register-wise max merges
  sketches into the union's sketch, so inclusion-exclusion gives
  intersection and containment estimates without touching the data
  again.

Values are hashed deterministically (no dependence on
``PYTHONHASHSEED``), so sketches built in different processes are
comparable and the equivalence tests are seed-stable.  Everything after
the one encoding pass is vectorized numpy.
"""

from __future__ import annotations

import datetime
import math
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Set

import numpy as np

_MASK64 = (1 << 64) - 1
_EPOCH_ORDINAL = datetime.date(1970, 1, 1).toordinal()
#: Sentinel for an unfilled signature bin (no hashed key can be relied on
#: to avoid it, but a 2^-64 collision only costs one slot of noise).
_EMPTY_SLOT = np.uint64(_MASK64)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over uint64 (wraps mod 2^64)."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(_MASK64)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _crc64(data: bytes) -> int:
    return (zlib.crc32(data) << 32) | zlib.crc32(data, 0x5EED)


def _encode_one(value: Any) -> int:
    """A deterministic 64-bit key for one non-null value.

    Integral numerics collapse to the same key regardless of storage type
    (2 == 2.0), so INTEGER/DOUBLE key columns remain join-comparable.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & _MASK64
    if isinstance(value, float):
        if value.is_integer() and abs(value) < 2**63:
            return int(value) & _MASK64
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    if isinstance(value, str):
        return _crc64(value.encode("utf-8", "surrogatepass"))
    if isinstance(value, datetime.date):
        # Days since the Unix epoch, matching the datetime64[D] fast path.
        return (value.toordinal() - _EPOCH_ORDINAL) & _MASK64
    return _crc64(repr(value).encode("utf-8", "surrogatepass"))


def distinct_values(values: Iterable[Any]) -> Set[Any]:
    """The distinct non-null (and non-NaN) values of a column."""
    out: Set[Any] = set()
    for value in values:
        if value is None:
            continue
        if isinstance(value, float) and math.isnan(value):
            continue
        out.add(value)
    return out


def typed_array(filtered: List[Any]) -> Optional[np.ndarray]:
    """A typed numpy view of a non-null column, or None for mixed columns.

    The list-to-array conversion is the expensive python boundary; callers
    build it once per column and share it between encoding and min/max.
    """
    if not filtered:
        return None
    first = filtered[0]
    try:
        if isinstance(first, datetime.date) and not isinstance(first, datetime.datetime):
            # Days since the epoch as int64: ~20x faster than numpy's
            # datetime64 conversion of python date objects.
            days = np.fromiter(
                (v.toordinal() for v in filtered), dtype=np.int64, count=len(filtered)
            )
            return days - np.int64(_EPOCH_ORDINAL)
        arr = np.asarray(filtered)
    except (TypeError, ValueError, OverflowError):
        return None
    return arr if arr.dtype.kind in "biufU" else None


def _encode_array(filtered: List[Any], arr: Optional[np.ndarray]) -> np.ndarray:
    """Vectorized encoding for homogeneous columns (raises to fall back)."""
    if arr is None:
        raise TypeError("no typed view; per-value fallback")
    kind = arr.dtype.kind
    if kind == "U":
        uniq = np.unique(arr)
        return np.fromiter((_crc64(s.encode("utf-8", "surrogatepass")) for s in uniq),
                           dtype=np.uint64, count=len(uniq))
    if kind == "b":
        return arr.astype(np.uint64)
    if kind in "iu":
        return arr.astype(np.int64).view(np.uint64)
    if kind == "f":
        arr = arr[~np.isnan(arr)]
        if not arr.size:
            return np.empty(0, dtype=np.uint64)
        integral = (np.floor(arr) == arr) & (np.abs(arr) < 2.0**63)
        as_int = np.where(integral, arr, 0.0).astype(np.int64).view(np.uint64)
        as_bits = np.ascontiguousarray(arr).view(np.uint64)
        return np.where(integral, as_int, as_bits)
    raise TypeError(f"no vector encoding for dtype kind {kind!r}")


def encode_values(
    values: Iterable[Any],
    prefiltered: bool = False,
    typed: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Non-null values as scrambled uint64 keys, sorted (duplicates kept).

    The splitmix64 scramble matters: small ints would otherwise occupy
    only the low bits, starving HLL's leading-zero ranks and making the
    MinHash bin assignment degenerate.  Duplicate keys are harmless to
    both estimators (same bin candidate, same register rank), so only
    sort order — which :meth:`ColumnSketch.from_keys` relies on — is
    guaranteed.  Callers that already dropped nulls pass
    ``prefiltered=True``; callers that already built the
    :func:`typed_array` view pass it as ``typed``.
    """
    if prefiltered:
        filtered = values if isinstance(values, list) else list(values)
    else:
        filtered = [v for v in values if v is not None]
    if not filtered:
        return np.empty(0, dtype=np.uint64)
    try:
        raw = _encode_array(filtered, typed if typed is not None else typed_array(filtered))
    except (TypeError, ValueError, OverflowError):
        distinct = distinct_values(filtered)
        if not distinct:
            return np.empty(0, dtype=np.uint64)
        raw = np.fromiter((_encode_one(v) for v in distinct), dtype=np.uint64,
                          count=len(distinct))
    if not raw.size:
        return np.empty(0, dtype=np.uint64)
    return np.sort(_splitmix64(raw))


def _bit_length_u64(w: np.ndarray) -> np.ndarray:
    """Exact per-element bit length of a uint64 array (no float rounding)."""
    bl = np.zeros(w.shape, dtype=np.int64)
    v = w.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        big = v >> np.uint64(shift)
        has = big > 0
        bl[has] += shift
        v = np.where(has, big, v)
    return bl + (v > 0)


_FAMILY_NOTE = "sketches must come from the same (k, p) family"


@dataclass
class ColumnSketch:
    """MinHash signature + HLL registers + exact null/total accounting."""

    signature: np.ndarray  # (k,) uint64 raw OPH bins; _EMPTY_SLOT marks unfilled
    registers: np.ndarray  # (m,) uint8 HLL ranks
    total: int  # values seen, including nulls
    nulls: int  # null / NaN values seen
    _dense: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @property
    def k(self) -> int:
        return int(self.signature.shape[0])

    @property
    def m(self) -> int:
        return int(self.registers.shape[0])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Sequence[Any], k: int = 256, p: int = 10) -> "ColumnSketch":
        """Sketch one column: ``k`` MinHash bins, ``2**p`` HLL registers."""
        total = len(values)
        nulls = sum(1 for v in values if v is None or (isinstance(v, float) and math.isnan(v)))
        keys = encode_values(values)
        return cls.from_keys(keys, k=k, p=p, total=total, nulls=nulls)

    @classmethod
    def from_keys(
        cls, keys: np.ndarray, k: int = 256, p: int = 10, total: int = 0, nulls: int = 0
    ) -> "ColumnSketch":
        """Sketch pre-encoded keys (one shared encoding pass per column)."""
        if k & (k - 1) or k <= 0:
            raise ValueError(f"k must be a power of two, got {k}")
        kbits = k.bit_length() - 1
        m = 1 << p
        signature = np.full(k, _EMPTY_SLOT, dtype=np.uint64)
        registers = np.zeros(m, dtype=np.uint8)
        if keys.size:
            # ``keys`` arrive sorted (np.unique), so both groupings below are
            # runs of consecutive elements — no scattered ufunc.at updates.
            # One-permutation MinHash: the key's top bits pick the bin, the
            # key itself is the candidate minimum (= first key of the run).
            bins = (keys >> np.uint64(64 - kbits)).astype(np.int64)
            starts = np.r_[0, np.flatnonzero(np.diff(bins)) + 1]
            signature[bins[starts]] = keys[starts]
            # HLL: the top p bits pick the register (shared entropy with the
            # bin bits is harmless because the rank comes from the low word);
            # per-register max via reduceat over the sorted runs.
            idx = (keys >> np.uint64(64 - p)).astype(np.int64)
            w = (keys << np.uint64(p)) & np.uint64(_MASK64)
            rank = np.where(w == 0, 64 - p + 1, 65 - _bit_length_u64(w)).astype(np.uint8)
            reg_starts = np.r_[0, np.flatnonzero(np.diff(idx)) + 1]
            registers[idx[reg_starts]] = np.maximum.reduceat(rank, reg_starts)
        return cls(signature=signature, registers=registers, total=total, nulls=nulls)

    # ------------------------------------------------------------------
    # Densification (comparison-time view of the raw OPH bins)
    # ------------------------------------------------------------------
    def dense_signature(self) -> np.ndarray:
        """The signature with empty bins filled by optimal densification.

        Each empty bin borrows the value of a pseudo-randomly probed
        filled bin; the probe sequence depends only on (bin index,
        attempt), so two sketches densify compatibly and slot-match
        counts stay an unbiased Jaccard estimator even for columns with
        fewer distinct values than bins.  Cached after the first call;
        merging always uses the raw bins.
        """
        if self._dense is not None:
            return self._dense
        sig = self.signature.copy()
        empty = np.flatnonzero(sig == _EMPTY_SLOT)
        if empty.size and empty.size < sig.size:
            k = np.uint64(sig.size)
            pending = empty
            attempt = 1
            while pending.size:
                probes = (
                    _splitmix64(
                        pending.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
                        + np.uint64(attempt)
                    )
                    % k
                ).astype(np.int64)
                donors = sig[probes]
                ok = donors != _EMPTY_SLOT
                sig[pending[ok]] = donors[ok]
                pending = pending[~ok]
                attempt += 1
        self._dense = sig
        return sig

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------
    def jaccard(self, other: "ColumnSketch") -> float:
        """Estimated Jaccard similarity of the two distinct-value sets."""
        if self.k != other.k:
            raise ValueError(_FAMILY_NOTE)
        if self.is_empty() and other.is_empty():
            return 1.0
        if self.is_empty() or other.is_empty():
            return 0.0
        return float(np.mean(self.dense_signature() == other.dense_signature()))

    def cardinality(self) -> float:
        """HLL distinct-count estimate with the small-range correction."""
        m = self.m
        if not self.registers.any():
            return 0.0
        alpha = 0.7213 / (1.0 + 1.079 / m)
        estimate = alpha * m * m / float(np.sum(np.ldexp(1.0, -self.registers.astype(np.int64))))
        zeros = int(np.count_nonzero(self.registers == 0))
        if estimate <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return estimate

    def union_cardinality(self, other: "ColumnSketch") -> float:
        if self.m != other.m:
            raise ValueError(_FAMILY_NOTE)
        return self.merge(other).cardinality()

    def intersection_cardinality(self, other: "ColumnSketch") -> float:
        """|A n B| via the MinHash Jaccard and the HLL cardinalities."""
        j = self.jaccard(other)
        inter = j / (1.0 + j) * (self.cardinality() + other.cardinality())
        return max(0.0, min(inter, self.cardinality(), other.cardinality()))

    def containment_in(self, other: "ColumnSketch") -> float:
        """Estimated |self n other| / |self| (1.0 when self subset other)."""
        card = self.cardinality()
        if card <= 0.0:
            return 0.0
        return min(1.0, self.intersection_cardinality(other) / card)

    def merge(self, other: "ColumnSketch") -> "ColumnSketch":
        """The sketch of the union of both columns' values."""
        if self.k != other.k or self.m != other.m:
            raise ValueError(_FAMILY_NOTE)
        return ColumnSketch(
            signature=np.minimum(self.signature, other.signature),
            registers=np.maximum(self.registers, other.registers),
            total=self.total + other.total,
            nulls=self.nulls + other.nulls,
        )

    def is_empty(self) -> bool:
        return not self.registers.any()


# ----------------------------------------------------------------------
# Exact oracles (the equivalence battery and the benchmark baseline)
# ----------------------------------------------------------------------
def exact_jaccard(a: Iterable[Any], b: Iterable[Any]) -> float:
    """Exact Jaccard similarity over distinct non-null values."""
    sa, sb = distinct_values(a), distinct_values(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union if union else 0.0


def exact_containment(a: Iterable[Any], b: Iterable[Any]) -> float:
    """Exact |A n B| / |A| over distinct non-null values."""
    sa, sb = distinct_values(a), distinct_values(b)
    if not sa:
        return 0.0
    return len(sa & sb) / len(sa)
