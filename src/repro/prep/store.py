"""The versioned ProfileStore: fingerprint-keyed table profiles.

Same idiom as the serving layer's ``NarrationCache``: profiles are keyed
by ``(table name, content hash)`` so an unchanged table is recognized in
one fingerprint pass and its (expensive) sketch build is skipped, while
any content change misses and supersedes the stale entry.  The store is
additionally *versioned*: every newly computed profile bumps a counter,
so downstream caches (candidate discovery, compiled alignments) can key
on ``store.version`` and invalidate exactly when any profile changed.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ..relational.catalog import Database
from ..relational.table import Table
from ..retriever.summarizer import table_fingerprint
from .profile import TableProfile, profile_table


class ProfileStore:
    """Thread-safe, fingerprint-keyed cache of :class:`TableProfile` objects."""

    def __init__(self, k: int = 256, p: int = 10) -> None:
        self.k = k
        self.p = p
        self._entries: Dict[Tuple[str, int], TableProfile] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped whenever a new profile is computed."""
        with self._lock:
            return self._version

    def profile(self, table: Table, key: Optional[Tuple[str, int]] = None) -> TableProfile:
        """The profile of ``table``, cached by content fingerprint.

        Callers that already fingerprinted the table pass ``key`` to avoid
        hashing every row a second time.
        """
        if key is None:
            key = table_fingerprint(table)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        profile = profile_table(table, key, k=self.k, p=self.p)
        with self._lock:
            # A changed table supersedes its older entries, keeping the
            # store at one entry per live table name.
            for stale in [k for k in self._entries if k[0] == table.name]:
                del self._entries[stale]
            self._entries[key] = profile
            self._version += 1
        return profile

    def profile_catalog(self, lake: Database) -> Dict[str, TableProfile]:
        """Profiles for every table of ``lake`` (warm tables hit the cache)."""
        return {table.name: self.profile(table) for table in lake.tables()}

    def peek(self, table_name: str) -> Optional[TableProfile]:
        """The cached profile for a table name, if any (no build, no counters)."""
        with self._lock:
            for (name, _), profile in self._entries.items():
                if name == table_name:
                    return profile
        return None

    def evict(self, table_name: str) -> None:
        """Drop all entries for a table name (after a catalog drop)."""
        with self._lock:
            for key in [k for k in self._entries if k[0] == table_name]:
                del self._entries[key]
                self._version += 1

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "version": self._version,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self._version += 1
