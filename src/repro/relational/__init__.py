"""An in-memory relational engine (the reproduction's DuckDB substitute).

Public API::

    from repro.relational import Database, Table

    db = Database()
    db.register(Table.from_columns("t", {"x": [1, 2, 3]}))
    result = db.execute("SELECT SUM(x) AS total FROM t")
"""

from .catalog import Database
from .csv_io import read_csv, read_csv_text, to_csv_text, write_csv
from .executor import Executor, RowExecutor
from .plan import PlanCache, normalize_sql
from .errors import (
    BindError,
    CatalogError,
    ExecutionError,
    LexError,
    ParseError,
    RelationalError,
)
from .parser import parse, parse_script
from .sql_render import expr_to_sql, select_to_sql
from .table import Column, Schema, Table
from .types import DataType, format_value

__all__ = [
    "Database",
    "Executor",
    "RowExecutor",
    "PlanCache",
    "normalize_sql",
    "Table",
    "Column",
    "Schema",
    "DataType",
    "format_value",
    "parse",
    "parse_script",
    "expr_to_sql",
    "select_to_sql",
    "read_csv",
    "read_csv_text",
    "write_csv",
    "to_csv_text",
    "RelationalError",
    "LexError",
    "ParseError",
    "BindError",
    "ExecutionError",
    "CatalogError",
]
