"""Aggregate function library.

Each aggregate is an :class:`Aggregate` with ``init``/``step``/``final``.
NULL inputs are skipped (SQL semantics); ``COUNT(*)`` counts every row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .errors import ExecutionError
from .types import sort_key


@dataclass(frozen=True)
class Aggregate:
    name: str
    num_args: int
    init: Callable[[], Any]
    step: Callable[[Any, tuple], Any]
    final: Callable[[Any], Any]
    skip_nulls: bool = True


AGGREGATES: Dict[str, Aggregate] = {}


def _register(agg: Aggregate) -> None:
    AGGREGATES[agg.name] = agg


def lookup_aggregate(name: str) -> Optional[Aggregate]:
    return AGGREGATES.get(name.lower())


def is_aggregate_name(name: str) -> bool:
    return name.lower() in AGGREGATES


# -- count -------------------------------------------------------------

_register(
    Aggregate(
        "count",
        1,
        init=lambda: 0,
        step=lambda state, args: state + 1,
        final=lambda state: state,
    )
)

# -- sum / avg ---------------------------------------------------------


def _numeric(value: Any, fn: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"{fn} requires numeric input, got {value!r}")
    return value


_register(
    Aggregate(
        "sum",
        1,
        init=lambda: None,
        step=lambda state, args: (state or 0) + _numeric(args[0], "SUM"),
        final=lambda state: state,
    )
)

_register(
    Aggregate(
        "avg",
        1,
        init=lambda: (0.0, 0),
        step=lambda state, args: (state[0] + _numeric(args[0], "AVG"), state[1] + 1),
        final=lambda state: state[0] / state[1] if state[1] else None,
    )
)

_register(
    Aggregate(
        "mean",
        1,
        init=lambda: (0.0, 0),
        step=lambda state, args: (state[0] + _numeric(args[0], "MEAN"), state[1] + 1),
        final=lambda state: state[0] / state[1] if state[1] else None,
    )
)

# -- min / max ---------------------------------------------------------


def _min_step(state: Any, args: tuple) -> Any:
    value = args[0]
    if state is None or sort_key(value) < sort_key(state):
        return value
    return state


def _max_step(state: Any, args: tuple) -> Any:
    value = args[0]
    if state is None or sort_key(value) > sort_key(state):
        return value
    return state


_register(Aggregate("min", 1, init=lambda: None, step=_min_step, final=lambda s: s))
_register(Aggregate("max", 1, init=lambda: None, step=_max_step, final=lambda s: s))

# -- median / quantiles ------------------------------------------------


def _median_final(values: List[Any]) -> Any:
    if not values:
        return None
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


_register(
    Aggregate(
        "median",
        1,
        init=list,
        step=lambda state, args: state + [_numeric(args[0], "MEDIAN")],
        final=_median_final,
    )
)


def _quantile_final(state: tuple) -> Any:
    values, q = state
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ExecutionError(f"quantile fraction must be in [0, 1], got {q}")
    ordered = sorted(values)
    # Linear interpolation between closest ranks.
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    frac = position - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


_register(
    Aggregate(
        "quantile",
        2,
        init=lambda: ([], 0.5),
        step=lambda state, args: (state[0] + [_numeric(args[0], "QUANTILE")], args[1]),
        final=_quantile_final,
    )
)

# -- variance / stddev -------------------------------------------------


def _var_state() -> list:
    return []


def _variance(values: List[float], population: bool) -> Optional[float]:
    n = len(values)
    if n == 0:
        return None
    if n == 1:
        return 0.0 if population else None
    mean = sum(values) / n
    ss = sum((v - mean) ** 2 for v in values)
    return ss / n if population else ss / (n - 1)


_register(
    Aggregate(
        "var_samp",
        1,
        init=_var_state,
        step=lambda s, a: s + [_numeric(a[0], "VAR_SAMP")],
        final=lambda s: _variance(s, population=False),
    )
)
_register(
    Aggregate(
        "var_pop",
        1,
        init=_var_state,
        step=lambda s, a: s + [_numeric(a[0], "VAR_POP")],
        final=lambda s: _variance(s, population=True),
    )
)
_register(
    Aggregate(
        "variance",
        1,
        init=_var_state,
        step=lambda s, a: s + [_numeric(a[0], "VARIANCE")],
        final=lambda s: _variance(s, population=False),
    )
)


def _stddev_final(values: List[float], population: bool) -> Optional[float]:
    var = _variance(values, population)
    return math.sqrt(var) if var is not None else None


_register(
    Aggregate(
        "stddev",
        1,
        init=_var_state,
        step=lambda s, a: s + [_numeric(a[0], "STDDEV")],
        final=lambda s: _stddev_final(s, population=False),
    )
)
_register(
    Aggregate(
        "stddev_samp",
        1,
        init=_var_state,
        step=lambda s, a: s + [_numeric(a[0], "STDDEV_SAMP")],
        final=lambda s: _stddev_final(s, population=False),
    )
)
_register(
    Aggregate(
        "stddev_pop",
        1,
        init=_var_state,
        step=lambda s, a: s + [_numeric(a[0], "STDDEV_POP")],
        final=lambda s: _stddev_final(s, population=True),
    )
)

# -- first / last / arg extrema ----------------------------------------

_SENTINEL = object()

_register(
    Aggregate(
        "first",
        1,
        init=lambda: _SENTINEL,
        step=lambda state, args: args[0] if state is _SENTINEL else state,
        final=lambda state: None if state is _SENTINEL else state,
    )
)
_register(
    Aggregate(
        "last",
        1,
        init=lambda: _SENTINEL,
        step=lambda state, args: args[0],
        final=lambda state: None if state is _SENTINEL else state,
    )
)


def _arg_min_step(state: Any, args: tuple) -> Any:
    value, key = args
    if key is None:
        return state
    if state is None or sort_key(key) < sort_key(state[1]):
        return (value, key)
    return state


def _arg_max_step(state: Any, args: tuple) -> Any:
    value, key = args
    if key is None:
        return state
    if state is None or sort_key(key) > sort_key(state[1]):
        return (value, key)
    return state


_register(
    Aggregate(
        "arg_min",
        2,
        init=lambda: None,
        step=_arg_min_step,
        final=lambda state: state[0] if state else None,
        skip_nulls=False,
    )
)
_register(
    Aggregate(
        "arg_max",
        2,
        init=lambda: None,
        step=_arg_max_step,
        final=lambda state: state[0] if state else None,
        skip_nulls=False,
    )
)

# -- string_agg / bool -------------------------------------------------

_register(
    Aggregate(
        "string_agg",
        2,
        init=lambda: ([], ","),
        step=lambda state, args: (state[0] + [str(args[0])], args[1]),
        final=lambda state: state[1].join(state[0]) if state[0] else None,
    )
)
_register(
    Aggregate(
        "bool_and",
        1,
        init=lambda: None,
        step=lambda state, args: bool(args[0]) if state is None else state and bool(args[0]),
        final=lambda state: state,
    )
)
_register(
    Aggregate(
        "bool_or",
        1,
        init=lambda: None,
        step=lambda state, args: bool(args[0]) if state is None else state or bool(args[0]),
        final=lambda state: state,
    )
)

# -- correlation -------------------------------------------------------


def _corr_final(pairs: List[tuple]) -> Optional[float]:
    n = len(pairs)
    if n < 2:
        return None
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    mx, my = sum(xs) / n, sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in pairs)
    sx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    sy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if sx == 0 or sy == 0:
        return None
    return cov / (sx * sy)


_register(
    Aggregate(
        "corr",
        2,
        init=list,
        step=lambda s, a: s + [(_numeric(a[0], "CORR"), _numeric(a[1], "CORR"))],
        final=_corr_final,
    )
)
