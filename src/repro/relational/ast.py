"""Abstract syntax tree for the SQL dialect supported by the engine.

Expression nodes implement ``key()``, a canonical hashable form used by the
planner to match GROUP BY expressions and aggregate calls inside projections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


class Expr:
    """Base class for expression nodes."""

    def key(self) -> Tuple:
        raise NotImplementedError


@dataclass
class Literal(Expr):
    value: Any

    def key(self) -> Tuple:
        return ("lit", type(self.value).__name__, self.value)


@dataclass
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def key(self) -> Tuple:
        return ("col", (self.table or "").lower(), self.name.lower())


@dataclass
class Star(Expr):
    table: Optional[str] = None

    def key(self) -> Tuple:
        return ("star", (self.table or "").lower())


@dataclass
class Unary(Expr):
    op: str  # 'NOT', '-', '+'
    operand: Expr

    def key(self) -> Tuple:
        return ("unary", self.op, self.operand.key())


@dataclass
class Binary(Expr):
    op: str  # arithmetic, comparison, logic, '||'
    left: Expr
    right: Expr

    def key(self) -> Tuple:
        return ("binary", self.op, self.left.key(), self.right.key())


@dataclass
class FunctionCall(Expr):
    name: str
    args: List[Expr]
    distinct: bool = False
    is_star: bool = False  # COUNT(*)

    def key(self) -> Tuple:
        return (
            "func",
            self.name.lower(),
            self.distinct,
            self.is_star,
            tuple(a.key() for a in self.args),
        )


@dataclass
class Case(Expr):
    operand: Optional[Expr]
    whens: List[Tuple[Expr, Expr]]
    else_: Optional[Expr]

    def key(self) -> Tuple:
        return (
            "case",
            self.operand.key() if self.operand else None,
            tuple((c.key(), r.key()) for c, r in self.whens),
            self.else_.key() if self.else_ else None,
        )


@dataclass
class Cast(Expr):
    operand: Expr
    type_name: str

    def key(self) -> Tuple:
        return ("cast", self.operand.key(), self.type_name.upper())


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def key(self) -> Tuple:
        return ("isnull", self.operand.key(), self.negated)


@dataclass
class InList(Expr):
    operand: Expr
    items: List[Expr]
    negated: bool = False

    def key(self) -> Tuple:
        return ("inlist", self.operand.key(), tuple(i.key() for i in self.items), self.negated)


@dataclass
class InSubquery(Expr):
    operand: Expr
    subquery: "Select"
    negated: bool = False

    def key(self) -> Tuple:
        return ("insub", self.operand.key(), id(self.subquery), self.negated)


@dataclass
class ScalarSubquery(Expr):
    subquery: "Select"

    def key(self) -> Tuple:
        return ("scalarsub", id(self.subquery))


@dataclass
class Exists(Expr):
    subquery: "Select"
    negated: bool = False

    def key(self) -> Tuple:
        return ("exists", id(self.subquery), self.negated)


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def key(self) -> Tuple:
        return ("between", self.operand.key(), self.low.key(), self.high.key(), self.negated)


@dataclass
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False
    case_insensitive: bool = False  # ILIKE

    def key(self) -> Tuple:
        return (
            "like",
            self.operand.key(),
            self.pattern.key(),
            self.negated,
            self.case_insensitive,
        )


# ----------------------------------------------------------------------
# Table expressions and statements
# ----------------------------------------------------------------------


class TableExpr:
    """Base class for FROM-clause items."""


@dataclass
class TableRef(TableExpr):
    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef(TableExpr):
    select: "Select"
    alias: str


JOIN_TYPES = ("INNER", "LEFT", "RIGHT", "FULL", "CROSS")


@dataclass
class Join(TableExpr):
    left: TableExpr
    right: TableExpr
    join_type: str  # one of JOIN_TYPES
    condition: Optional[Expr] = None
    using: Optional[List[str]] = None


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True
    nulls_last: bool = True


@dataclass
class SetOperation:
    op: str  # 'UNION' | 'INTERSECT' | 'EXCEPT'
    all: bool
    select: "Select"


class Statement:
    """Base class for executable statements."""


@dataclass
class Select(Statement):
    items: List[SelectItem]
    from_clause: Optional[TableExpr] = None
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    set_ops: List[SetOperation] = field(default_factory=list)
    ctes: List[Tuple[str, "Select"]] = field(default_factory=list)


@dataclass
class ColumnDef:
    name: str
    type_name: str


@dataclass
class CreateTable(Statement):
    name: str
    columns: List[ColumnDef]
    or_replace: bool = False


@dataclass
class CreateTableAs(Statement):
    name: str
    select: Select
    or_replace: bool = False


@dataclass
class InsertValues(Statement):
    table: str
    columns: Optional[List[str]]
    rows: List[List[Expr]]


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False
