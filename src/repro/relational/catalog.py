"""The catalog / database facade: named tables plus a SQL entry point.

:class:`Database` is the object the rest of the system holds: the
Materializer registers tables into it, the SQL Executor tool runs ``Q``
against it, and the datasets load their lakes into one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .errors import CatalogError
from .executor import Executor
from .parser import parse, parse_script
from .table import Table


class Database:
    """A named collection of in-memory tables with a SQL interface."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: Dict[str, Table] = {}

    # ------------------------------------------------------------------
    # Catalog protocol (used by the executor)
    # ------------------------------------------------------------------
    def resolve_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {name!r} does not exist; known tables: {self.table_names()}"
            ) from None

    def put_table(self, table: Table, replace: bool = False) -> None:
        key = table.name.lower()
        if not replace and key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------
    def register(self, table: Table, replace: bool = True) -> None:
        """Add (or replace) a table in the catalog."""
        self.put_table(table, replace=replace)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(t.name for t in self._tables.values())

    def tables(self) -> List[Table]:
        return [self._tables[k] for k in sorted(self._tables)]

    def execute(self, sql: str) -> Table:
        """Parse and execute a single SQL statement."""
        return Executor(self).execute_statement(parse(sql))

    def execute_script(self, sql: str) -> List[Table]:
        """Execute a ';'-separated script, returning one result per statement."""
        executor = Executor(self)
        return [executor.execute_statement(stmt) for stmt in parse_script(sql)]

    def query_value(self, sql: str) -> Any:
        """Execute a query expected to return a single scalar value."""
        return self.execute(sql).single_value()

    def copy(self, name: Optional[str] = None) -> "Database":
        """A shallow copy (tables are immutable-by-convention, so shared)."""
        clone = Database(name or self.name)
        clone._tables = dict(self._tables)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database({self.name!r}, tables={self.table_names()})"
