"""The catalog / database facade: named tables plus a SQL entry point.

:class:`Database` is the object the rest of the system holds: the
Materializer registers tables into it, the SQL Executor tool runs ``Q``
against it, and the datasets load their lakes into one.

The catalog is *versioned*: every DDL or insert bumps a counter, and the
built-in plan cache keys compiled plans by ``(normalized SQL, version)``.
Repeated templated queries — the Conductor's bread and butter — skip
parse+bind+plan entirely on a warm hit, and a catalog change can never
serve a stale plan.  The cache is thread-safe and shared by every
session executing against this database.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..obs import trace as obs
from . import ast
from .errors import CatalogError
from .executor import Executor
from .parser import parse, parse_script
from .plan import PlanCache, execute_statement_planned, normalize_sql, plan_select, run_plan
from .table import Table

#: Distinguishes cache keys of different Database instances sharing one
#: PlanCache: two databases can hold same-named tables with identical SQL
#: text and versions, and must never serve each other's plans.
_NAMESPACE_IDS = itertools.count(1)


class Database:
    """A named collection of in-memory tables with a SQL interface."""

    def __init__(
        self,
        name: str = "db",
        plan_cache_capacity: int = 128,
        plan_cache: Optional[PlanCache] = None,
    ):
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._version = 0
        self._plan_cache = plan_cache if plan_cache is not None else PlanCache(plan_cache_capacity)
        self._plan_ns = next(_NAMESPACE_IDS)

    # ------------------------------------------------------------------
    # Catalog protocol (used by the executor)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter bumped by every DDL/insert (plan-cache key)."""
        return self._version

    def resolve_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {name!r} does not exist; known tables: {self.table_names()}"
            ) from None

    def put_table(self, table: Table, replace: bool = False) -> None:
        key = table.name.lower()
        if not replace and key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        self._version += 1

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self._version += 1

    # ------------------------------------------------------------------
    # Convenience API
    # ------------------------------------------------------------------
    def register(self, table: Table, replace: bool = True) -> None:
        """Add (or replace) a table in the catalog."""
        self.put_table(table, replace=replace)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(t.name for t in self._tables.values())

    def tables(self) -> List[Table]:
        return [self._tables[k] for k in sorted(self._tables)]

    def execute(self, sql: str) -> Table:
        """Parse and execute a single SQL statement.

        SELECTs go through the plan cache: the key is the normalized
        statement text plus the current catalog version, so a warm hit
        runs the compiled plan without touching the parser or planner.
        """
        normalized = normalize_sql(sql)
        head = normalized.upper()
        if head.startswith("SELECT") or head.startswith("WITH"):
            key = (self._plan_ns, normalized, self._version)
            plan = self._plan_cache.get(key)
            if plan is None:
                with obs.span("sql.plan", cache="miss"):
                    stmt = parse(sql)
                    if not isinstance(stmt, ast.Select):  # e.g. odd whitespace-free DDL
                        return execute_statement_planned(self, stmt)
                    plan = plan_select(self, stmt)
                    self._plan_cache.put(key, plan)
            else:
                obs.event("plan_cache_hit")
            with obs.span("sql.run"):
                return run_plan(plan, self)
        return execute_statement_planned(self, parse(sql))

    def execute_script(self, sql: str) -> List[Table]:
        """Execute a ';'-separated script, returning one result per statement."""
        executor = Executor(self)
        return [executor.execute_statement(stmt) for stmt in parse_script(sql)]

    def query_value(self, sql: str) -> Any:
        """Execute a query expected to return a single scalar value."""
        return self.execute(sql).single_value()

    def plan_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters of the shared plan cache."""
        return self._plan_cache.stats()

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()

    def share_plan_cache(self, cache: PlanCache) -> None:
        """Adopt an externally owned plan cache (e.g. one service-wide
        cache shared by every session).  Keys are namespaced per Database
        instance, so sharing can never serve another catalog's plan."""
        self._plan_cache = cache

    def copy(self, name: Optional[str] = None) -> "Database":
        """A shallow copy (tables are immutable-by-convention, so shared)."""
        clone = Database(name or self.name)
        clone._tables = dict(self._tables)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database({self.name!r}, tables={self.table_names()})"
