"""CSV ingestion and export with type inference.

Lakes in the benchmarks are materialized as CSV files on disk (mirroring
KramaBench's file-based lakes) and loaded through this module.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Optional, Union

from .table import Table
from .types import format_value, parse_date


def _parse_cell(text: str) -> Any:
    """Infer a single cell value: NULL, bool, int, float, date, or text."""
    if text == "" or text.upper() == "NULL":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if len(text) == 10 and text[4:5] == "-" and text[7:8] == "-":
        try:
            return parse_date(text)
        except Exception:
            return text
    return text


def read_csv_text(name: str, text: str, header: bool = True) -> Table:
    """Parse CSV content into a :class:`Table` (types inferred per column)."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        return Table.from_columns(name, {})
    if header:
        names = rows[0]
        body = rows[1:]
    else:
        names = [f"column{i}" for i in range(len(rows[0]))]
        body = rows
    data = {col: [] for col in names}
    for raw in body:
        if not raw:
            continue
        padded = list(raw) + [""] * (len(names) - len(raw))
        for col, cell in zip(names, padded):
            data[col].append(_parse_cell(cell))
    return Table.from_columns(name, data)


def read_csv(path: Union[str, Path], name: Optional[str] = None, header: bool = True) -> Table:
    """Load a CSV file; the table name defaults to the file stem."""
    path = Path(path)
    return read_csv_text(name or path.stem, path.read_text(), header=header)


def write_csv(table: Table, path: Union[str, Path]) -> None:
    """Write a table as CSV (NULL renders as an empty cell)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names())
        for row in table.rows:
            writer.writerow(["" if v is None else format_value(v) for v in row])


def to_csv_text(table: Table) -> str:
    """Render a table as CSV text (used for prompt serialization)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.column_names())
    for row in table.rows:
        writer.writerow(["" if v is None else format_value(v) for v in row])
    return buffer.getvalue()
