"""Errors raised by the relational engine.

The hierarchy mirrors the stages of query processing so callers (notably the
Materializer's error-feedback loop) can react differently to a syntax error
versus a binding or runtime error.
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all relational-engine errors."""


class LexError(RelationalError):
    """Raised when the SQL text cannot be tokenized."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(RelationalError):
    """Raised when the token stream is not valid SQL."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class BindError(RelationalError):
    """Raised when names (tables, columns, functions) cannot be resolved."""


class ExecutionError(RelationalError):
    """Raised when a query fails at runtime (e.g., bad cast, div by zero)."""


class CatalogError(RelationalError):
    """Raised for catalog-level problems (missing/duplicate tables)."""
