"""Query executors: bind and evaluate statements against a catalog.

Two engines share this module's API:

* :class:`RowExecutor` — the original tuple-at-a-time tree-walking
  interpreter with hash joins for equi-join conditions.  It implements SQL
  three-valued logic, grouped aggregation, set operations, CTEs, and
  uncorrelated subqueries.  It re-binds and re-compiles every expression
  per query, which makes it the reference ("baseline") engine for the
  benchmarks and the semantic oracle for the planned engine.
* :class:`Executor` — the default engine: lowers the AST once into a
  logical plan (:mod:`repro.relational.plan`) whose operators evaluate
  compiled expression closures column-at-a-time
  (:mod:`repro.relational.vectorized`).  Plans are cacheable keyed by
  (normalized SQL, catalog version), so repeated templated queries skip
  parse+bind+plan entirely.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from . import ast
from .aggregates import Aggregate, lookup_aggregate
from .errors import BindError, ExecutionError
from .functions import lookup_scalar
from .sql_render import derive_column_name, expr_to_sql
from .table import Column, Schema, Table
from .types import (
    cast_value,
    common_type,
    compare_values,
    infer_column_type,
    parse_type_name,
    sort_key,
)

Row = Tuple[Any, ...]


class _Binding:
    """Maps (qualifier, column) names to positions in the current row."""

    def __init__(self, entries: Sequence[Tuple[Optional[str], str]]):
        self.entries: List[Tuple[Optional[str], str]] = list(entries)

    @classmethod
    def for_table(cls, qualifier: Optional[str], schema: Schema) -> "_Binding":
        q = qualifier.lower() if qualifier else None
        return cls([(q, col.name) for col in schema])

    def merge(self, other: "_Binding") -> "_Binding":
        return _Binding(self.entries + other.entries)

    def resolve(self, name: str, table: Optional[str] = None) -> int:
        target = name.lower()
        if table is not None:
            qualifier = table.lower()
            matches = [
                i
                for i, (q, n) in enumerate(self.entries)
                if q == qualifier and n.lower() == target
            ]
            if not matches:
                raise BindError(f"column {table}.{name} not found")
        else:
            matches = [i for i, (q, n) in enumerate(self.entries) if n.lower() == target]
            if not matches:
                available = sorted({n for _, n in self.entries})
                raise BindError(f"column {name!r} not found; available: {available}")
        if len(matches) > 1:
            raise BindError(f"column reference {name!r} is ambiguous")
        return matches[0]

    def star_indices(self, table: Optional[str] = None) -> List[int]:
        if table is None:
            return list(range(len(self.entries)))
        qualifier = table.lower()
        indices = [i for i, (q, _) in enumerate(self.entries) if q == qualifier]
        if not indices:
            raise BindError(f"unknown table alias in star expansion: {table!r}")
        return indices

    def names(self) -> List[str]:
        return [n for _, n in self.entries]


def _like_regex(pattern: str, case_insensitive: bool) -> "re.Pattern[str]":
    regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    flags = re.IGNORECASE | re.DOTALL if case_insensitive else re.DOTALL
    return re.compile(f"^{regex}$", flags)


def _and3(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _or3(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _to_bool(value: Any, context: str) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExecutionError(f"{context} must be a boolean, got {value!r}")


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FunctionCall):
        if lookup_aggregate(expr.name):
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.Unary):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Binary):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.Case):
        parts: List[ast.Expr] = [c for c, _ in expr.whens] + [r for _, r in expr.whens]
        if expr.operand:
            parts.append(expr.operand)
        if expr.else_:
            parts.append(expr.else_)
        return any(_contains_aggregate(p) for p in parts)
    if isinstance(expr, ast.Cast):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.operand) or any(_contains_aggregate(i) for i in expr.items)
    if isinstance(expr, ast.Between):
        return any(_contains_aggregate(e) for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, ast.Like):
        return _contains_aggregate(expr.operand) or _contains_aggregate(expr.pattern)
    if isinstance(expr, (ast.InSubquery, ast.ScalarSubquery, ast.Exists)):
        return False
    return False


def _collect_aggregates(expr: ast.Expr, out: Dict[Tuple, ast.FunctionCall]) -> None:
    if isinstance(expr, ast.FunctionCall):
        if lookup_aggregate(expr.name):
            out.setdefault(expr.key(), expr)
            return
        for a in expr.args:
            _collect_aggregates(a, out)
        return
    if isinstance(expr, ast.Unary):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, ast.Case):
        if expr.operand:
            _collect_aggregates(expr.operand, out)
        for cond, result in expr.whens:
            _collect_aggregates(cond, out)
            _collect_aggregates(result, out)
        if expr.else_:
            _collect_aggregates(expr.else_, out)
    elif isinstance(expr, ast.Cast):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.IsNull):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.InList):
        _collect_aggregates(expr.operand, out)
        for item in expr.items:
            _collect_aggregates(item, out)
    elif isinstance(expr, ast.Between):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.low, out)
        _collect_aggregates(expr.high, out)
    elif isinstance(expr, ast.Like):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.pattern, out)


class RowExecutor:
    """Executes parsed statements tuple-at-a-time (the baseline engine)."""

    def __init__(self, catalog: "CatalogProtocol"):
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def execute_statement(self, stmt: ast.Statement) -> Table:
        if isinstance(stmt, ast.Select):
            return self.execute_select(stmt, {})
        if isinstance(stmt, ast.CreateTableAs):
            result = self.execute_select(stmt.select, {}).renamed(stmt.name)
            self.catalog.put_table(result, replace=stmt.or_replace)
            return result
        if isinstance(stmt, ast.CreateTable):
            columns = [Column(c.name, parse_type_name(c.type_name)) for c in stmt.columns]
            table = Table.empty(stmt.name, columns)
            self.catalog.put_table(table, replace=stmt.or_replace)
            return table
        if isinstance(stmt, ast.InsertValues):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.DropTable):
            self.catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
            return Table.empty(stmt.name, [])
        raise ExecutionError(f"unsupported statement: {type(stmt).__name__}")

    def _execute_insert(self, stmt: ast.InsertValues) -> Table:
        table = self.catalog.resolve_table(stmt.table)
        names = stmt.columns or table.column_names()
        indices = [table.schema.index_of(n) for n in names]
        empty_binding = _Binding([])
        new_rows = list(table.rows)
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(indices):
                raise ExecutionError(
                    f"INSERT has {len(row_exprs)} values for {len(indices)} columns"
                )
            # Columns not mentioned default to NULL.
            row: List[Any] = [None] * len(table.schema)
            for idx, expr in zip(indices, row_exprs):
                value = self._compile(expr, empty_binding, {})(())
                row[idx] = value
            new_rows.append(tuple(row))
        updated = Table(table.name, table.schema, new_rows)
        self.catalog.put_table(updated, replace=True)
        return updated

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def execute_select(self, select: ast.Select, env: Dict[str, Table]) -> Table:
        local_env = dict(env)
        for name, sub in select.ctes:
            local_env[name.lower()] = self.execute_select(sub, local_env).renamed(name)

        result = self._execute_select_core(select, local_env)
        for set_op in select.set_ops:
            right = self._execute_select_core(set_op.select, local_env)
            result = self._apply_set_op(result, set_op.op, set_op.all, right)
        if select.set_ops:
            # ORDER BY / LIMIT on the combined result (keys must be output cols).
            if select.order_by:
                result = self._order_output_table(result, select.order_by)
            result = self._apply_limit(result, select.limit, select.offset)
        return result

    def _execute_select_core(self, select: ast.Select, env: Dict[str, Table]) -> Table:
        # 1. FROM
        if select.from_clause is None:
            binding = _Binding([])
            rows: List[Row] = [()]
        else:
            binding, rows = self._execute_table_expr(select.from_clause, env)

        # 2. WHERE
        if select.where is not None:
            predicate = self._compile(select.where, binding, env)
            rows = [row for row in rows if _to_bool(predicate(row), "WHERE clause") is True]

        has_aggregates = (
            bool(select.group_by)
            or any(_contains_aggregate(item.expr) for item in select.items)
            or (select.having is not None and _contains_aggregate(select.having))
        )

        if has_aggregates:
            table = self._execute_grouped(select, binding, rows, env)
        else:
            if select.having is not None:
                raise BindError("HAVING requires GROUP BY or aggregates")
            table = self._execute_projection(select, binding, rows, env)

        if select.distinct:
            table = self._distinct(table)

        if select.order_by and not select.set_ops:
            table = self._order_table(select, table, binding, rows, env, has_aggregates)
        if not select.set_ops:
            table = self._apply_limit(table, select.limit, select.offset)
        return table

    # ------------------------------------------------------------------
    # FROM clause evaluation
    # ------------------------------------------------------------------
    def _execute_table_expr(
        self, texpr: ast.TableExpr, env: Dict[str, Table]
    ) -> Tuple[_Binding, List[Row]]:
        if isinstance(texpr, ast.TableRef):
            lowered = texpr.name.lower()
            table = env.get(lowered)
            if table is None:
                table = self.catalog.resolve_table(texpr.name)
            binding = _Binding.for_table(texpr.binding_name, table.schema)
            # Downstream operators only read the row list (filters and
            # joins build new lists), so hand out the table's storage
            # directly instead of copying it on every scan.
            return binding, table.rows
        if isinstance(texpr, ast.SubqueryRef):
            table = self.execute_select(texpr.select, env)
            binding = _Binding.for_table(texpr.alias, table.schema)
            return binding, table.rows
        if isinstance(texpr, ast.Join):
            return self._execute_join(texpr, env)
        raise ExecutionError(f"unsupported FROM item: {type(texpr).__name__}")

    def _execute_join(
        self, join: ast.Join, env: Dict[str, Table]
    ) -> Tuple[_Binding, List[Row]]:
        left_binding, left_rows = self._execute_table_expr(join.left, env)
        right_binding, right_rows = self._execute_table_expr(join.right, env)
        merged = left_binding.merge(right_binding)

        if join.join_type == "CROSS":
            rows = [l + r for l in left_rows for r in right_rows]
            return merged, rows

        condition = join.condition
        using_cols = join.using or []
        if using_cols:
            # USING needs explicit left/right resolution; build index pairs below.
            condition = None

        equi_pairs: List[Tuple[int, int]] = []
        residual: Optional[Callable[[Row], Any]] = None
        if using_cols:
            for col in using_cols:
                left_idx = _Binding(left_binding.entries).resolve(col)
                right_idx = _Binding(right_binding.entries).resolve(col)
                equi_pairs.append((left_idx, right_idx))
        elif condition is not None:
            equi_pairs, residual_expr = self._split_equi_condition(
                condition, left_binding, right_binding
            )
            if residual_expr is not None:
                residual = self._compile(residual_expr, merged, env)

        left_width = len(left_binding.entries)
        right_width = len(right_binding.entries)

        if equi_pairs:
            rows, matched_left, matched_right = self._hash_join(
                left_rows, right_rows, equi_pairs, residual
            )
        else:
            rows = []
            matched_left = set()
            matched_right = set()
            predicate = (
                self._compile(condition, merged, env) if condition is not None else None
            )
            for i, l in enumerate(left_rows):
                for j, r in enumerate(right_rows):
                    combined = l + r
                    if predicate is None or _to_bool(predicate(combined), "JOIN ON") is True:
                        rows.append(combined)
                        matched_left.add(i)
                        matched_right.add(j)

        if join.join_type in ("LEFT", "FULL"):
            null_right = (None,) * right_width
            for i, l in enumerate(left_rows):
                if i not in matched_left:
                    rows.append(l + null_right)
        if join.join_type in ("RIGHT", "FULL"):
            null_left = (None,) * left_width
            for j, r in enumerate(right_rows):
                if j not in matched_right:
                    rows.append(null_left + r)

        if using_cols:
            # SQL USING removes the duplicate right-side join columns.
            drop = {left_width + _Binding(right_binding.entries).resolve(col) for col in using_cols}
            keep = [i for i in range(left_width + right_width) if i not in drop]
            rows = [tuple(row[i] for i in keep) for row in rows]
            merged = _Binding([merged.entries[i] for i in keep])
        return merged, rows

    def _split_equi_condition(
        self, condition: ast.Expr, left: _Binding, right: _Binding
    ) -> Tuple[List[Tuple[int, int]], Optional[ast.Expr]]:
        """Extract `left.col = right.col` conjuncts for hash joins."""
        conjuncts: List[ast.Expr] = []

        def flatten(expr: ast.Expr) -> None:
            if isinstance(expr, ast.Binary) and expr.op == "AND":
                flatten(expr.left)
                flatten(expr.right)
            else:
                conjuncts.append(expr)

        flatten(condition)
        pairs: List[Tuple[int, int]] = []
        leftovers: List[ast.Expr] = []
        for conjunct in conjuncts:
            pair = self._try_equi_pair(conjunct, left, right)
            if pair is not None:
                pairs.append(pair)
            else:
                leftovers.append(conjunct)
        residual: Optional[ast.Expr] = None
        for expr in leftovers:
            residual = expr if residual is None else ast.Binary("AND", residual, expr)
        return pairs, residual

    def _try_equi_pair(
        self, expr: ast.Expr, left: _Binding, right: _Binding
    ) -> Optional[Tuple[int, int]]:
        if not (isinstance(expr, ast.Binary) and expr.op == "="):
            return None
        sides = []
        for operand in (expr.left, expr.right):
            if not isinstance(operand, ast.ColumnRef):
                return None
            side = None
            for binding, tag in ((left, "L"), (right, "R")):
                try:
                    idx = binding.resolve(operand.name, operand.table)
                    side = (tag, idx)
                    break
                except BindError:
                    continue
            if side is None:
                return None
            sides.append(side)
        tags = {s[0] for s in sides}
        if tags != {"L", "R"}:
            return None
        left_idx = next(idx for tag, idx in sides if tag == "L")
        right_idx = next(idx for tag, idx in sides if tag == "R")
        return (left_idx, right_idx)

    @staticmethod
    def _hash_join(
        left_rows: List[Row],
        right_rows: List[Row],
        pairs: List[Tuple[int, int]],
        residual: Optional[Callable[[Row], Any]],
    ) -> Tuple[List[Row], Set[int], Set[int]]:
        index: Dict[Tuple, List[int]] = {}
        right_keys = [p[1] for p in pairs]
        for j, row in enumerate(right_rows):
            key = tuple(row[k] for k in right_keys)
            if any(v is None for v in key):
                continue  # NULL never equi-joins.
            index.setdefault(key, []).append(j)
        rows: List[Row] = []
        matched_left: Set[int] = set()
        matched_right: Set[int] = set()
        left_keys = [p[0] for p in pairs]
        for i, l in enumerate(left_rows):
            key = tuple(l[k] for k in left_keys)
            if any(v is None for v in key):
                continue
            for j in index.get(key, ()):
                combined = l + right_rows[j]
                if residual is not None and _to_bool(residual(combined), "JOIN ON") is not True:
                    continue
                rows.append(combined)
                matched_left.add(i)
                matched_right.add(j)
        return rows, matched_left, matched_right

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def _expand_items(
        self, items: List[ast.SelectItem], binding: _Binding
    ) -> List[Tuple[ast.Expr, str]]:
        expanded: List[Tuple[ast.Expr, str]] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for idx in binding.star_indices(item.expr.table):
                    qualifier, name = binding.entries[idx]
                    expanded.append((ast.ColumnRef(name, qualifier), name))
            else:
                name = item.alias or derive_column_name(item.expr)
                expanded.append((item.expr, name))
        return expanded

    def _execute_projection(
        self,
        select: ast.Select,
        binding: _Binding,
        rows: List[Row],
        env: Dict[str, Table],
    ) -> Table:
        expanded = self._expand_items(select.items, binding)
        compiled = [self._compile(expr, binding, env) for expr, _ in expanded]
        out_rows = [tuple(fn(row) for fn in compiled) for row in rows]
        columns = [
            Column(name, infer_column_type(row[i] for row in out_rows))
            for i, (_, name) in enumerate(expanded)
        ]
        return Table("result", Schema(columns), out_rows)

    # ------------------------------------------------------------------
    # Grouped aggregation
    # ------------------------------------------------------------------
    def _resolve_group_exprs(self, select: ast.Select) -> List[ast.Expr]:
        """GROUP BY items may be ordinals or select-list aliases."""
        resolved: List[ast.Expr] = []
        for expr in select.group_by:
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                ordinal = expr.value
                if not 1 <= ordinal <= len(select.items):
                    raise BindError(f"GROUP BY ordinal {ordinal} out of range")
                resolved.append(select.items[ordinal - 1].expr)
                continue
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                alias_match = next(
                    (
                        item.expr
                        for item in select.items
                        if item.alias and item.alias.lower() == expr.name.lower()
                    ),
                    None,
                )
                if alias_match is not None and not isinstance(alias_match, ast.Star):
                    resolved.append(alias_match)
                    continue
            resolved.append(expr)
        return resolved

    def _resolve_output_ref(self, expr: ast.Expr, select: ast.Select) -> ast.Expr:
        """Resolve ORDER BY aliases and ordinals to select-list expressions."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value
            if 1 <= ordinal <= len(select.items):
                target = select.items[ordinal - 1].expr
                if not isinstance(target, ast.Star):
                    return target
            return expr
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in select.items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    if not isinstance(item.expr, ast.Star):
                        return item.expr
        return expr

    def _execute_grouped(
        self,
        select: ast.Select,
        binding: _Binding,
        rows: List[Row],
        env: Dict[str, Table],
    ) -> Table:
        group_exprs = self._resolve_group_exprs(select)
        key_fns = [self._compile(e, binding, env) for e in group_exprs]

        # Gather all aggregate calls from items, HAVING, and ORDER BY.
        agg_calls: Dict[Tuple, ast.FunctionCall] = {}
        expanded = self._expand_items(select.items, binding)
        for expr, _ in expanded:
            _collect_aggregates(expr, agg_calls)
        if select.having is not None:
            _collect_aggregates(select.having, agg_calls)
        order_items = [
            ast.OrderItem(self._resolve_output_ref(item.expr, select), item.ascending, item.nulls_last)
            for item in select.order_by
        ]
        for order_item in order_items:
            _collect_aggregates(order_item.expr, agg_calls)

        agg_keys = list(agg_calls)
        agg_specs: List[Tuple[Aggregate, List[Callable[[Row], Any]], bool, bool]] = []
        for key in agg_keys:
            call = agg_calls[key]
            agg = lookup_aggregate(call.name)
            assert agg is not None
            if call.is_star:
                if agg.name != "count":
                    raise BindError(f"{call.name}(*) is not supported")
                arg_fns: List[Callable[[Row], Any]] = []
            else:
                if len(call.args) != agg.num_args:
                    raise BindError(
                        f"aggregate {agg.name} expects {agg.num_args} args, got {len(call.args)}"
                    )
                arg_fns = [self._compile(a, binding, env) for a in call.args]
            agg_specs.append((agg, arg_fns, call.is_star, call.distinct))

        # Group rows.
        groups: Dict[Tuple, List[Row]] = {}
        group_order: List[Tuple] = []
        if group_exprs:
            for row in rows:
                key = tuple(fn(row) for fn in key_fns)
                hashable = tuple(sort_key(v) for v in key)
                if hashable not in groups:
                    groups[hashable] = []
                    group_order.append(hashable)
                groups[hashable].append(row)
            key_values = {}
            for row in rows:
                key = tuple(fn(row) for fn in key_fns)
                key_values.setdefault(tuple(sort_key(v) for v in key), key)
        else:
            groups[()] = list(rows)
            group_order.append(())
            key_values = {(): ()}

        # Compute aggregate results per group.
        group_rows: List[Tuple[Tuple, List[Any]]] = []
        for hashable in group_order:
            member_rows = groups[hashable]
            agg_results: List[Any] = []
            for agg, arg_fns, is_star, distinct in agg_specs:
                state = agg.init()
                seen: Set[Tuple] = set()
                for row in member_rows:
                    if is_star:
                        args: Tuple = ()
                    else:
                        args = tuple(fn(row) for fn in arg_fns)
                        if agg.skip_nulls and (not args or args[0] is None):
                            continue
                    if distinct:
                        marker = tuple(sort_key(a) for a in args)
                        if marker in seen:
                            continue
                        seen.add(marker)
                    state = agg.step(state, args)
                agg_results.append(agg.final(state))
            group_rows.append((key_values[hashable], agg_results))

        group_key_map = {e.key(): i for i, e in enumerate(group_exprs)}
        agg_key_map = {k: i for i, k in enumerate(agg_keys)}

        def eval_in_group(expr: ast.Expr, key: Tuple, agg_results: List[Any], rep: Optional[Row]) -> Any:
            return self._eval_group_expr(
                expr, key, agg_results, group_key_map, agg_key_map, binding, env, rep
            )

        # HAVING
        survivors: List[Tuple[Tuple, List[Any], Optional[Row]]] = []
        for hashable, (key, agg_results) in zip(group_order, group_rows):
            rep = groups[hashable][0] if groups[hashable] else None
            if select.having is not None:
                verdict = _to_bool(
                    eval_in_group(select.having, key, agg_results, rep), "HAVING clause"
                )
                if verdict is not True:
                    continue
            survivors.append((key, agg_results, rep))

        out_rows: List[Row] = []
        order_keys: List[Tuple] = []
        for key, agg_results, rep in survivors:
            out_rows.append(
                tuple(eval_in_group(expr, key, agg_results, rep) for expr, _ in expanded)
            )
            if order_items:
                order_keys.append(
                    tuple(
                        eval_in_group(item.expr, key, agg_results, rep)
                        for item in order_items
                    )
                )

        columns = [
            Column(name, infer_column_type(row[i] for row in out_rows))
            for i, (_, name) in enumerate(expanded)
        ]
        table = Table("result", Schema(columns), out_rows)
        if order_items:
            table = self._sort_with_keys(table, order_keys, order_items)
        return table

    def _eval_group_expr(
        self,
        expr: ast.Expr,
        key: Tuple,
        agg_results: List[Any],
        group_key_map: Dict[Tuple, int],
        agg_key_map: Dict[Tuple, int],
        binding: _Binding,
        env: Dict[str, Table],
        representative: Optional[Row],
    ) -> Any:
        ekey = expr.key()
        if ekey in group_key_map:
            return key[group_key_map[ekey]]
        if ekey in agg_key_map:
            return agg_results[agg_key_map[ekey]]
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Unary):
            inner = self._eval_group_expr(
                expr.operand, key, agg_results, group_key_map, agg_key_map, binding, env, representative
            )
            return _apply_unary(expr.op, inner)
        if isinstance(expr, ast.Binary):
            return _apply_binary(
                expr.op,
                lambda: self._eval_group_expr(
                    expr.left, key, agg_results, group_key_map, agg_key_map, binding, env, representative
                ),
                lambda: self._eval_group_expr(
                    expr.right, key, agg_results, group_key_map, agg_key_map, binding, env, representative
                ),
            )
        if isinstance(expr, ast.Cast):
            inner = self._eval_group_expr(
                expr.operand, key, agg_results, group_key_map, agg_key_map, binding, env, representative
            )
            return cast_value(inner, parse_type_name(expr.type_name))
        if isinstance(expr, ast.FunctionCall) and not lookup_aggregate(expr.name):
            scalar = lookup_scalar(expr.name)
            if scalar is None:
                raise BindError(f"unknown function {expr.name!r}")
            scalar.check_arity(len(expr.args))
            args = [
                self._eval_group_expr(
                    a, key, agg_results, group_key_map, agg_key_map, binding, env, representative
                )
                for a in expr.args
            ]
            return scalar.invoke(args)
        if isinstance(expr, ast.Case):
            return self._eval_group_case(
                expr, key, agg_results, group_key_map, agg_key_map, binding, env, representative
            )
        if isinstance(expr, ast.IsNull):
            inner = self._eval_group_expr(
                expr.operand, key, agg_results, group_key_map, agg_key_map, binding, env, representative
            )
            return (inner is not None) if expr.negated else (inner is None)
        if isinstance(expr, ast.ColumnRef):
            raise BindError(
                f"column {expr.name!r} must appear in GROUP BY or inside an aggregate"
            )
        raise BindError(f"expression not allowed in aggregate context: {expr_to_sql(expr)}")

    def _eval_group_case(
        self, expr: ast.Case, key, agg_results, group_key_map, agg_key_map, binding, env, rep
    ) -> Any:
        def ev(e: ast.Expr) -> Any:
            return self._eval_group_expr(
                e, key, agg_results, group_key_map, agg_key_map, binding, env, rep
            )

        if expr.operand is not None:
            subject = ev(expr.operand)
            for cond, result in expr.whens:
                if compare_values(subject, ev(cond)) == 0:
                    return ev(result)
        else:
            for cond, result in expr.whens:
                if _to_bool(ev(cond), "CASE WHEN") is True:
                    return ev(result)
        return ev(expr.else_) if expr.else_ is not None else None

    # ------------------------------------------------------------------
    # DISTINCT / ORDER BY / LIMIT
    # ------------------------------------------------------------------
    @staticmethod
    def _distinct(table: Table) -> Table:
        seen: Set[Tuple] = set()
        rows: List[Row] = []
        for row in table.rows:
            marker = tuple(sort_key(v) for v in row)
            if marker not in seen:
                seen.add(marker)
                rows.append(row)
        return Table(table.name, table.schema, rows)

    def _order_table(
        self,
        select: ast.Select,
        table: Table,
        binding: _Binding,
        rows: List[Row],
        env: Dict[str, Table],
        aggregated: bool,
    ) -> Table:
        if aggregated:
            return table  # Already ordered inside _execute_grouped.
        order_keys: List[Tuple] = []
        key_fns: List[Callable[[Row], Any]] = []
        use_output: List[bool] = []
        for item in select.order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                ordinal = expr.value
                if not 1 <= ordinal <= len(table.schema):
                    raise BindError(f"ORDER BY ordinal {ordinal} out of range")
                key_fns.append(lambda row, i=ordinal - 1: row[i])
                use_output.append(True)
                continue
            if isinstance(expr, ast.ColumnRef) and expr.table is None and table.schema.has_column(expr.name):
                idx = table.schema.index_of(expr.name)
                key_fns.append(lambda row, i=idx: row[i])
                use_output.append(True)
                continue
            key_fns.append(self._compile(expr, binding, env))
            use_output.append(False)

        if select.distinct and not all(use_output):
            raise BindError("ORDER BY expressions must appear in SELECT DISTINCT output")

        for out_row, in_row in zip(table.rows, rows):
            order_keys.append(
                tuple(
                    fn(out_row) if out else fn(in_row)
                    for fn, out in zip(key_fns, use_output)
                )
            )
        return self._sort_with_keys(table, order_keys, select.order_by)

    def _order_output_table(self, table: Table, order_by: List[ast.OrderItem]) -> Table:
        keys: List[Tuple] = []
        fns: List[Callable[[Row], Any]] = []
        for item in order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                fns.append(lambda row, i=expr.value - 1: row[i])
            elif isinstance(expr, ast.ColumnRef):
                idx = table.schema.index_of(expr.name)
                fns.append(lambda row, i=idx: row[i])
            else:
                raise BindError("ORDER BY after set operations must use output columns")
        for row in table.rows:
            keys.append(tuple(fn(row) for fn in fns))
        return self._sort_with_keys(table, keys, order_by)

    @staticmethod
    def _sort_with_keys(
        table: Table, keys: List[Tuple], order_by: List[ast.OrderItem]
    ) -> Table:
        indexed = list(range(len(table.rows)))

        def key_for(i: int) -> Tuple:
            parts = []
            for value, item in zip(keys[i], order_by):
                null_rank = 1 if item.nulls_last else -1
                base = sort_key(value)
                if value is None:
                    parts.append((null_rank, (0, 0.0, "")))
                else:
                    if item.ascending:
                        parts.append((0, base))
                    else:
                        parts.append((0, _InvertedKey(base)))
            return tuple(parts)

        indexed.sort(key=key_for)
        return Table(table.name, table.schema, [table.rows[i] for i in indexed])

    @staticmethod
    def _apply_limit(table: Table, limit: Optional[int], offset: Optional[int]) -> Table:
        rows = table.rows
        if offset:
            rows = rows[offset:]
        if limit is not None:
            rows = rows[:limit]
        return Table(table.name, table.schema, rows)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def _apply_set_op(self, left: Table, op: str, all_flag: bool, right: Table) -> Table:
        if len(left.schema) != len(right.schema):
            raise BindError(
                f"{op} requires equal column counts ({len(left.schema)} vs {len(right.schema)})"
            )
        columns = [
            Column(lc.name, common_type(lc.dtype, rc.dtype))
            for lc, rc in zip(left.schema, right.schema)
        ]
        schema = Schema(columns)
        lrows, rrows = left.rows, right.rows
        marker = lambda row: tuple(sort_key(v) for v in row)  # noqa: E731
        if op == "UNION":
            rows = lrows + rrows
            if not all_flag:
                return self._distinct(Table("result", schema, rows))
            return Table("result", schema, rows)
        if op == "INTERSECT":
            right_set = {marker(r) for r in rrows}
            rows = [r for r in lrows if marker(r) in right_set]
            result = Table("result", schema, rows)
            return result if all_flag else self._distinct(result)
        if op == "EXCEPT":
            right_set = {marker(r) for r in rrows}
            rows = [r for r in lrows if marker(r) not in right_set]
            result = Table("result", schema, rows)
            return result if all_flag else self._distinct(result)
        raise ExecutionError(f"unknown set operation {op!r}")

    # ------------------------------------------------------------------
    # Expression compilation
    # ------------------------------------------------------------------
    def _compile(
        self, expr: ast.Expr, binding: _Binding, env: Dict[str, Table]
    ) -> Callable[[Row], Any]:
        if isinstance(expr, ast.Literal):
            value = expr.value
            return lambda row: value
        if isinstance(expr, ast.ColumnRef):
            idx = binding.resolve(expr.name, expr.table)
            return lambda row: row[idx]
        if isinstance(expr, ast.Star):
            raise BindError("'*' is only allowed in SELECT lists and COUNT(*)")
        if isinstance(expr, ast.Unary):
            inner = self._compile(expr.operand, binding, env)
            op = expr.op
            return lambda row: _apply_unary(op, inner(row))
        if isinstance(expr, ast.Binary):
            left = self._compile(expr.left, binding, env)
            right = self._compile(expr.right, binding, env)
            op = expr.op
            return lambda row: _apply_binary(op, lambda: left(row), lambda: right(row))
        if isinstance(expr, ast.FunctionCall):
            if lookup_aggregate(expr.name):
                raise BindError(
                    f"aggregate {expr.name} is not allowed here (no GROUP BY context)"
                )
            scalar = lookup_scalar(expr.name)
            if scalar is None:
                raise BindError(f"unknown function {expr.name!r}")
            scalar.check_arity(len(expr.args))
            arg_fns = [self._compile(a, binding, env) for a in expr.args]
            return lambda row: scalar.invoke([fn(row) for fn in arg_fns])
        if isinstance(expr, ast.Case):
            return self._compile_case(expr, binding, env)
        if isinstance(expr, ast.Cast):
            inner = self._compile(expr.operand, binding, env)
            target = parse_type_name(expr.type_name)
            return lambda row: cast_value(inner(row), target)
        if isinstance(expr, ast.IsNull):
            inner = self._compile(expr.operand, binding, env)
            if expr.negated:
                return lambda row: inner(row) is not None
            return lambda row: inner(row) is None
        if isinstance(expr, ast.InList):
            operand = self._compile(expr.operand, binding, env)
            item_fns = [self._compile(i, binding, env) for i in expr.items]
            negated = expr.negated
            def in_list(row: Row) -> Optional[bool]:
                value = operand(row)
                if value is None:
                    return None
                saw_null = False
                found = False
                for fn in item_fns:
                    item = fn(row)
                    if item is None:
                        saw_null = True
                    elif compare_values(value, item) == 0:
                        found = True
                        break
                if found:
                    result: Optional[bool] = True
                elif saw_null:
                    result = None
                else:
                    result = False
                if result is None:
                    return None
                return (not result) if negated else result
            return in_list
        if isinstance(expr, ast.InSubquery):
            operand = self._compile(expr.operand, binding, env)
            subquery, negated = expr.subquery, expr.negated
            cache: Dict[str, Any] = {}
            def in_subquery(row: Row) -> Optional[bool]:
                if "values" not in cache:
                    table = self.execute_select(subquery, env)
                    if len(table.schema) != 1:
                        raise ExecutionError("IN subquery must return one column")
                    values = set()
                    saw_null = False
                    for (v,) in table.rows:
                        if v is None:
                            saw_null = True
                        else:
                            values.add(sort_key(v))
                    cache["values"] = values
                    cache["saw_null"] = saw_null
                value = operand(row)
                if value is None:
                    return None
                found = sort_key(value) in cache["values"]
                if found:
                    result: Optional[bool] = True
                elif cache["saw_null"]:
                    result = None
                else:
                    result = False
                if result is None:
                    return None
                return (not result) if negated else result
            return in_subquery
        if isinstance(expr, ast.ScalarSubquery):
            subquery = expr.subquery
            cache: Dict[str, Any] = {}
            def scalar_subquery(row: Row) -> Any:
                if "value" not in cache:
                    table = self.execute_select(subquery, env)
                    if len(table.schema) != 1:
                        raise ExecutionError("scalar subquery must return one column")
                    if table.num_rows > 1:
                        raise ExecutionError("scalar subquery returned more than one row")
                    cache["value"] = table.rows[0][0] if table.rows else None
                return cache["value"]
            return scalar_subquery
        if isinstance(expr, ast.Exists):
            subquery, negated = expr.subquery, expr.negated
            cache: Dict[str, Any] = {}
            def exists(row: Row) -> bool:
                if "value" not in cache:
                    table = self.execute_select(subquery, env)
                    cache["value"] = table.num_rows > 0
                return (not cache["value"]) if negated else cache["value"]
            return exists
        if isinstance(expr, ast.Between):
            operand = self._compile(expr.operand, binding, env)
            low = self._compile(expr.low, binding, env)
            high = self._compile(expr.high, binding, env)
            negated = expr.negated
            def between(row: Row) -> Optional[bool]:
                value = operand(row)
                lo, hi = low(row), high(row)
                c1 = compare_values(value, lo)
                c2 = compare_values(value, hi)
                if c1 is None or c2 is None:
                    return None
                result = c1 >= 0 and c2 <= 0
                return (not result) if negated else result
            return between
        if isinstance(expr, ast.Like):
            operand = self._compile(expr.operand, binding, env)
            pattern_fn = self._compile(expr.pattern, binding, env)
            negated, ci = expr.negated, expr.case_insensitive
            cache: Dict[str, "re.Pattern[str]"] = {}
            def like(row: Row) -> Optional[bool]:
                value = operand(row)
                pattern = pattern_fn(row)
                if value is None or pattern is None:
                    return None
                if not isinstance(value, str):
                    value = str(value)
                regex = cache.get(pattern)
                if regex is None:
                    regex = _like_regex(pattern, ci)
                    cache[pattern] = regex
                result = bool(regex.match(value))
                return (not result) if negated else result
            return like
        raise BindError(f"cannot compile expression: {expr!r}")

    def _compile_case(
        self, expr: ast.Case, binding: _Binding, env: Dict[str, Table]
    ) -> Callable[[Row], Any]:
        operand_fn = (
            self._compile(expr.operand, binding, env) if expr.operand is not None else None
        )
        when_fns = [
            (self._compile(cond, binding, env), self._compile(result, binding, env))
            for cond, result in expr.whens
        ]
        else_fn = self._compile(expr.else_, binding, env) if expr.else_ is not None else None

        def case(row: Row) -> Any:
            if operand_fn is not None:
                subject = operand_fn(row)
                for cond_fn, result_fn in when_fns:
                    if compare_values(subject, cond_fn(row)) == 0:
                        return result_fn(row)
            else:
                for cond_fn, result_fn in when_fns:
                    if _to_bool(cond_fn(row), "CASE WHEN") is True:
                        return result_fn(row)
            return else_fn(row) if else_fn is not None else None

        return case


class _InvertedKey:
    """Wraps a sort key to invert its ordering (for DESC)."""

    __slots__ = ("key",)

    def __init__(self, key: Any):
        self.key = key

    def __lt__(self, other: "_InvertedKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _InvertedKey) and self.key == other.key


def _apply_unary(op: str, value: Any) -> Any:
    if op == "NOT":
        if value is None:
            return None
        result = _to_bool(value, "NOT")
        return None if result is None else not result
    if value is None:
        return None
    if op == "-":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"unary '-' requires a number, got {value!r}")
        return -value
    if op == "+":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"unary '+' requires a number, got {value!r}")
        return value
    raise ExecutionError(f"unknown unary operator {op!r}")


_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}


def _apply_binary(op: str, left_fn: Callable[[], Any], right_fn: Callable[[], Any]) -> Any:
    if op == "AND":
        return _and3(_to_bool(left_fn(), "AND"), _to_bool(right_fn(), "AND"))
    if op == "OR":
        return _or3(_to_bool(left_fn(), "OR"), _to_bool(right_fn(), "OR"))

    left, right = left_fn(), right_fn()
    if op in _COMPARISONS:
        cmp = compare_values(left, right)
        if cmp is None:
            return None
        if op == "=":
            return cmp == 0
        if op == "!=":
            return cmp != 0
        if op == "<":
            return cmp < 0
        if op == "<=":
            return cmp <= 0
        if op == ">":
            return cmp > 0
        return cmp >= 0

    if left is None or right is None:
        return None

    if op == "||":
        from .types import format_value

        ls = left if isinstance(left, str) else format_value(left)
        rs = right if isinstance(right, str) else format_value(right)
        return ls + rs

    import datetime as _dt

    if op in ("+", "-") and isinstance(left, _dt.date) and isinstance(right, (int,)):
        delta = _dt.timedelta(days=right)
        return left + delta if op == "+" else left - delta
    if op == "-" and isinstance(left, _dt.date) and isinstance(right, _dt.date):
        return (left - right).days

    for side, value in (("left", left), ("right", right)):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(
                f"operator {op!r} requires numeric operands, got {value!r} on the {side}"
            )

    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutionError("modulo by zero")
        return left % right
    raise ExecutionError(f"unknown operator {op!r}")


class CatalogProtocol:
    """Structural interface the executor needs from a catalog."""

    def resolve_table(self, name: str) -> Table:  # pragma: no cover - protocol
        raise NotImplementedError

    def put_table(self, table: Table, replace: bool = False) -> None:  # pragma: no cover
        raise NotImplementedError

    def drop_table(self, name: str, if_exists: bool = False) -> None:  # pragma: no cover
        raise NotImplementedError


class Executor:
    """The default engine: plans once, executes column-at-a-time.

    Same public API as :class:`RowExecutor` (``execute_statement`` /
    ``execute_select``), but SELECTs are lowered to a logical plan with
    all column references resolved to positions, then run through the
    vectorized operators.  Pass a :class:`repro.relational.plan.PlanCache`
    to reuse plans across statements (the :class:`Database` does).
    """

    def __init__(self, catalog: "CatalogProtocol", plan_cache=None):
        self.catalog = catalog
        self.plan_cache = plan_cache

    def execute_statement(self, stmt: ast.Statement) -> Table:
        from .plan import execute_statement_planned

        return execute_statement_planned(self.catalog, stmt)

    def execute_select(self, select: ast.Select, env: Dict[str, Table]) -> Table:
        from .plan import plan_select, run_plan

        return run_plan(plan_select(self.catalog, select, env), self.catalog, env)
