"""Scalar function library.

Functions are registered in :data:`SCALAR_FUNCTIONS`.  Unless registered with
``null_propagating=False``, a function returns NULL whenever any argument is
NULL (the common SQL convention).
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .errors import BindError, ExecutionError
from .types import format_value, parse_date, type_of_value


@dataclass(frozen=True)
class ScalarFunction:
    name: str
    fn: Callable[..., Any]
    min_args: int
    max_args: Optional[int]  # None = variadic
    null_propagating: bool = True

    def check_arity(self, n: int) -> None:
        if n < self.min_args or (self.max_args is not None and n > self.max_args):
            expected = (
                str(self.min_args)
                if self.max_args == self.min_args
                else f"{self.min_args}..{self.max_args if self.max_args is not None else 'N'}"
            )
            raise BindError(f"function {self.name} expects {expected} arguments, got {n}")

    def invoke(self, args: List[Any]) -> Any:
        if self.null_propagating and any(a is None for a in args):
            return None
        return self.fn(*args)


SCALAR_FUNCTIONS: Dict[str, ScalarFunction] = {}


def _register(
    name: str,
    fn: Callable[..., Any],
    min_args: int,
    max_args: Optional[int] = None,
    null_propagating: bool = True,
) -> None:
    if max_args is None:
        max_args = min_args
    SCALAR_FUNCTIONS[name] = ScalarFunction(name, fn, min_args, max_args, null_propagating)


def _register_variadic(name: str, fn: Callable[..., Any], min_args: int, null_propagating: bool = True) -> None:
    SCALAR_FUNCTIONS[name] = ScalarFunction(name, fn, min_args, None, null_propagating)


def lookup_scalar(name: str) -> Optional[ScalarFunction]:
    return SCALAR_FUNCTIONS.get(name.lower())


# ----------------------------------------------------------------------
# Numeric
# ----------------------------------------------------------------------


def _round(x: Any, digits: int = 0) -> Any:
    # SQL ROUND uses half-away-from-zero, not banker's rounding.
    factor = 10 ** digits
    scaled = x * factor
    rounded = math.floor(abs(scaled) + 0.5) * (1 if scaled >= 0 else -1)
    result = rounded / factor
    return int(result) if digits <= 0 and isinstance(x, int) else result


def _safe_sqrt(x: Any) -> float:
    if x < 0:
        raise ExecutionError(f"SQRT of negative value {x}")
    return math.sqrt(x)


def _safe_ln(x: Any) -> float:
    if x <= 0:
        raise ExecutionError(f"LN of non-positive value {x}")
    return math.log(x)


_register("abs", abs, 1)
_register("round", _round, 1, 2)
_register("floor", lambda x: int(math.floor(x)), 1)
_register("ceil", lambda x: int(math.ceil(x)), 1)
_register("ceiling", lambda x: int(math.ceil(x)), 1)
_register("sqrt", _safe_sqrt, 1)
_register("ln", _safe_ln, 1)
_register("log10", lambda x: math.log10(x), 1)
_register("exp", math.exp, 1)
_register("power", lambda x, y: float(x) ** y, 2)
_register("pow", lambda x, y: float(x) ** y, 2)
_register("sign", lambda x: (x > 0) - (x < 0), 1)
_register("mod", lambda x, y: math.fmod(x, y) if isinstance(x, float) or isinstance(y, float) else x % y, 2)
_register("pi", lambda: math.pi, 0)
_register_variadic("least", lambda *xs: min(xs), 1)
_register_variadic("greatest", lambda *xs: max(xs), 1)

# ----------------------------------------------------------------------
# Strings
# ----------------------------------------------------------------------


def _substr(s: str, start: int, length: Optional[int] = None) -> str:
    # SQL SUBSTR is 1-based; non-positive starts clamp like DuckDB.
    begin = max(start - 1, 0) if start > 0 else 0
    if length is None:
        return s[begin:]
    if length < 0:
        raise ExecutionError("SUBSTR length must be non-negative")
    if start <= 0:
        length = max(length + start - 1, 0)
    return s[begin : begin + length]


def _strpos(s: str, needle: str) -> int:
    return s.find(needle) + 1


def _split_part(s: str, sep: str, index: int) -> str:
    parts = s.split(sep)
    if 1 <= index <= len(parts):
        return parts[index - 1]
    return ""


def _lpad(s: str, width: int, pad: str = " ") -> str:
    if len(s) >= width or not pad:
        return s[:width]
    fill = (pad * width)[: width - len(s)]
    return fill + s


def _rpad(s: str, width: int, pad: str = " ") -> str:
    if len(s) >= width or not pad:
        return s[:width]
    fill = (pad * width)[: width - len(s)]
    return s + fill


_register("upper", lambda s: s.upper(), 1)
_register("lower", lambda s: s.lower(), 1)
_register("length", len, 1)
_register("len", len, 1)
_register("trim", lambda s: s.strip(), 1)
_register("ltrim", lambda s: s.lstrip(), 1)
_register("rtrim", lambda s: s.rstrip(), 1)
_register("reverse", lambda s: s[::-1], 1)
_register("substr", _substr, 2, 3)
_register("substring", _substr, 2, 3)
_register("replace", lambda s, a, b: s.replace(a, b), 3)
_register("left", lambda s, n: s[:n] if n >= 0 else s[: max(len(s) + n, 0)], 2)
_register("right", lambda s, n: s[-n:] if n > 0 else ("" if n == 0 else s[-max(len(s) + n, 0):] if len(s) + n > 0 else s), 2)
_register("strpos", _strpos, 2)
_register("instr", _strpos, 2)
_register("contains", lambda s, sub: sub in s, 2)
_register("starts_with", lambda s, p: s.startswith(p), 2)
_register("ends_with", lambda s, p: s.endswith(p), 2)
_register("split_part", _split_part, 3)
_register("lpad", _lpad, 2, 3)
_register("rpad", _rpad, 2, 3)
_register("repeat", lambda s, n: s * max(n, 0), 2)
_register_variadic("concat", lambda *xs: "".join(format_value(x) for x in xs if x is not None), 1, null_propagating=False)
_register("concat_ws", lambda sep, *xs: sep.join(format_value(x) for x in xs if x is not None), 2)
SCALAR_FUNCTIONS["concat_ws"] = ScalarFunction("concat_ws", SCALAR_FUNCTIONS["concat_ws"].fn, 2, None, False)

# ----------------------------------------------------------------------
# NULL handling / conditionals
# ----------------------------------------------------------------------


def _coalesce(*xs: Any) -> Any:
    for x in xs:
        if x is not None:
            return x
    return None


def _nullif(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return a
    return None if a == b else a


def _if(cond: Any, then: Any, else_: Any) -> Any:
    return then if cond else else_


_register_variadic("coalesce", _coalesce, 1, null_propagating=False)
_register("ifnull", lambda a, b: b if a is None else a, 2, null_propagating=False)
_register("nullif", _nullif, 2, null_propagating=False)
_register("if", _if, 3, null_propagating=False)
_register("iif", _if, 3, null_propagating=False)
_register("typeof", lambda x: str(type_of_value(x)), 1, null_propagating=False)

# ----------------------------------------------------------------------
# Dates
# ----------------------------------------------------------------------


def _to_date(x: Any) -> datetime.date:
    if isinstance(x, datetime.date):
        return x
    if isinstance(x, str):
        return parse_date(x)
    raise ExecutionError(f"cannot interpret {x!r} as a date")


def _date_part(part: str, d: Any) -> int:
    date = _to_date(d)
    part = part.lower()
    if part in ("year", "y"):
        return date.year
    if part in ("month", "mon", "m"):
        return date.month
    if part in ("day", "d"):
        return date.day
    if part in ("dow", "weekday"):
        return date.weekday()
    if part in ("doy", "dayofyear"):
        return date.timetuple().tm_yday
    if part == "week":
        return date.isocalendar()[1]
    if part == "quarter":
        return (date.month - 1) // 3 + 1
    raise ExecutionError(f"unknown date part {part!r}")


def _date_diff(unit: str, a: Any, b: Any) -> int:
    da, db = _to_date(a), _to_date(b)
    unit = unit.lower()
    if unit in ("day", "days", "d"):
        return (db - da).days
    if unit in ("year", "years", "y"):
        return db.year - da.year
    if unit in ("month", "months", "m"):
        return (db.year - da.year) * 12 + (db.month - da.month)
    raise ExecutionError(f"unknown date_diff unit {unit!r}")


def _date_add(d: Any, days: int) -> datetime.date:
    return _to_date(d) + datetime.timedelta(days=days)


def _strftime(d: Any, fmt: str) -> str:
    return _to_date(d).strftime(fmt)


def _make_date(y: int, m: int, d: int) -> datetime.date:
    try:
        return datetime.date(y, m, d)
    except ValueError as exc:
        raise ExecutionError(f"invalid date ({y}, {m}, {d})") from exc


_register("date", _to_date, 1)
_register("year", lambda d: _date_part("year", d), 1)
_register("month", lambda d: _date_part("month", d), 1)
_register("day", lambda d: _date_part("day", d), 1)
_register("date_part", _date_part, 2)
_register("date_diff", _date_diff, 3)
_register("datediff", _date_diff, 3)
_register("date_add", _date_add, 2)
_register("strftime", _strftime, 2)
_register("make_date", _make_date, 3)
_register("julianday", lambda d: float(_to_date(d).toordinal()) + 1721424.5, 1)
