"""Tokenizer for the SQL dialect.

Produces a flat list of :class:`Token`; keywords are case-insensitive, string
literals use single quotes with ``''`` escaping, and identifiers may be
double-quoted to preserve case or include spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .errors import LexError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "AS", "AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "IS",
    "IN", "LIKE", "ILIKE", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END",
    "CAST", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS", "ON",
    "USING", "UNION", "INTERSECT", "EXCEPT", "ALL", "DISTINCT", "ASC",
    "DESC", "NULLS", "FIRST", "LAST", "CREATE", "TABLE", "INSERT", "INTO",
    "VALUES", "DROP", "IF", "EXISTS", "REPLACE", "WITH", "EXCLUDE",
}

OPERATORS = [
    "||", "<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%",
    "(", ")", ",", ".", ";",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'eof'
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.value in ops


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; raises :class:`LexError` on invalid characters."""
    tokens: List[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            chunks: List[str] = []
            while True:
                if j >= n:
                    raise LexError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(sql[j])
                j += 1
            tokens.append(Token("string", "".join(chunks), i))
            i = j + 1
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j == -1:
                raise LexError("unterminated quoted identifier", i)
            tokens.append(Token("ident", sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", n))
    return tokens
