"""Recursive-descent parser for the engine's SQL dialect.

Supported statements: SELECT (with joins, GROUP BY/HAVING, ORDER BY,
LIMIT/OFFSET, DISTINCT, set operations, CTEs, subqueries), CREATE TABLE,
CREATE TABLE AS, INSERT INTO ... VALUES, DROP TABLE.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .errors import ParseError
from .lexer import Token, tokenize


def parse(sql: str) -> ast.Statement:
    """Parse a single SQL statement (a trailing ';' is permitted)."""
    statements = parse_script(sql)
    if len(statements) != 1:
        raise ParseError(f"expected a single statement, got {len(statements)}")
    return statements[0]


def parse_script(sql: str) -> List[ast.Statement]:
    """Parse a ';'-separated script into a list of statements."""
    parser = _Parser(tokenize(sql))
    statements: List[ast.Statement] = []
    while not parser.at_end():
        statements.append(parser.parse_statement())
        while parser.match_op(";"):
            pass
    return statements


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "eof"

    def match_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def match_op(self, *ops: str) -> Optional[Token]:
        if self.peek().is_op(*ops):
            return self.advance()
        return None

    def expect_keyword(self, name: str) -> Token:
        token = self.match_keyword(name)
        if token is None:
            raise ParseError(f"expected {name}, got {self.peek().value!r}", self.peek().position)
        return token

    def expect_op(self, op: str) -> Token:
        token = self.match_op(op)
        if token is None:
            raise ParseError(f"expected {op!r}, got {self.peek().value!r}", self.peek().position)
        return token

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind == "ident":
            self.advance()
            return token.value
        # Non-reserved usage of soft keywords as identifiers.
        if token.kind == "keyword" and token.value in ("FIRST", "LAST", "VALUES", "REPLACE", "LEFT", "RIGHT", "DATE"):
            self.advance()
            return token.value.lower()
        raise ParseError(f"expected identifier, got {token.value!r}", token.position)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.is_keyword("SELECT", "WITH"):
            return self.parse_select()
        if token.is_keyword("CREATE"):
            return self.parse_create()
        if token.is_keyword("INSERT"):
            return self.parse_insert()
        if token.is_keyword("DROP"):
            return self.parse_drop()
        if token.is_op("("):
            return self.parse_select()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        or_replace = False
        if self.match_keyword("OR"):
            self.expect_keyword("REPLACE")
            or_replace = True
        self.expect_keyword("TABLE")
        name = self.expect_ident()
        if self.match_keyword("AS"):
            return ast.CreateTableAs(name, self.parse_select(), or_replace)
        self.expect_op("(")
        columns: List[ast.ColumnDef] = []
        while True:
            col_name = self.expect_ident()
            type_name = self.expect_ident() if self.peek().kind == "ident" else self._type_keyword()
            columns.append(ast.ColumnDef(col_name, type_name))
            if not self.match_op(","):
                break
        self.expect_op(")")
        return ast.CreateTable(name, columns, or_replace)

    def _type_keyword(self) -> str:
        token = self.peek()
        if token.kind == "keyword" and token.value in ("NULL",):
            self.advance()
            return token.value
        raise ParseError(f"expected type name, got {token.value!r}", token.position)

    def parse_insert(self) -> ast.Statement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: Optional[List[str]] = None
        if self.match_op("("):
            columns = [self.expect_ident()]
            while self.match_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        self.expect_keyword("VALUES")
        rows: List[List[ast.Expr]] = []
        while True:
            self.expect_op("(")
            row = [self.parse_expr()]
            while self.match_op(","):
                row.append(self.parse_expr())
            self.expect_op(")")
            rows.append(row)
            if not self.match_op(","):
                break
        return ast.InsertValues(table, columns, rows)

    def parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.match_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(self.expect_ident(), if_exists)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def parse_select(self) -> ast.Select:
        ctes: List[Tuple[str, ast.Select]] = []
        if self.match_keyword("WITH"):
            while True:
                name = self.expect_ident()
                self.expect_keyword("AS")
                self.expect_op("(")
                ctes.append((name, self.parse_select()))
                self.expect_op(")")
                if not self.match_op(","):
                    break
        select = self._parse_select_core()
        select.ctes = ctes
        while True:
            op_token = self.match_keyword("UNION", "INTERSECT", "EXCEPT")
            if op_token is None:
                break
            all_flag = bool(self.match_keyword("ALL"))
            if not all_flag:
                self.match_keyword("DISTINCT")
            right = self._parse_select_core(allow_order=False)
            select.set_ops.append(ast.SetOperation(op_token.value, all_flag, right))
        # ORDER BY / LIMIT after set operations apply to the combined result.
        if select.set_ops and self.peek().is_keyword("ORDER", "LIMIT"):
            self._parse_order_limit(select)
        return select

    def _parse_select_core(self, allow_order: bool = True) -> ast.Select:
        if self.match_op("("):
            select = self.parse_select()
            self.expect_op(")")
            return select
        self.expect_keyword("SELECT")
        distinct = bool(self.match_keyword("DISTINCT"))
        if not distinct:
            self.match_keyword("ALL")
        items = [self._parse_select_item()]
        while self.match_op(","):
            items.append(self._parse_select_item())
        select = ast.Select(items=items, distinct=distinct)
        if self.match_keyword("FROM"):
            select.from_clause = self._parse_table_expr()
        if self.match_keyword("WHERE"):
            select.where = self.parse_expr()
        if self.match_keyword("GROUP"):
            self.expect_keyword("BY")
            select.group_by.append(self.parse_expr())
            while self.match_op(","):
                select.group_by.append(self.parse_expr())
        if self.match_keyword("HAVING"):
            select.having = self.parse_expr()
        if allow_order:
            self._parse_order_limit(select)
        return select

    def _parse_order_limit(self, select: ast.Select) -> None:
        if self.match_keyword("ORDER"):
            self.expect_keyword("BY")
            select.order_by = [self._parse_order_item()]
            while self.match_op(","):
                select.order_by.append(self._parse_order_item())
        if self.match_keyword("LIMIT"):
            select.limit = self._parse_int()
            if self.match_keyword("OFFSET"):
                select.offset = self._parse_int()
        elif self.match_keyword("OFFSET"):
            select.offset = self._parse_int()

    def _parse_int(self) -> int:
        token = self.peek()
        if token.kind != "number":
            raise ParseError(f"expected integer, got {token.value!r}", token.position)
        self.advance()
        try:
            return int(token.value)
        except ValueError:
            raise ParseError(f"expected integer, got {token.value!r}", token.position) from None

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.match_keyword("DESC"):
            ascending = False
        else:
            self.match_keyword("ASC")
        nulls_last = True
        if self.match_keyword("NULLS"):
            token = self.match_keyword("FIRST", "LAST")
            if token is None:
                raise ParseError("expected FIRST or LAST after NULLS", self.peek().position)
            nulls_last = token.value == "LAST"
        return ast.OrderItem(expr, ascending, nulls_last)

    def _parse_select_item(self) -> ast.SelectItem:
        if self.peek().is_op("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        # table.* projection
        if (
            self.peek().kind == "ident"
            and self.peek(1).is_op(".")
            and self.peek(2).is_op("*")
        ):
            table = self.expect_ident()
            self.advance()  # '.'
            self.advance()  # '*'
            return ast.SelectItem(ast.Star(table))
        expr = self.parse_expr()
        alias: Optional[str] = None
        if self.match_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias)

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _parse_table_expr(self) -> ast.TableExpr:
        left = self._parse_table_primary()
        while True:
            if self.match_op(","):
                right = self._parse_table_primary()
                left = ast.Join(left, right, "CROSS")
                continue
            join_type = self._peek_join_type()
            if join_type is None:
                break
            right = self._parse_table_primary()
            condition: Optional[ast.Expr] = None
            using: Optional[List[str]] = None
            if join_type != "CROSS":
                if self.match_keyword("ON"):
                    condition = self.parse_expr()
                elif self.match_keyword("USING"):
                    self.expect_op("(")
                    using = [self.expect_ident()]
                    while self.match_op(","):
                        using.append(self.expect_ident())
                    self.expect_op(")")
                else:
                    raise ParseError(
                        f"expected ON or USING after {join_type} JOIN", self.peek().position
                    )
            left = ast.Join(left, right, join_type, condition, using)
        return left

    def _peek_join_type(self) -> Optional[str]:
        if self.match_keyword("JOIN"):
            return "INNER"
        if self.match_keyword("INNER"):
            self.expect_keyword("JOIN")
            return "INNER"
        token = self.peek()
        if token.is_keyword("LEFT", "RIGHT", "FULL"):
            # Only treat as a join if followed by [OUTER] JOIN (LEFT/RIGHT can
            # also be function names).
            nxt = self.peek(1)
            if nxt.is_keyword("OUTER", "JOIN"):
                self.advance()
                self.match_keyword("OUTER")
                self.expect_keyword("JOIN")
                return token.value
            return None
        if token.is_keyword("CROSS"):
            self.advance()
            self.expect_keyword("JOIN")
            return "CROSS"
        return None

    def _parse_table_primary(self) -> ast.TableExpr:
        if self.match_op("("):
            if self.peek().is_keyword("SELECT", "WITH"):
                select = self.parse_select()
                self.expect_op(")")
                self.match_keyword("AS")
                alias = self.expect_ident()
                return ast.SubqueryRef(select, alias)
            expr = self._parse_table_expr()
            self.expect_op(")")
            return expr
        name = self.expect_ident()
        alias: Optional[str] = None
        if self.match_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.expect_ident()
        return ast.TableRef(name, alias)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.match_keyword("OR"):
            left = ast.Binary("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.match_keyword("AND"):
            left = ast.Binary("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self.match_keyword("NOT"):
            return ast.Unary("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while True:
            token = self.peek()
            if token.is_op("=", "!=", "<>", "<", "<=", ">", ">="):
                self.advance()
                op = "!=" if token.value == "<>" else token.value
                left = ast.Binary(op, left, self._parse_additive())
                continue
            if token.is_keyword("IS"):
                self.advance()
                negated = bool(self.match_keyword("NOT"))
                self.expect_keyword("NULL")
                left = ast.IsNull(left, negated)
                continue
            negated = False
            if token.is_keyword("NOT") and self.peek(1).is_keyword("IN", "LIKE", "ILIKE", "BETWEEN"):
                self.advance()
                negated = True
                token = self.peek()
            if token.is_keyword("IN"):
                self.advance()
                self.expect_op("(")
                if self.peek().is_keyword("SELECT", "WITH"):
                    subquery = self.parse_select()
                    self.expect_op(")")
                    left = ast.InSubquery(left, subquery, negated)
                else:
                    items = [self.parse_expr()]
                    while self.match_op(","):
                        items.append(self.parse_expr())
                    self.expect_op(")")
                    left = ast.InList(left, items, negated)
                continue
            if token.is_keyword("LIKE", "ILIKE"):
                self.advance()
                pattern = self._parse_additive()
                left = ast.Like(left, pattern, negated, case_insensitive=token.value == "ILIKE")
                continue
            if token.is_keyword("BETWEEN"):
                self.advance()
                low = self._parse_additive()
                self.expect_keyword("AND")
                high = self._parse_additive()
                left = ast.Between(left, low, high, negated)
                continue
            return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.is_op("+", "-", "||"):
                self.advance()
                left = ast.Binary(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.is_op("*", "/", "%"):
                self.advance()
                left = ast.Binary(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self.match_op("-"):
            return ast.Unary("-", self._parse_unary())
        if self.match_op("+"):
            return ast.Unary("+", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            text = token.value
            if "." in text or "e" in text.lower():
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("CAST"):
            self.advance()
            self.expect_op("(")
            operand = self.parse_expr()
            self.expect_keyword("AS")
            type_name = self.expect_ident() if self.peek().kind == "ident" else self.advance().value
            self.expect_op(")")
            return ast.Cast(operand, type_name)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_op("(")
            subquery = self.parse_select()
            self.expect_op(")")
            return ast.Exists(subquery)
        if token.is_op("("):
            self.advance()
            if self.peek().is_keyword("SELECT", "WITH"):
                subquery = self.parse_select()
                self.expect_op(")")
                return ast.ScalarSubquery(subquery)
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.kind == "ident" or token.is_keyword("LEFT", "RIGHT", "REPLACE", "FIRST", "LAST", "IF"):
            name = self.advance().value
            if self.peek().is_op("("):
                return self._parse_function_call(name)
            if self.match_op("."):
                column = self.expect_ident()
                return ast.ColumnRef(column, table=name)
            return ast.ColumnRef(name)
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _parse_function_call(self, name: str) -> ast.Expr:
        self.expect_op("(")
        if self.match_op(")"):
            return ast.FunctionCall(name, [])
        if self.peek().is_op("*"):
            self.advance()
            self.expect_op(")")
            return ast.FunctionCall(name, [], is_star=True)
        distinct = bool(self.match_keyword("DISTINCT"))
        args = [self.parse_expr()]
        while self.match_op(","):
            args.append(self.parse_expr())
        self.expect_op(")")
        return ast.FunctionCall(name, args, distinct=distinct)

    def _parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        operand: Optional[ast.Expr] = None
        if not self.peek().is_keyword("WHEN"):
            operand = self.parse_expr()
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self.match_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expr()))
        else_: Optional[ast.Expr] = None
        if self.match_keyword("ELSE"):
            else_ = self.parse_expr()
        self.expect_keyword("END")
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self.peek().position)
        return ast.Case(operand, whens, else_)
