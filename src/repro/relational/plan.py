"""Logical plans: lower the AST once, execute column-at-a-time many times.

The planner binds every column reference to a position, splits join
conditions into hash-join key pairs plus residuals, compiles expressions
into vector closures (:mod:`repro.relational.vectorized`), and emits a
small tree of operator nodes:

    scan → filter → project / hash-aggregate → sort → limit → set-op

A plan is immutable and reusable: per-execution state (CTE
materializations, subquery results, the environment of bound tables)
lives in an :class:`ExecContext`, so one plan can serve concurrent
sessions.  :class:`PlanCache` is the LRU that
:class:`repro.relational.catalog.Database` keys by
``(normalized SQL text, catalog version)`` — a warm hit skips
parse+bind+plan entirely.

Semantics are the row engine's, verbatim: the planner reuses
``RowExecutor``'s binding, star-expansion, GROUP BY/ORDER BY resolution,
and equi-join splitting helpers, and delegates per-group expression
evaluation (HAVING and grouped projections — a per-*group*, not per-row,
cost) to ``RowExecutor._eval_group_expr``.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import ast
from .errors import BindError, ExecutionError
from .executor import (
    RowExecutor,
    _Binding,
    _collect_aggregates,
    _contains_aggregate,
    _to_bool,
)
from .aggregates import lookup_aggregate
from .table import Column, Schema, Table
from .types import common_type, parse_type_name, sort_key
from .vectorized import (
    Chunk,
    LazyColumns,
    VecFn,
    compile_vector,
    accumulate_aggregate,
    distinct_indices,
    group_rows,
    hash_join_matches,
    infer_column_type_fast,
    order_indices,
    truth_indices,
)


class ExecContext:
    """Per-execution state threaded through one plan run."""

    __slots__ = ("catalog", "env", "cte", "subq")

    def __init__(self, catalog, env: Optional[Dict[str, Table]] = None):
        self.catalog = catalog
        self.env: Dict[str, Table] = env or {}
        self.cte: Dict[int, Chunk] = {}
        self.subq: Dict[Any, Any] = {}


# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------
class PlanNode:
    """Base class: an operator producing a :class:`Chunk`."""

    def execute(self, ctx: ExecContext) -> Chunk:  # pragma: no cover - abstract
        raise NotImplementedError


class UnitNode(PlanNode):
    """The FROM-less source: one row, zero columns."""

    __slots__ = ()

    def execute(self, ctx: ExecContext) -> Chunk:
        return Chunk([], 1)


class ScanNode(PlanNode):
    """Scan a catalog table via its memoized column-major view (no copy)."""

    __slots__ = ("table_name",)

    def __init__(self, table_name: str):
        self.table_name = table_name

    def execute(self, ctx: ExecContext) -> Chunk:
        table = ctx.catalog.resolve_table(self.table_name)
        return Chunk(table.as_columns(), table.num_rows)


class EnvScanNode(PlanNode):
    """Scan a table bound into the execution environment by name."""

    __slots__ = ("key",)

    def __init__(self, key: str):
        self.key = key

    def execute(self, ctx: ExecContext) -> Chunk:
        table = ctx.env[self.key]
        return Chunk(table.as_columns(), table.num_rows)


class CTERefNode(PlanNode):
    """Reference a CTE materialized once per execution."""

    __slots__ = ("cte_id",)

    def __init__(self, cte_id: int):
        self.cte_id = cte_id

    def execute(self, ctx: ExecContext) -> Chunk:
        return ctx.cte[self.cte_id]


class SubqueryScanNode(PlanNode):
    """A derived table: ``FROM (SELECT ...) alias``."""

    __slots__ = ("plan",)

    def __init__(self, plan: "SelectPlan"):
        self.plan = plan

    def execute(self, ctx: ExecContext) -> Chunk:
        return self.plan.execute(ctx)


class FilterNode(PlanNode):
    __slots__ = ("input", "predicate", "context")

    def __init__(self, input: PlanNode, predicate: VecFn, context: str):
        self.input = input
        self.predicate = predicate
        self.context = context

    def execute(self, ctx: ExecContext) -> Chunk:
        chunk = self.input.execute(ctx)
        keep = truth_indices(self.predicate(chunk, ctx), self.context)
        if len(keep) == chunk.n:
            return chunk
        return chunk.gather(keep)


class ProjectNode(PlanNode):
    """Evaluate output expressions (plus optional hidden sort-key columns).

    Output column types are inferred here — before DISTINCT / ORDER BY /
    LIMIT trim rows — exactly where the row engine infers them.
    """

    __slots__ = ("input", "fns", "key_fns", "n_out")

    def __init__(self, input: PlanNode, fns: List[VecFn], key_fns: List[VecFn] = ()):
        self.input = input
        self.fns = fns
        self.key_fns = list(key_fns)
        self.n_out = len(fns)

    def execute(self, ctx: ExecContext) -> Chunk:
        chunk = self.input.execute(ctx)
        cols = [fn(chunk, ctx) for fn in self.fns]
        types = [infer_column_type_fast(col) for col in cols]
        for fn in self.key_fns:
            cols.append(fn(chunk, ctx))
            types.append(None)
        return Chunk(cols, chunk.n, types)


class DistinctNode(PlanNode):
    __slots__ = ("input",)

    def __init__(self, input: PlanNode):
        self.input = input

    def execute(self, ctx: ExecContext) -> Chunk:
        chunk = self.input.execute(ctx)
        keep = distinct_indices(chunk)
        if len(keep) == chunk.n:
            return chunk
        return chunk.gather(keep)


class SortNode(PlanNode):
    """Sort by key columns of the input chunk, keeping the first
    ``keep_width`` columns (hidden sort keys are dropped)."""

    __slots__ = ("input", "key_indices", "order_by", "keep_width")

    def __init__(
        self,
        input: PlanNode,
        key_indices: List[int],
        order_by: List[ast.OrderItem],
        keep_width: Optional[int] = None,
    ):
        self.input = input
        self.key_indices = key_indices
        self.order_by = order_by
        self.keep_width = keep_width

    def execute(self, ctx: ExecContext) -> Chunk:
        chunk = self.input.execute(ctx)
        key_cols = [chunk.cols[i] for i in self.key_indices]
        key_rows = list(zip(*key_cols)) if key_cols else [()] * chunk.n
        order = order_indices(key_rows, self.order_by)
        width = chunk.width if self.keep_width is None else self.keep_width
        cols = [[col[i] for i in order] for col in chunk.cols[:width]]
        types = chunk.types[:width] if chunk.types is not None else None
        return Chunk(cols, chunk.n, types)


class LimitNode(PlanNode):
    __slots__ = ("input", "limit", "offset")

    def __init__(self, input: PlanNode, limit: Optional[int], offset: Optional[int]):
        self.input = input
        self.limit = limit
        self.offset = offset

    def execute(self, ctx: ExecContext) -> Chunk:
        chunk = self.input.execute(ctx)
        start = self.offset if self.offset else 0
        stop = None if self.limit is None else start + self.limit
        cols = [col[start:stop] for col in chunk.cols]
        n = len(cols[0]) if cols else len(range(chunk.n)[start:stop])
        return Chunk(cols, n, chunk.types)


class JoinNode(PlanNode):
    """Hash join on equi-key pairs, or nested-loop when none exist.

    Mirrors the row engine: NULL keys never match, LEFT/FULL append
    unmatched left rows (then RIGHT/FULL unmatched right rows) after the
    matches, USING drops the duplicate right-side key columns.
    """

    __slots__ = (
        "left",
        "right",
        "join_type",
        "left_keys",
        "right_keys",
        "condition",
        "keep",
    )

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_type: str,
        left_keys: List[int],
        right_keys: List[int],
        condition: Optional[VecFn],
        keep: Optional[List[int]] = None,
    ):
        self.left = left
        self.right = right
        self.join_type = join_type
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.condition = condition  # residual (hash) or full predicate (loop)
        self.keep = keep  # merged-column indices kept after USING

    def execute(self, ctx: ExecContext) -> Chunk:
        lchunk = self.left.execute(ctx)
        rchunk = self.right.execute(ctx)
        ln, rn = lchunk.n, rchunk.n

        if self.join_type == "CROSS":
            lidx = [i for i in range(ln) for _ in range(rn)]
            ridx = list(range(rn)) * ln
            return self._assemble(lchunk, rchunk, lidx, ridx)

        if self.left_keys:
            lidx, ridx = hash_join_matches(
                [lchunk.cols[k] for k in self.left_keys],
                [rchunk.cols[k] for k in self.right_keys],
            )
        else:
            lidx = [i for i in range(ln) for _ in range(rn)]
            ridx = list(range(rn)) * ln

        if self.condition is not None and (lidx or not self.left_keys):
            candidate = self._gather_pairs(lchunk, rchunk, lidx, ridx)
            passed = truth_indices(self.condition(candidate, ctx), "JOIN ON")
            lidx = [lidx[p] for p in passed]
            ridx = [ridx[p] for p in passed]

        # Matched-row sets are only needed to find outer-join null rows;
        # skip the O(matches) set builds on plain inner joins (the hot path).
        extra_left: List[int] = []
        extra_right: List[int] = []
        if self.join_type in ("LEFT", "FULL"):
            matched_left = set(lidx)
            extra_left = [i for i in range(ln) if i not in matched_left]
        if self.join_type in ("RIGHT", "FULL"):
            matched_right = set(ridx)
            extra_right = [j for j in range(rn) if j not in matched_right]
        return self._assemble(lchunk, rchunk, lidx, ridx, extra_left, extra_right)

    @staticmethod
    def _gather_pairs(lchunk: Chunk, rchunk: Chunk, lidx, ridx) -> Chunk:
        """Candidate-match chunk for residual evaluation (lazy columns)."""
        thunks = [
            JoinNode._side_thunk(lchunk.cols, k, lidx, (), 0)
            for k in range(lchunk.width)
        ]
        thunks += [
            JoinNode._side_thunk(rchunk.cols, k, ridx, (), 0)
            for k in range(rchunk.width)
        ]
        return Chunk(LazyColumns(thunks), len(lidx))

    @staticmethod
    def _side_thunk(cols, k: int, matched, extra, pad: int):
        """Build one output column on demand: matched rows, then this
        side's unmatched rows, then NULL padding for the other side's."""

        def build() -> List[Any]:
            col = cols[k]
            out = [col[i] for i in matched]
            out += [col[i] for i in extra]
            out += [None] * pad
            return out

        return build

    def _assemble(
        self, lchunk: Chunk, rchunk: Chunk, lidx, ridx, extra_left=(), extra_right=()
    ) -> Chunk:
        n_extra_l, n_extra_r = len(extra_left), len(extra_right)
        thunks = [
            self._side_thunk(lchunk.cols, k, lidx, extra_left, n_extra_r)
            for k in range(lchunk.width)
        ]
        # Right side interleaves its NULL padding (for unmatched left rows)
        # before its own unmatched rows, mirroring the row engine's order.
        thunks += [
            self._right_thunk(rchunk.cols, k, ridx, n_extra_l, extra_right)
            for k in range(rchunk.width)
        ]
        n = len(lidx) + n_extra_l + n_extra_r
        if self.keep is not None:
            thunks = [thunks[i] for i in self.keep]
        return Chunk(LazyColumns(thunks), n)

    @staticmethod
    def _right_thunk(cols, k: int, matched, pad: int, extra):
        def build() -> List[Any]:
            col = cols[k]
            out = [col[j] for j in matched]
            out += [None] * pad
            out += [col[j] for j in extra]
            return out

        return build


class AggregateNode(PlanNode):
    """Hash aggregation grouping on key columns directly.

    The O(rows) work — key hashing and aggregate accumulation — is
    vectorized; the O(groups) work (HAVING, grouped projection, ORDER BY
    keys) reuses ``RowExecutor._eval_group_expr`` so restrictions like
    "column must appear in GROUP BY" behave identically.
    """

    __slots__ = (
        "input",
        "key_fns",
        "agg_specs",
        "out_exprs",
        "having",
        "order_items",
        "group_key_map",
        "agg_key_map",
        "binding",
    )

    def __init__(
        self,
        input: PlanNode,
        key_fns: List[VecFn],
        agg_specs: List[Tuple],
        out_exprs: List[ast.Expr],
        having: Optional[ast.Expr],
        order_items: List[ast.OrderItem],
        group_key_map: Dict[Tuple, int],
        agg_key_map: Dict[Tuple, int],
        binding: _Binding,
    ):
        self.input = input
        self.key_fns = key_fns
        self.agg_specs = agg_specs
        self.out_exprs = out_exprs
        self.having = having
        self.order_items = order_items
        self.group_key_map = group_key_map
        self.agg_key_map = agg_key_map
        self.binding = binding

    def execute(self, ctx: ExecContext) -> Chunk:
        chunk = self.input.execute(ctx)
        if self.key_fns:
            key_cols = [fn(chunk, ctx) for fn in self.key_fns]
            gids, key_rows = group_rows(key_cols, chunk.n)
            ngroups = len(key_rows)
        else:
            gids, key_rows, ngroups = None, [()], 1

        per_agg: List[List[Any]] = []
        for agg, arg_fns, is_star, distinct in self.agg_specs:
            arg_cols = [fn(chunk, ctx) for fn in arg_fns]
            per_agg.append(
                accumulate_aggregate(agg, arg_cols, is_star, distinct, gids, ngroups, chunk.n)
            )

        evaluator = RowExecutor(ctx.catalog)

        def eval_in_group(expr: ast.Expr, key: Tuple, agg_results: List[Any]) -> Any:
            return evaluator._eval_group_expr(
                expr,
                key,
                agg_results,
                self.group_key_map,
                self.agg_key_map,
                self.binding,
                {},
                None,
            )

        out_rows: List[Tuple] = []
        order_keys: List[Tuple] = []
        for g in range(ngroups):
            key = key_rows[g]
            agg_results = [col[g] for col in per_agg]
            if self.having is not None:
                verdict = _to_bool(
                    eval_in_group(self.having, key, agg_results), "HAVING clause"
                )
                if verdict is not True:
                    continue
            out_rows.append(
                tuple(eval_in_group(expr, key, agg_results) for expr in self.out_exprs)
            )
            if self.order_items:
                order_keys.append(
                    tuple(
                        eval_in_group(item.expr, key, agg_results)
                        for item in self.order_items
                    )
                )

        width = len(self.out_exprs)
        cols: List[List[Any]] = (
            [list(col) for col in zip(*out_rows)] if out_rows else [[] for _ in range(width)]
        )
        types = [infer_column_type_fast(col) for col in cols]
        result = Chunk(cols, len(out_rows), types)
        if self.order_items:
            order = order_indices(order_keys, self.order_items)
            result = Chunk(
                [[col[i] for i in order] for col in cols], result.n, types
            )
        return result


class SetOpNode(PlanNode):
    """UNION / INTERSECT / EXCEPT with the row engine's bag semantics."""

    __slots__ = ("left", "right", "op", "all_flag")

    def __init__(self, left: PlanNode, right: PlanNode, op: str, all_flag: bool):
        self.left = left
        self.right = right
        self.op = op
        self.all_flag = all_flag

    def execute(self, ctx: ExecContext) -> Chunk:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        ltypes = left.types or [infer_column_type_fast(col) for col in left.cols]
        rtypes = right.types or [infer_column_type_fast(col) for col in right.cols]
        types = [common_type(a, b) for a, b in zip(ltypes, rtypes)]

        if self.op == "UNION":
            cols = [lc + rc for lc, rc in zip(left.cols, right.cols)]
            result = Chunk(cols, left.n + right.n, types)
            if not self.all_flag:
                result = result.gather(distinct_indices(result))
                result.types = types
            return result

        right_markers = {
            tuple(sort_key(v) for v in row) for row in right.rows()
        }
        if self.op == "INTERSECT":
            keep = [
                i
                for i, row in enumerate(left.rows())
                if tuple(sort_key(v) for v in row) in right_markers
            ]
        elif self.op == "EXCEPT":
            keep = [
                i
                for i, row in enumerate(left.rows())
                if tuple(sort_key(v) for v in row) not in right_markers
            ]
        else:  # pragma: no cover - guarded by the parser
            raise ExecutionError(f"unknown set operation {self.op!r}")
        result = left.gather(keep)
        result.types = types
        if not self.all_flag:
            result = result.gather(distinct_indices(result))
            result.types = types
        return result


class SelectPlan:
    """A fully lowered SELECT: eager CTE materializations + operator tree."""

    __slots__ = ("ctes", "root", "names")

    def __init__(self, ctes: List[Tuple[int, "SelectPlan"]], root: PlanNode, names: List[str]):
        self.ctes = ctes
        self.root = root
        self.names = names

    def execute(self, ctx: ExecContext) -> Chunk:
        for cte_id, plan in self.ctes:
            if cte_id not in ctx.cte:
                ctx.cte[cte_id] = plan.execute(ctx)
        return self.root.execute(ctx)


class LazySubplan:
    """Plans an uncorrelated sub-SELECT on first execution.

    The row engine binds subqueries lazily (a subquery under a predicate
    that never runs is never bound); deferring planning preserves that.
    The planned tree is memoized, so cached plans keep their subplans.
    """

    __slots__ = ("_thunk", "_plan")

    def __init__(self, thunk: Callable[[], SelectPlan]):
        self._thunk = thunk
        self._plan = None

    def execute(self, ctx: ExecContext) -> Chunk:
        plan = self._plan
        if plan is None:
            plan = self._plan = self._thunk()
        return plan.execute(ctx)


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
class Planner:
    """Lowers SELECT ASTs into :class:`SelectPlan` trees.

    ``env`` entries describe FROM-resolvable names beyond the catalog:
    ``("cte", id, names)`` for planned CTEs and ``("table", key)`` for
    tables bound at execution time (the ``execute_select(select, env)``
    API).  Binding order matches the row engine: environment first, then
    the catalog.
    """

    def __init__(self, catalog, env_tables: Optional[Dict[str, Table]] = None):
        self.catalog = catalog
        self._row = RowExecutor(catalog)
        self._cte_ids = itertools.count(1)
        self.env: Dict[str, Tuple] = {}
        if env_tables:
            for key, table in env_tables.items():
                self.env[key.lower()] = ("table", key.lower(), table.schema.names())

    # -- entry points ---------------------------------------------------
    def plan(self, select: ast.Select) -> SelectPlan:
        return self._plan_select(select, self.env)

    # -- SELECT ---------------------------------------------------------
    def _plan_select(self, select: ast.Select, env: Dict[str, Tuple]) -> SelectPlan:
        local_env = dict(env)
        ctes: List[Tuple[int, SelectPlan]] = []
        for name, sub in select.ctes:
            sub_plan = self._plan_select(sub, local_env)
            cte_id = next(self._cte_ids)
            ctes.append((cte_id, sub_plan))
            local_env[name.lower()] = ("cte", cte_id, sub_plan.names)

        node, names = self._plan_core(select, local_env)
        for set_op in select.set_ops:
            right_node, right_names = self._plan_core(set_op.select, local_env)
            if len(names) != len(right_names):
                raise BindError(
                    f"{set_op.op} requires equal column counts "
                    f"({len(names)} vs {len(right_names)})"
                )
            node = SetOpNode(node, right_node, set_op.op, set_op.all)
        if select.set_ops:
            if select.order_by:
                node = self._plan_output_order(node, names, select.order_by)
            if select.limit is not None or select.offset:
                node = LimitNode(node, select.limit, select.offset)
        return SelectPlan(ctes, node, names)

    def _plan_core(
        self, select: ast.Select, env: Dict[str, Tuple]
    ) -> Tuple[PlanNode, List[str]]:
        if select.from_clause is None:
            binding = _Binding([])
            node: PlanNode = UnitNode()
        else:
            binding, node = self._plan_table_expr(select.from_clause, env)

        subplan = self._subplanner(env)
        if select.where is not None:
            node = FilterNode(
                node, compile_vector(select.where, binding, subplan), "WHERE clause"
            )

        has_aggregates = (
            bool(select.group_by)
            or any(_contains_aggregate(item.expr) for item in select.items)
            or (select.having is not None and _contains_aggregate(select.having))
        )

        if has_aggregates:
            node, names = self._plan_grouped(select, binding, node, subplan)
            if select.distinct:
                node = DistinctNode(node)
        else:
            if select.having is not None:
                raise BindError("HAVING requires GROUP BY or aggregates")
            node, names = self._plan_projection(select, binding, node, subplan)
        if not select.set_ops and (select.limit is not None or select.offset):
            node = LimitNode(node, select.limit, select.offset)
        return node, names

    # -- FROM -----------------------------------------------------------
    def _plan_table_expr(
        self, texpr: ast.TableExpr, env: Dict[str, Tuple]
    ) -> Tuple[_Binding, PlanNode]:
        if isinstance(texpr, ast.TableRef):
            lowered = texpr.name.lower()
            entry = env.get(lowered)
            if entry is not None:
                kind = entry[0]
                if kind == "cte":
                    _, cte_id, names = entry
                    binding = _Binding(
                        [(self._qualifier(texpr.binding_name), n) for n in names]
                    )
                    return binding, CTERefNode(cte_id)
                _, key, names = entry
                binding = _Binding(
                    [(self._qualifier(texpr.binding_name), n) for n in names]
                )
                return binding, EnvScanNode(key)
            table = self.catalog.resolve_table(texpr.name)
            binding = _Binding.for_table(texpr.binding_name, table.schema)
            return binding, ScanNode(texpr.name)
        if isinstance(texpr, ast.SubqueryRef):
            sub_plan = self._plan_select(texpr.select, env)
            binding = _Binding(
                [(self._qualifier(texpr.alias), n) for n in sub_plan.names]
            )
            return binding, SubqueryScanNode(sub_plan)
        if isinstance(texpr, ast.Join):
            return self._plan_join(texpr, env)
        raise ExecutionError(f"unsupported FROM item: {type(texpr).__name__}")

    @staticmethod
    def _qualifier(name: Optional[str]) -> Optional[str]:
        return name.lower() if name else None

    def _plan_join(
        self, join: ast.Join, env: Dict[str, Tuple]
    ) -> Tuple[_Binding, PlanNode]:
        left_binding, left_node = self._plan_table_expr(join.left, env)
        right_binding, right_node = self._plan_table_expr(join.right, env)
        merged = left_binding.merge(right_binding)
        subplan = self._subplanner(env)

        if join.join_type == "CROSS":
            return merged, JoinNode(left_node, right_node, "CROSS", [], [], None)

        condition = join.condition
        using_cols = join.using or []
        if using_cols:
            condition = None

        left_keys: List[int] = []
        right_keys: List[int] = []
        residual_fn: Optional[VecFn] = None
        if using_cols:
            for col in using_cols:
                left_keys.append(_Binding(left_binding.entries).resolve(col))
                right_keys.append(_Binding(right_binding.entries).resolve(col))
        elif condition is not None:
            pairs, residual_expr = self._row._split_equi_condition(
                condition, left_binding, right_binding
            )
            left_keys = [p[0] for p in pairs]
            right_keys = [p[1] for p in pairs]
            if pairs:
                if residual_expr is not None:
                    residual_fn = compile_vector(residual_expr, merged, subplan)
            else:
                residual_fn = compile_vector(condition, merged, subplan)

        keep: Optional[List[int]] = None
        if using_cols:
            left_width = len(left_binding.entries)
            right_width = len(right_binding.entries)
            drop = {
                left_width + _Binding(right_binding.entries).resolve(col)
                for col in using_cols
            }
            keep = [i for i in range(left_width + right_width) if i not in drop]
            merged = _Binding([merged.entries[i] for i in keep])

        node = JoinNode(
            left_node,
            right_node,
            join.join_type,
            left_keys,
            right_keys,
            residual_fn,
            keep,
        )
        return merged, node

    # -- projection / ORDER BY ------------------------------------------
    def _plan_projection(
        self,
        select: ast.Select,
        binding: _Binding,
        node: PlanNode,
        subplan: Callable[[ast.Select], LazySubplan],
    ) -> Tuple[PlanNode, List[str]]:
        expanded = self._row._expand_items(select.items, binding)
        names = [name for _, name in expanded]
        out_fns = [compile_vector(expr, binding, subplan) for expr, _ in expanded]

        order_by = select.order_by if not select.set_ops else []
        if not order_by:
            node = ProjectNode(node, out_fns)
            if select.distinct:
                node = DistinctNode(node)
            return node, names

        lowered_names = [n.lower() for n in names]
        key_specs: List[Tuple[str, Any]] = []
        for item in order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                ordinal = expr.value
                if not 1 <= ordinal <= len(expanded):
                    raise BindError(f"ORDER BY ordinal {ordinal} out of range")
                key_specs.append(("out", ordinal - 1))
                continue
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name.lower() in lowered_names
            ):
                key_specs.append(("out", lowered_names.index(expr.name.lower())))
                continue
            key_specs.append(("fn", compile_vector(expr, binding, subplan)))

        all_output = all(kind == "out" for kind, _ in key_specs)
        if select.distinct and not all_output:
            raise BindError("ORDER BY expressions must appear in SELECT DISTINCT output")

        if select.distinct:
            node = DistinctNode(ProjectNode(node, out_fns))
            key_indices = [idx for _, idx in key_specs]
            node = SortNode(node, key_indices, order_by)
            return node, names

        key_fns = [payload for kind, payload in key_specs if kind == "fn"]
        node = ProjectNode(node, out_fns, key_fns)
        key_indices = []
        hidden = len(out_fns)
        for kind, payload in key_specs:
            if kind == "out":
                key_indices.append(payload)
            else:
                key_indices.append(hidden)
                hidden += 1
        node = SortNode(node, key_indices, order_by, keep_width=len(out_fns))
        return node, names

    def _plan_output_order(
        self, node: PlanNode, names: List[str], order_by: List[ast.OrderItem]
    ) -> PlanNode:
        lowered = [n.lower() for n in names]
        key_indices: List[int] = []
        for item in order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                key_indices.append(expr.value - 1)
            elif isinstance(expr, ast.ColumnRef):
                target = expr.name.lower()
                if target not in lowered:
                    raise BindError(
                        f"column {expr.name!r} not found; available: {names}"
                    )
                key_indices.append(lowered.index(target))
            else:
                raise BindError("ORDER BY after set operations must use output columns")
        return SortNode(node, key_indices, order_by)

    # -- grouped aggregation --------------------------------------------
    def _plan_grouped(
        self,
        select: ast.Select,
        binding: _Binding,
        node: PlanNode,
        subplan: Callable[[ast.Select], LazySubplan],
    ) -> Tuple[PlanNode, List[str]]:
        group_exprs = self._row._resolve_group_exprs(select)
        key_fns = [compile_vector(e, binding, subplan) for e in group_exprs]

        agg_calls: Dict[Tuple, ast.FunctionCall] = {}
        expanded = self._row._expand_items(select.items, binding)
        names = [name for _, name in expanded]
        for expr, _ in expanded:
            _collect_aggregates(expr, agg_calls)
        if select.having is not None:
            _collect_aggregates(select.having, agg_calls)
        # Deliberately NOT gated on select.set_ops: the row engine orders
        # inside grouped execution even when set ops follow, and that
        # pre-sort fixes tie order under the (stable) outer output sort.
        order_items = [
            ast.OrderItem(
                self._row._resolve_output_ref(item.expr, select),
                item.ascending,
                item.nulls_last,
            )
            for item in select.order_by
        ]
        for order_item in order_items:
            _collect_aggregates(order_item.expr, agg_calls)

        agg_keys = list(agg_calls)
        agg_specs: List[Tuple] = []
        for key in agg_keys:
            call = agg_calls[key]
            agg = lookup_aggregate(call.name)
            assert agg is not None
            if call.is_star:
                if agg.name != "count":
                    raise BindError(f"{call.name}(*) is not supported")
                arg_fns: List[VecFn] = []
            else:
                if len(call.args) != agg.num_args:
                    raise BindError(
                        f"aggregate {agg.name} expects {agg.num_args} args, got {len(call.args)}"
                    )
                arg_fns = [compile_vector(a, binding, subplan) for a in call.args]
            agg_specs.append((agg, arg_fns, call.is_star, call.distinct))

        group_key_map = {e.key(): i for i, e in enumerate(group_exprs)}
        agg_key_map = {k: i for i, k in enumerate(agg_keys)}
        agg_node = AggregateNode(
            node,
            key_fns,
            agg_specs,
            [expr for expr, _ in expanded],
            select.having,
            order_items,
            group_key_map,
            agg_key_map,
            binding,
        )
        return agg_node, names

    # -- subqueries -----------------------------------------------------
    def _subplanner(self, env: Dict[str, Tuple]) -> Callable[[ast.Select], LazySubplan]:
        def make(sub: ast.Select) -> LazySubplan:
            return LazySubplan(lambda: self._plan_select(sub, env))

        return make


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def plan_select(catalog, select: ast.Select, env: Optional[Dict[str, Table]] = None) -> SelectPlan:
    """Lower one SELECT against the catalog (and optional env tables)."""
    return Planner(catalog, env).plan(select)


def compile_select(catalog, sql: str) -> SelectPlan:
    """Parse, bind, and plan one SELECT statement against ``catalog``.

    The plan-construction entry point for callers that synthesize SQL
    programmatically (the prep pipeline's alignment compiler): binding
    errors — unknown tables, missing columns — surface here, at compile
    time, without executing anything.  The returned plan is immutable and
    can be cached or run repeatedly via :func:`run_plan`.
    """
    from .parser import parse  # local import: parser pulls in no planner state

    stmt = parse(sql)
    if not isinstance(stmt, ast.Select):
        raise ExecutionError(
            f"compile_select expects a SELECT, got {type(stmt).__name__}"
        )
    return plan_select(catalog, stmt)


def run_plan(plan: SelectPlan, catalog, env: Optional[Dict[str, Table]] = None) -> Table:
    """Execute a planned SELECT with fresh per-execution state."""
    ctx = ExecContext(catalog, env)
    chunk = plan.execute(ctx)
    if chunk.cols:
        rows: List[Tuple] = list(zip(*chunk.cols))
    else:
        rows = [()] * chunk.n
    types = chunk.types or [infer_column_type_fast(col) for col in chunk.cols]
    columns = [
        Column(name, dtype if dtype is not None else infer_column_type_fast(col))
        for name, dtype, col in zip(plan.names, types, chunk.cols)
    ]
    return Table("result", Schema(columns), rows)


def execute_statement_planned(catalog, stmt: ast.Statement) -> Table:
    """Statement dispatch for the planned engine (same surface as the
    row engine's ``execute_statement``)."""
    if isinstance(stmt, ast.Select):
        return run_plan(plan_select(catalog, stmt), catalog)
    if isinstance(stmt, ast.CreateTableAs):
        result = run_plan(plan_select(catalog, stmt.select), catalog).renamed(stmt.name)
        catalog.put_table(result, replace=stmt.or_replace)
        return result
    if isinstance(stmt, ast.CreateTable):
        columns = [Column(c.name, parse_type_name(c.type_name)) for c in stmt.columns]
        table = Table.empty(stmt.name, columns)
        catalog.put_table(table, replace=stmt.or_replace)
        return table
    if isinstance(stmt, ast.InsertValues):
        # Row-at-a-time is the right shape for VALUES lists; reuse it.
        return RowExecutor(catalog)._execute_insert(stmt)
    if isinstance(stmt, ast.DropTable):
        catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
        return Table.empty(stmt.name, [])
    raise ExecutionError(f"unsupported statement: {type(stmt).__name__}")


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
def normalize_sql(sql: str) -> str:
    """Collapse insignificant whitespace so textually-equivalent queries
    share a cache slot.  Quoted regions (string literals and quoted
    identifiers) are preserved byte-for-byte."""
    out: List[str] = []
    pending_space = False
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in ("'", '"'):
            j = i + 1
            while j < n:
                if sql[j] == ch:
                    if j + 1 < n and sql[j + 1] == ch:  # doubled-quote escape
                        j += 2
                        continue
                    break
                j += 1
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(sql[i : j + 1])
            i = j + 1
        elif ch.isspace():
            pending_space = True
            i += 1
        else:
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(ch)
            i += 1
    return "".join(out)


class PlanCache:
    """A thread-safe LRU of compiled plans with hit/miss/eviction counters.

    Keys are ``(catalog namespace, normalized SQL text, catalog
    version)``; the catalog bumps its version on every DDL/insert, so a
    stale plan can never be served, and the namespace keeps multiple
    catalogs sharing one cache from colliding.  Concurrent sessions share
    one cache under its lock.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, SelectPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple) -> Optional[SelectPlan]:
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: Tuple, plan: SelectPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }
