"""Render AST nodes back to SQL text.

Used for derived output-column names, for displaying the ``(T, Q)`` state to
users, and for logging the queries the Conductor builds.
"""

from __future__ import annotations

from typing import List

from . import ast
from .types import format_value


def expr_to_sql(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(expr.value, bool):
            return "TRUE" if expr.value else "FALSE"
        return format_value(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.Unary):
        if expr.op == "NOT":
            return f"NOT ({expr_to_sql(expr.operand)})"
        return f"{expr.op}{expr_to_sql(expr.operand)}"
    if isinstance(expr, ast.Binary):
        return f"({expr_to_sql(expr.left)} {expr.op} {expr_to_sql(expr.right)})"
    if isinstance(expr, ast.FunctionCall):
        if expr.is_star:
            return f"{expr.name}(*)"
        prefix = "DISTINCT " if expr.distinct else ""
        args = ", ".join(expr_to_sql(a) for a in expr.args)
        return f"{expr.name}({prefix}{args})"
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(expr_to_sql(expr.operand))
        for cond, result in expr.whens:
            parts.append(f"WHEN {expr_to_sql(cond)} THEN {expr_to_sql(result)}")
        if expr.else_ is not None:
            parts.append(f"ELSE {expr_to_sql(expr.else_)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.Cast):
        return f"CAST({expr_to_sql(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, ast.IsNull):
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{expr_to_sql(expr.operand)} {middle}"
    if isinstance(expr, ast.InList):
        items = ", ".join(expr_to_sql(i) for i in expr.items)
        word = "NOT IN" if expr.negated else "IN"
        return f"{expr_to_sql(expr.operand)} {word} ({items})"
    if isinstance(expr, ast.InSubquery):
        word = "NOT IN" if expr.negated else "IN"
        return f"{expr_to_sql(expr.operand)} {word} ({select_to_sql(expr.subquery)})"
    if isinstance(expr, ast.ScalarSubquery):
        return f"({select_to_sql(expr.subquery)})"
    if isinstance(expr, ast.Exists):
        word = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{word} ({select_to_sql(expr.subquery)})"
    if isinstance(expr, ast.Between):
        word = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{expr_to_sql(expr.operand)} {word} "
            f"{expr_to_sql(expr.low)} AND {expr_to_sql(expr.high)}"
        )
    if isinstance(expr, ast.Like):
        word = "ILIKE" if expr.case_insensitive else "LIKE"
        if expr.negated:
            word = f"NOT {word}"
        return f"{expr_to_sql(expr.operand)} {word} {expr_to_sql(expr.pattern)}"
    raise TypeError(f"cannot render expression {expr!r}")


def derive_column_name(expr: ast.Expr) -> str:
    """The output-column name an un-aliased projection gets."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr_to_sql(expr).lower() if expr.is_star or expr.args else expr.name.lower() + "()"
    if isinstance(expr, ast.Cast):
        return derive_column_name(expr.operand)
    return expr_to_sql(expr)


def _table_expr_to_sql(texpr: ast.TableExpr) -> str:
    if isinstance(texpr, ast.TableRef):
        return f"{texpr.name} AS {texpr.alias}" if texpr.alias else texpr.name
    if isinstance(texpr, ast.SubqueryRef):
        return f"({select_to_sql(texpr.select)}) AS {texpr.alias}"
    if isinstance(texpr, ast.Join):
        left = _table_expr_to_sql(texpr.left)
        right = _table_expr_to_sql(texpr.right)
        if texpr.join_type == "CROSS":
            return f"{left} CROSS JOIN {right}"
        clause = f"{left} {texpr.join_type} JOIN {right}"
        if texpr.condition is not None:
            return f"{clause} ON {expr_to_sql(texpr.condition)}"
        if texpr.using:
            return f"{clause} USING ({', '.join(texpr.using)})"
        return clause
    raise TypeError(f"cannot render table expression {texpr!r}")


def select_to_sql(select: ast.Select) -> str:
    parts: List[str] = []
    if select.ctes:
        ctes = ", ".join(f"{name} AS ({select_to_sql(sub)})" for name, sub in select.ctes)
        parts.append(f"WITH {ctes}")
    keyword = "SELECT DISTINCT" if select.distinct else "SELECT"
    items = ", ".join(
        expr_to_sql(item.expr) + (f" AS {item.alias}" if item.alias else "")
        for item in select.items
    )
    parts.append(f"{keyword} {items}")
    if select.from_clause is not None:
        parts.append(f"FROM {_table_expr_to_sql(select.from_clause)}")
    if select.where is not None:
        parts.append(f"WHERE {expr_to_sql(select.where)}")
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(expr_to_sql(e) for e in select.group_by))
    if select.having is not None:
        parts.append(f"HAVING {expr_to_sql(select.having)}")
    for set_op in select.set_ops:
        keyword = set_op.op + (" ALL" if set_op.all else "")
        parts.append(f"{keyword} {select_to_sql(set_op.select)}")
    if select.order_by:
        rendered = []
        for item in select.order_by:
            text = expr_to_sql(item.expr)
            if not item.ascending:
                text += " DESC"
            if not item.nulls_last:
                text += " NULLS FIRST"
            rendered.append(text)
        parts.append("ORDER BY " + ", ".join(rendered))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    if select.offset is not None:
        parts.append(f"OFFSET {select.offset}")
    return " ".join(parts)
