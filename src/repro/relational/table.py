"""In-memory tables: the engine's single physical data structure.

A :class:`Table` is a named schema plus a list of row tuples.  Tables are
immutable in spirit: operators build new tables rather than mutating inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .errors import BindError, ExecutionError
from .types import DataType, coerce_for_storage, format_value, infer_column_type


@dataclass(frozen=True)
class Column:
    """A column: a name plus a logical type."""

    name: str
    dtype: DataType

    def renamed(self, name: str) -> "Column":
        return Column(name, self.dtype)


class Schema:
    """An ordered list of columns with case-insensitive name lookup."""

    def __init__(self, columns: Sequence[Column]):
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {}
        for i, col in enumerate(self.columns):
            # First occurrence wins for duplicate names (SQL allows dups
            # in projections; lookup by name then requires qualification).
            self._index.setdefault(col.name.lower(), i)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def names(self) -> List[str]:
        return [col.name for col in self.columns]

    def types(self) -> List[DataType]:
        return [col.dtype for col in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise BindError(f"column {name!r} not found; available: {self.names()}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name} {c.dtype}" for c in self.columns)
        return f"Schema({cols})"


class Table:
    """A named, schema-full collection of row tuples."""

    def __init__(self, name: str, schema: Schema, rows: Iterable[Sequence[Any]]):
        self.name = name
        self.schema = schema
        self.rows: List[Tuple[Any, ...]] = [tuple(row) for row in rows]
        self._columns: Optional[List[List[Any]]] = None
        width = len(schema)
        for row in self.rows:
            if len(row) != width:
                raise ExecutionError(
                    f"row width {len(row)} does not match schema width {width} in table {name!r}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, name: str, data: Dict[str, List[Any]]) -> "Table":
        """Build a table from a column-name → values mapping (types inferred)."""
        if data:
            lengths = {len(values) for values in data.values()}
            if len(lengths) > 1:
                raise ExecutionError(f"columns of unequal length in table {name!r}: {lengths}")
        columns = [Column(col, infer_column_type(values)) for col, values in data.items()]
        schema = Schema(columns)
        names = list(data)
        n_rows = len(data[names[0]]) if names else 0
        rows = []
        for i in range(n_rows):
            rows.append(
                tuple(
                    coerce_for_storage(data[col.name][i], col.dtype)
                    for col in columns
                )
            )
        return cls(name, schema, rows)

    @classmethod
    def from_dicts(cls, name: str, records: Sequence[Dict[str, Any]]) -> "Table":
        """Build a table from a list of {column: value} records."""
        names: List[str] = []
        for record in records:
            for key in record:
                if key not in names:
                    names.append(key)
        data = {key: [record.get(key) for record in records] for key in names}
        return cls.from_columns(name, data)

    @classmethod
    def empty(cls, name: str, columns: Sequence[Column]) -> "Table":
        return cls(name, Schema(columns), [])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.schema)

    def column_names(self) -> List[str]:
        return self.schema.names()

    def column_values(self, name: str) -> List[Any]:
        idx = self.schema.index_of(name)
        if self._columns is not None:
            return list(self._columns[idx])
        return [row[idx] for row in self.rows]

    def as_columns(self) -> List[List[Any]]:
        """A memoized column-major view of the row storage.

        Built once on first use and shared with every caller, so the
        vectorized engine scans a table without re-pivoting it per query.
        Callers MUST treat the returned lists as read-only (tables are
        immutable-by-convention; operators build new columns).
        """
        cols = self._columns
        if cols is None:
            if self.rows:
                cols = [list(values) for values in zip(*self.rows)]
            else:
                cols = [[] for _ in self.schema]
            self._columns = cols
        return cols

    def to_dicts(self) -> List[Dict[str, Any]]:
        names = self.column_names()
        return [dict(zip(names, row)) for row in self.rows]

    def to_columns(self) -> Dict[str, List[Any]]:
        return {
            name: list(col) for name, col in zip(self.column_names(), self.as_columns())
        }

    def head(self, n: int = 5) -> "Table":
        return Table(self.name, self.schema, self.rows[:n])

    def renamed(self, name: str) -> "Table":
        return Table(name, self.schema, self.rows)

    def single_value(self) -> Any:
        """The value of a 1x1 result (used for scalar subqueries / answers)."""
        if self.num_rows != 1 or self.num_columns != 1:
            raise ExecutionError(
                f"expected a single value, got {self.num_rows}x{self.num_columns}"
            )
        return self.rows[0][0]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def pretty(self, max_rows: int = 20) -> str:
        """A fixed-width textual rendering (used in prompts and the UI)."""
        names = self.column_names()
        shown = self.rows[:max_rows]
        cells = [[format_value(v) for v in row] for row in shown]
        widths = [len(n) for n in names]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = [" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
        lines = [header, sep] + body
        if self.num_rows > max_rows:
            lines.append(f"... ({self.num_rows - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, {self.num_rows} rows x {self.num_columns} cols)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Table)
            and self.schema == other.schema
            and self.rows == other.rows
        )
