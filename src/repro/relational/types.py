"""Value types and coercion rules for the relational engine.

Values are plain Python objects: ``None`` is SQL NULL, ``bool`` is BOOLEAN,
``int`` is INTEGER, ``float`` is DOUBLE, ``str`` is TEXT, and
``datetime.date`` is DATE.  The engine follows SQL three-valued logic: any
comparison involving NULL yields NULL, and predicates keep a row only when
they evaluate to (SQL) TRUE.
"""

from __future__ import annotations

import datetime
import enum
import math
from typing import Any, Iterable, Optional

from .errors import ExecutionError


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    NULL = "NULL"
    BOOLEAN = "BOOLEAN"
    INTEGER = "INTEGER"
    DOUBLE = "DOUBLE"
    TEXT = "TEXT"
    DATE = "DATE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_TYPE_ALIASES = {
    "INT": DataType.INTEGER,
    "INTEGER": DataType.INTEGER,
    "BIGINT": DataType.INTEGER,
    "SMALLINT": DataType.INTEGER,
    "TINYINT": DataType.INTEGER,
    "DOUBLE": DataType.DOUBLE,
    "FLOAT": DataType.DOUBLE,
    "REAL": DataType.DOUBLE,
    "DECIMAL": DataType.DOUBLE,
    "NUMERIC": DataType.DOUBLE,
    "TEXT": DataType.TEXT,
    "VARCHAR": DataType.TEXT,
    "CHAR": DataType.TEXT,
    "STRING": DataType.TEXT,
    "BOOLEAN": DataType.BOOLEAN,
    "BOOL": DataType.BOOLEAN,
    "DATE": DataType.DATE,
    "NULL": DataType.NULL,
}


def parse_type_name(name: str) -> DataType:
    """Map a SQL type name (e.g. ``VARCHAR``) to a :class:`DataType`."""
    base = name.strip().upper()
    if "(" in base:
        base = base[: base.index("(")].strip()
    try:
        return _TYPE_ALIASES[base]
    except KeyError:
        raise ExecutionError(f"unknown type name: {name!r}") from None


def type_of_value(value: Any) -> DataType:
    """Return the :class:`DataType` of a Python value."""
    if value is None:
        return DataType.NULL
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.DOUBLE
    if isinstance(value, str):
        return DataType.TEXT
    if isinstance(value, datetime.date):
        return DataType.DATE
    raise ExecutionError(f"unsupported value type: {type(value).__name__}")


_NUMERIC = (DataType.INTEGER, DataType.DOUBLE)


def is_numeric(dtype: DataType) -> bool:
    """True for INTEGER and DOUBLE."""
    return dtype in _NUMERIC


def common_type(a: DataType, b: DataType) -> DataType:
    """The least common type of two column types (NULL is absorbed)."""
    if a == b:
        return a
    if a == DataType.NULL:
        return b
    if b == DataType.NULL:
        return a
    if is_numeric(a) and is_numeric(b):
        return DataType.DOUBLE
    # Heterogeneous columns degrade to TEXT, mirroring CSV-style lakes.
    return DataType.TEXT


def infer_column_type(values: Iterable[Any]) -> DataType:
    """Infer a column type from a sequence of values."""
    result = DataType.NULL
    for value in values:
        result = common_type(result, type_of_value(value))
        if result == DataType.TEXT:
            break
    return result


def parse_date(text: str) -> datetime.date:
    """Parse a date from common formats ('YYYY-MM-DD', 'Month D, YYYY', ...)."""
    text = text.strip()
    for fmt in ("%Y-%m-%d", "%Y/%m/%d", "%m/%d/%Y", "%d-%m-%Y", "%B %d, %Y", "%b %d, %Y"):
        try:
            return datetime.datetime.strptime(text, fmt).date()
        except ValueError:
            continue
    raise ExecutionError(f"cannot parse date: {text!r}")


def cast_value(value: Any, target: DataType) -> Any:
    """CAST a value to ``target``; NULL casts to NULL; bad casts raise."""
    if value is None:
        return None
    try:
        if target == DataType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, str):
                return int(float(value)) if "." in value or "e" in value.lower() else int(value)
            if isinstance(value, float):
                if math.isnan(value) or math.isinf(value):
                    raise ExecutionError(f"cannot cast {value!r} to INTEGER")
                return int(value)
            if isinstance(value, int):
                return value
        elif target == DataType.DOUBLE:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value)
        elif target == DataType.TEXT:
            return format_value(value)
        elif target == DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return value != 0
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "yes", "1"):
                    return True
                if lowered in ("false", "f", "no", "0"):
                    return False
        elif target == DataType.DATE:
            if isinstance(value, datetime.date):
                return value
            if isinstance(value, str):
                return parse_date(value)
        elif target == DataType.NULL:
            return None
    except ExecutionError:
        raise
    except (ValueError, TypeError) as exc:
        raise ExecutionError(f"cannot cast {value!r} to {target}") from exc
    raise ExecutionError(f"cannot cast {value!r} ({type_of_value(value)}) to {target}")


def format_value(value: Any) -> str:
    """Render a value the way the engine prints it (and CAST-to-TEXT does)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15 and not math.isinf(value):
            return f"{value:.1f}"
        return repr(value)
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def coerce_for_storage(value: Any, dtype: DataType) -> Any:
    """Gently coerce a raw value into a column of type ``dtype``.

    Unlike :func:`cast_value`, this never raises for NULLs and widens
    integers to floats for DOUBLE columns; it is used by table constructors
    and CSV ingestion.
    """
    if value is None:
        return None
    if dtype == DataType.DOUBLE and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if dtype == DataType.TEXT and not isinstance(value, str):
        return format_value(value)
    return value


def compare_values(a: Any, b: Any) -> Optional[int]:
    """Three-valued comparison: -1/0/1, or None when either side is NULL."""
    if a is None or b is None:
        return None
    ta, tb = type_of_value(a), type_of_value(b)
    if is_numeric(ta) and is_numeric(tb):
        pass  # Python compares int/float natively.
    elif ta != tb:
        # Cross-type comparison: compare textual renderings deterministically.
        a, b = format_value(a), format_value(b)
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def sort_key(value: Any) -> tuple:
    """A total-order sort key placing NULLs last and mixing types safely."""
    if value is None:
        return (2, 0, "")
    dtype = type_of_value(value)
    if is_numeric(dtype) or dtype == DataType.BOOLEAN:
        return (0, float(value), "")
    if dtype == DataType.DATE:
        return (0, float(value.toordinal()), "")
    return (1, 0.0, str(value))
