"""Vectorized (column-at-a-time) operator kernels and expression evaluation.

The planned engine (:mod:`repro.relational.plan`) lowers a SELECT into
operator nodes whose payloads are *vector expression closures* compiled
here.  A closure has the shape ``fn(chunk, ctx) -> list`` — it evaluates
one expression over every row of a :class:`Chunk` at once, so the
per-row interpreter overhead (closure trees, three-valued-logic dispatch,
tuple indexing) is paid once per column instead of once per value.

Semantics mirror :class:`repro.relational.executor.RowExecutor` exactly:
three-valued logic, NULL handling in joins and aggregation, cross-type
comparison via textual rendering, and lazy CASE branches (implemented by
masked evaluation over shrinking row subsets).
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import ast
from .aggregates import Aggregate, lookup_aggregate
from .errors import BindError, ExecutionError
from .executor import (
    _Binding,
    _InvertedKey,
    _apply_binary,
    _apply_unary,
    _like_regex,
    _to_bool,
)
from .functions import lookup_scalar
from .types import (
    DataType,
    cast_value,
    common_type,
    compare_values,
    parse_type_name,
    sort_key,
    type_of_value,
)

#: Exact numeric types for fast paths (``type(x) in _NUM`` excludes bool,
#: whose ``type`` is ``bool`` even though it subclasses ``int``).
_NUM = (int, float)


_UNSET = object()


class LazyColumns:
    """Columns materialized on first access (late materialization).

    Join assembly and row gathers produce these so that only the columns
    an expression actually references get built — a ``SELECT t.a, u.c``
    over a six-column join touches two columns, not six.  Supports the
    small sequence surface the operators use: indexing, slicing,
    iteration, ``len`` and truthiness.
    """

    __slots__ = ("_thunks", "_cols")

    def __init__(self, thunks: List[Callable[[], List[Any]]]):
        self._thunks = thunks
        self._cols: List[Any] = [_UNSET] * len(thunks)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._thunks)))]
        col = self._cols[index]
        if col is _UNSET:
            col = self._cols[index] = self._thunks[index]()
        return col

    def __len__(self) -> int:
        return len(self._thunks)

    def __iter__(self):
        return (self[i] for i in range(len(self._thunks)))

    def __bool__(self) -> bool:
        return bool(self._thunks)


class Chunk:
    """A batch of rows stored column-major: ``cols[i]`` is column *i*.

    ``cols`` is a list of value lists or a :class:`LazyColumns`.
    ``types`` is optional explicit column typing (set-operation results
    carry the legacy ``common_type`` schema); ``None`` means "infer from
    values", matching how projections type their output.
    """

    __slots__ = ("cols", "n", "types")

    def __init__(self, cols, n: int, types=None):
        self.cols = cols
        self.n = n
        self.types = types

    @property
    def width(self) -> int:
        return len(self.cols)

    def gather(self, indices: Sequence[int]) -> "Chunk":
        """A new chunk holding the given rows (columns build lazily)."""
        cols = self.cols

        def thunk(k: int) -> Callable[[], List[Any]]:
            def build() -> List[Any]:
                col = cols[k]
                return [col[i] for i in indices]

            return build

        return Chunk(
            LazyColumns([thunk(k) for k in range(len(cols))]), len(indices), self.types
        )

    def rows(self) -> List[Tuple[Any, ...]]:
        """Row-major view (used by sort keys and set-op markers)."""
        if not self.cols:
            return [()] * self.n
        return list(zip(*self.cols))


#: A compiled vector expression: (chunk, ctx) -> column of chunk.n values.
VecFn = Callable[[Chunk, Any], List[Any]]


# ----------------------------------------------------------------------
# Primitive vector helpers
# ----------------------------------------------------------------------
_TYPE_TO_DATATYPE = {
    type(None): DataType.NULL,
    bool: DataType.BOOLEAN,
    int: DataType.INTEGER,
    float: DataType.DOUBLE,
    str: DataType.TEXT,
    _dt.date: DataType.DATE,
    _dt.datetime: DataType.DATE,
}


def infer_column_type_fast(col: List[Any]) -> DataType:
    """``infer_column_type`` in one C-level pass.

    ``common_type`` is a commutative/associative lattice join, so folding
    it over the *set* of Python types present gives the same answer as
    folding over every value — at ``set(map(type, col))`` speed.
    """
    result = DataType.NULL
    for t in set(map(type, col)):
        dtype = _TYPE_TO_DATATYPE.get(t)
        if dtype is None:
            # Unknown type: defer to the value-level rules (raises the
            # same ExecutionError for unsupported values).
            sample = next(v for v in col if type(v) is t)
            dtype = type_of_value(sample)
        result = common_type(result, dtype)
        if result == DataType.TEXT:
            break
    return result


def truth_indices(values: List[Any], context: str) -> List[int]:
    """Indices where a predicate column is (SQL) TRUE — the filter kernel."""
    out: List[int] = []
    append = out.append
    for i, v in enumerate(values):
        if v is True:
            append(i)
        elif v is None or v is False:
            continue
        elif type(v) in _NUM:
            if v != 0:
                append(i)
        else:
            raise ExecutionError(f"{context} must be a boolean, got {v!r}")
    return out


def _bool3(v: Any, context: str) -> Optional[bool]:
    """_to_bool with a fast path for the common already-boolean case."""
    if type(v) is bool or v is None:
        return v
    return _to_bool(v, context)


def _cmp(a: Any, b: Any) -> int:
    """compare_values for non-NULL operands, with a same-type fast path.

    Mirrors :func:`repro.relational.types.compare_values` exactly —
    including NaN comparing "equal" to NaN (neither < nor >) and
    cross-type operands falling back to textual rendering.
    """
    ta, tb = type(a), type(b)
    if ta is tb or (ta in _NUM and tb in _NUM):
        if a < b:
            return -1
        if a > b:
            return 1
        return 0
    result = compare_values(a, b)
    assert result is not None  # neither side is None here
    return result


def compare_columns(op: str, lefts: List[Any], rights: List[Any]) -> List[Any]:
    """Vectorized three-valued comparison of two columns."""
    out: List[Any] = []
    append = out.append
    if op == "=":
        for a, b in zip(lefts, rights):
            append(None if a is None or b is None else _cmp(a, b) == 0)
    elif op == "!=":
        for a, b in zip(lefts, rights):
            append(None if a is None or b is None else _cmp(a, b) != 0)
    elif op == "<":
        for a, b in zip(lefts, rights):
            append(None if a is None or b is None else _cmp(a, b) < 0)
    elif op == "<=":
        for a, b in zip(lefts, rights):
            append(None if a is None or b is None else _cmp(a, b) <= 0)
    elif op == ">":
        for a, b in zip(lefts, rights):
            append(None if a is None or b is None else _cmp(a, b) > 0)
    elif op == ">=":
        for a, b in zip(lefts, rights):
            append(None if a is None or b is None else _cmp(a, b) >= 0)
    else:  # pragma: no cover - guarded by the compiler
        raise ExecutionError(f"unknown comparison {op!r}")
    return out


def arithmetic_columns(op: str, lefts: List[Any], rights: List[Any]) -> List[Any]:
    """Vectorized arithmetic / concat with the legacy slow path as fallback.

    The fast path covers exact int/float operands; everything else (dates,
    booleans, strings, type errors) routes through ``_apply_binary`` so the
    semantics — and error messages — stay identical to the row engine.
    """
    out: List[Any] = []
    append = out.append
    if op == "+":
        for a, b in zip(lefts, rights):
            if type(a) in _NUM and type(b) in _NUM:
                append(a + b)
            elif a is None or b is None:
                append(None)
            else:
                append(_apply_binary(op, lambda a=a: a, lambda b=b: b))
    elif op == "-":
        for a, b in zip(lefts, rights):
            if type(a) in _NUM and type(b) in _NUM:
                append(a - b)
            elif a is None or b is None:
                append(None)
            else:
                append(_apply_binary(op, lambda a=a: a, lambda b=b: b))
    elif op == "*":
        for a, b in zip(lefts, rights):
            if type(a) in _NUM and type(b) in _NUM:
                append(a * b)
            elif a is None or b is None:
                append(None)
            else:
                append(_apply_binary(op, lambda a=a: a, lambda b=b: b))
    elif op == "/":
        for a, b in zip(lefts, rights):
            if type(a) in _NUM and type(b) in _NUM:
                if b == 0:
                    raise ExecutionError("division by zero")
                append(a / b)
            elif a is None or b is None:
                append(None)
            else:
                append(_apply_binary(op, lambda a=a: a, lambda b=b: b))
    elif op == "%":
        for a, b in zip(lefts, rights):
            if type(a) in _NUM and type(b) in _NUM:
                if b == 0:
                    raise ExecutionError("modulo by zero")
                append(a % b)
            elif a is None or b is None:
                append(None)
            else:
                append(_apply_binary(op, lambda a=a: a, lambda b=b: b))
    elif op == "||":
        for a, b in zip(lefts, rights):
            if type(a) is str and type(b) is str:
                append(a + b)
            elif a is None or b is None:
                append(None)
            else:
                append(_apply_binary(op, lambda a=a: a, lambda b=b: b))
    else:
        for a, b in zip(lefts, rights):
            append(_apply_binary(op, lambda a=a: a, lambda b=b: b))
    return out


def order_indices(
    key_rows: List[Tuple], order_by: List[ast.OrderItem]
) -> List[int]:
    """Stable argsort of per-row key tuples under ORDER BY semantics.

    Same key construction as ``RowExecutor._sort_with_keys``: NULLs rank
    first/last regardless of direction, DESC inverts via ``_InvertedKey``.
    """
    directions = [(item.ascending, 1 if item.nulls_last else -1) for item in order_by]

    def key_for(i: int) -> Tuple:
        parts = []
        for value, (ascending, null_rank) in zip(key_rows[i], directions):
            if value is None:
                parts.append((null_rank, (0, 0.0, "")))
            else:
                base = sort_key(value)
                parts.append((0, base if ascending else _InvertedKey(base)))
        return tuple(parts)

    indexed = list(range(len(key_rows)))
    indexed.sort(key=key_for)
    return indexed


def distinct_indices(chunk: Chunk) -> List[int]:
    """Indices of the first occurrence of each distinct row."""
    seen: set = set()
    out: List[int] = []
    for i, row in enumerate(chunk.rows()):
        marker = tuple(sort_key(v) for v in row)
        if marker not in seen:
            seen.add(marker)
            out.append(i)
    return out


# ----------------------------------------------------------------------
# Hash join kernel
# ----------------------------------------------------------------------
def hash_join_matches(
    left_key_cols: List[List[Any]],
    right_key_cols: List[List[Any]],
) -> Tuple[List[int], List[int]]:
    """Matching (left, right) row-index pairs for an equi-join.

    NULL keys never match (SQL equi-join semantics).  Keys are raw values,
    exactly like the row engine's hash join, so ``1`` and ``1.0`` unify.
    """
    index: Dict[Any, List[int]] = {}
    if len(right_key_cols) == 1:
        for j, key in enumerate(right_key_cols[0]):
            if key is None:
                continue
            index.setdefault(key, []).append(j)
    else:
        for j, key in enumerate(zip(*right_key_cols)):
            if None in key:
                continue
            index.setdefault(key, []).append(j)

    left_out: List[int] = []
    right_out: List[int] = []
    if len(left_key_cols) == 1:
        for i, key in enumerate(left_key_cols[0]):
            if key is None:
                continue
            for j in index.get(key, ()):
                left_out.append(i)
                right_out.append(j)
    else:
        for i, key in enumerate(zip(*left_key_cols)):
            if None in key:
                continue
            for j in index.get(key, ()):
                left_out.append(i)
                right_out.append(j)
    return left_out, right_out


# ----------------------------------------------------------------------
# Hash aggregation kernel
# ----------------------------------------------------------------------
def group_rows(key_cols: List[List[Any]], n: int) -> Tuple[List[int], List[Tuple]]:
    """Assign each row a dense group id; returns (gids, first-seen keys).

    Grouping hashes ``sort_key`` forms (the row engine's behavior), so
    ``1``, ``1.0`` and ``TRUE`` land in one group while the group's
    *reported* key is the first value seen.
    """
    gids: List[int] = []
    key_rows: List[Tuple] = []
    seen: Dict[Any, int] = {}
    append = gids.append
    if len(key_cols) == 1:
        for v in key_cols[0]:
            h = sort_key(v)
            g = seen.get(h)
            if g is None:
                g = seen[h] = len(key_rows)
                key_rows.append((v,))
            append(g)
    else:
        for raw in zip(*key_cols):
            h = tuple(sort_key(v) for v in raw)
            g = seen.get(h)
            if g is None:
                g = seen[h] = len(key_rows)
                key_rows.append(raw)
            append(g)
    return gids, key_rows


def accumulate_aggregate(
    agg: Aggregate,
    arg_cols: List[List[Any]],
    is_star: bool,
    distinct: bool,
    gids: Optional[List[int]],
    ngroups: int,
    n: int,
) -> List[Any]:
    """Per-group results for one aggregate over the whole input chunk.

    ``gids is None`` means a single implicit group (no GROUP BY).
    Fast inline loops cover the hot aggregates (COUNT/SUM/AVG/MIN/MAX
    without DISTINCT); everything else funnels through the aggregate's
    init/step/final triple exactly like the row engine.
    """
    name = agg.name
    if gids is None:
        gids = [0] * n
        ngroups = 1

    if not distinct:
        if is_star:
            counts = [0] * ngroups
            for g in gids:
                counts[g] += 1
            return counts
        if name == "count":
            counts = [0] * ngroups
            for g, v in zip(gids, arg_cols[0]):
                if v is not None:
                    counts[g] += 1
            return counts
        if name == "sum":
            sums: List[Any] = [None] * ngroups
            for g, v in zip(gids, arg_cols[0]):
                if v is None:
                    continue
                if type(v) not in _NUM:
                    raise ExecutionError(f"SUM requires numeric input, got {v!r}")
                s = sums[g]
                sums[g] = v if s is None else s + v
            return sums
        if name in ("avg", "mean"):
            label = name.upper()
            sums = [0.0] * ngroups
            counts = [0] * ngroups
            for g, v in zip(gids, arg_cols[0]):
                if v is None:
                    continue
                if type(v) not in _NUM:
                    raise ExecutionError(f"{label} requires numeric input, got {v!r}")
                sums[g] += v
                counts[g] += 1
            return [s / c if c else None for s, c in zip(sums, counts)]
        if name in ("min", "max"):
            best: List[Any] = [None] * ngroups
            best_key: List[Any] = [None] * ngroups
            want_low = name == "min"
            for g, v in zip(gids, arg_cols[0]):
                if v is None:
                    continue
                k = sort_key(v)
                bk = best_key[g]
                if bk is None or (k < bk if want_low else k > bk):
                    best[g] = v
                    best_key[g] = k
            return best

    # Generic path: init/step/final with optional DISTINCT de-duplication.
    states = [agg.init() for _ in range(ngroups)]
    if distinct:
        seen: List[set] = [set() for _ in range(ngroups)]
    if is_star:
        for i, g in enumerate(gids):
            if distinct:
                if () in seen[g]:
                    continue
                seen[g].add(())
            states[g] = agg.step(states[g], ())
    elif len(arg_cols) == 1:
        skip_nulls = agg.skip_nulls
        step = agg.step
        for g, v in zip(gids, arg_cols[0]):
            if skip_nulls and v is None:
                continue
            if distinct:
                marker = (sort_key(v),)
                if marker in seen[g]:
                    continue
                seen[g].add(marker)
            states[g] = step(states[g], (v,))
    else:
        skip_nulls = agg.skip_nulls
        step = agg.step
        for i, args in enumerate(zip(*arg_cols)):
            g = gids[i]
            if skip_nulls and args[0] is None:
                continue
            if distinct:
                marker = tuple(sort_key(a) for a in args)
                if marker in seen[g]:
                    continue
                seen[g].add(marker)
            states[g] = step(states[g], args)
    return [agg.final(state) for state in states]


# ----------------------------------------------------------------------
# Vector expression compiler
# ----------------------------------------------------------------------
def compile_vector(
    expr: ast.Expr,
    binding: _Binding,
    subplan: Callable[[ast.Select], Any],
) -> VecFn:
    """Compile ``expr`` into a column-at-a-time evaluator.

    ``binding`` resolves column references to positions at compile (plan)
    time.  ``subplan`` lowers an uncorrelated sub-SELECT into something
    with ``execute(ctx) -> Chunk`` — evaluation defers to first use and is
    memoized per execution in ``ctx``, mirroring the row engine's
    per-query subquery cache.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda chunk, ctx: [value] * chunk.n
    if isinstance(expr, ast.ColumnRef):
        idx = binding.resolve(expr.name, expr.table)
        return lambda chunk, ctx: chunk.cols[idx]
    if isinstance(expr, ast.Star):
        raise BindError("'*' is only allowed in SELECT lists and COUNT(*)")
    if isinstance(expr, ast.Unary):
        inner = compile_vector(expr.operand, binding, subplan)
        op = expr.op
        if op == "-":

            def neg(chunk: Chunk, ctx) -> List[Any]:
                out: List[Any] = []
                append = out.append
                for v in inner(chunk, ctx):
                    if type(v) in _NUM:
                        append(-v)
                    elif v is None:
                        append(None)
                    else:
                        append(_apply_unary("-", v))
                return out

            return neg
        return lambda chunk, ctx: [_apply_unary(op, v) for v in inner(chunk, ctx)]
    if isinstance(expr, ast.Binary):
        return _compile_binary(expr, binding, subplan)
    if isinstance(expr, ast.FunctionCall):
        return _compile_function(expr, binding, subplan)
    if isinstance(expr, ast.Case):
        return _compile_case(expr, binding, subplan)
    if isinstance(expr, ast.Cast):
        inner = compile_vector(expr.operand, binding, subplan)
        target = parse_type_name(expr.type_name)
        return lambda chunk, ctx: [cast_value(v, target) for v in inner(chunk, ctx)]
    if isinstance(expr, ast.IsNull):
        inner = compile_vector(expr.operand, binding, subplan)
        if expr.negated:
            return lambda chunk, ctx: [v is not None for v in inner(chunk, ctx)]
        return lambda chunk, ctx: [v is None for v in inner(chunk, ctx)]
    if isinstance(expr, ast.InList):
        return _compile_in_list(expr, binding, subplan)
    if isinstance(expr, ast.InSubquery):
        return _compile_in_subquery(expr, binding, subplan)
    if isinstance(expr, ast.ScalarSubquery):
        plan = subplan(expr.subquery)

        def scalar_subquery(chunk: Chunk, ctx) -> List[Any]:
            if chunk.n == 0:  # no row ever evaluates it (lazy, like the row engine)
                return []
            key = ("scalar", id(plan))
            if key not in ctx.subq:
                sub = plan.execute(ctx)
                if sub.width != 1:
                    raise ExecutionError("scalar subquery must return one column")
                if sub.n > 1:
                    raise ExecutionError("scalar subquery returned more than one row")
                ctx.subq[key] = sub.cols[0][0] if sub.n else None
            return [ctx.subq[key]] * chunk.n

        return scalar_subquery
    if isinstance(expr, ast.Exists):
        plan = subplan(expr.subquery)
        negated = expr.negated

        def exists(chunk: Chunk, ctx) -> List[Any]:
            if chunk.n == 0:
                return []
            key = ("exists", id(plan))
            if key not in ctx.subq:
                ctx.subq[key] = plan.execute(ctx).n > 0
            found = ctx.subq[key]
            return [not found if negated else found] * chunk.n

        return exists
    if isinstance(expr, ast.Between):
        operand = compile_vector(expr.operand, binding, subplan)
        low = compile_vector(expr.low, binding, subplan)
        high = compile_vector(expr.high, binding, subplan)
        negated = expr.negated

        def between(chunk: Chunk, ctx) -> List[Any]:
            out: List[Any] = []
            append = out.append
            for v, lo, hi in zip(operand(chunk, ctx), low(chunk, ctx), high(chunk, ctx)):
                if v is None or lo is None or hi is None:
                    append(None)
                    continue
                result = _cmp(v, lo) >= 0 and _cmp(v, hi) <= 0
                append(not result if negated else result)
            return out

        return between
    if isinstance(expr, ast.Like):
        return _compile_like(expr, binding, subplan)
    raise BindError(f"cannot compile expression: {expr!r}")


def _compile_binary(expr: ast.Binary, binding: _Binding, subplan) -> VecFn:
    left = compile_vector(expr.left, binding, subplan)
    right = compile_vector(expr.right, binding, subplan)
    op = expr.op
    if op in ("AND", "OR"):
        # The row engine evaluates both operands unconditionally (no
        # short-circuit), so full-column evaluation is semantics-preserving.
        is_and = op == "AND"

        def logic(chunk: Chunk, ctx) -> List[Any]:
            out: List[Any] = []
            append = out.append
            for a, b in zip(left(chunk, ctx), right(chunk, ctx)):
                x = _bool3(a, op)
                y = _bool3(b, op)
                if is_and:
                    if x is False or y is False:
                        append(False)
                    elif x is None or y is None:
                        append(None)
                    else:
                        append(True)
                else:
                    if x is True or y is True:
                        append(True)
                    elif x is None or y is None:
                        append(None)
                    else:
                        append(False)
            return out

        return logic
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return lambda chunk, ctx: compare_columns(op, left(chunk, ctx), right(chunk, ctx))
    return lambda chunk, ctx: arithmetic_columns(op, left(chunk, ctx), right(chunk, ctx))


def _compile_function(expr: ast.FunctionCall, binding: _Binding, subplan) -> VecFn:
    if lookup_aggregate(expr.name):
        raise BindError(
            f"aggregate {expr.name} is not allowed here (no GROUP BY context)"
        )
    scalar = lookup_scalar(expr.name)
    if scalar is None:
        raise BindError(f"unknown function {expr.name!r}")
    scalar.check_arity(len(expr.args))
    arg_fns = [compile_vector(a, binding, subplan) for a in expr.args]
    invoke = scalar.invoke
    if not arg_fns:
        return lambda chunk, ctx: [invoke([])] * chunk.n
    if len(arg_fns) == 1:
        fn0 = arg_fns[0]
        return lambda chunk, ctx: [invoke([v]) for v in fn0(chunk, ctx)]

    def call(chunk: Chunk, ctx) -> List[Any]:
        arg_cols = [fn(chunk, ctx) for fn in arg_fns]
        return [invoke(list(args)) for args in zip(*arg_cols)]

    return call


def _compile_case(expr: ast.Case, binding: _Binding, subplan) -> VecFn:
    """CASE with masked evaluation: each branch only sees the rows that
    reach it, preserving the row engine's lazy branch semantics (e.g.
    ``CASE WHEN x = 0 THEN 0 ELSE 1/x END`` never divides by zero)."""
    operand_fn = (
        compile_vector(expr.operand, binding, subplan) if expr.operand is not None else None
    )
    when_fns = [
        (compile_vector(cond, binding, subplan), compile_vector(result, binding, subplan))
        for cond, result in expr.whens
    ]
    else_fn = compile_vector(expr.else_, binding, subplan) if expr.else_ is not None else None

    def case(chunk: Chunk, ctx) -> List[Any]:
        n = chunk.n
        out: List[Any] = [None] * n
        remaining = list(range(n))
        live = chunk
        subjects = operand_fn(chunk, ctx) if operand_fn is not None else None
        for cond_fn, result_fn in when_fns:
            if not remaining:
                break
            conds = cond_fn(live, ctx)
            taken: List[int] = []  # positions within `remaining`
            if operand_fn is not None:
                for pos, c in enumerate(conds):
                    subject = subjects[remaining[pos]]
                    if compare_values(subject, c) == 0:
                        taken.append(pos)
            else:
                for pos, c in enumerate(conds):
                    if _bool3(c, "CASE WHEN") is True:
                        taken.append(pos)
            if taken:
                taken_chunk = live.gather(taken)
                results = result_fn(taken_chunk, ctx)
                for pos, value in zip(taken, results):
                    out[remaining[pos]] = value
                taken_set = set(taken)
                keep = [pos for pos in range(len(remaining)) if pos not in taken_set]
                remaining = [remaining[pos] for pos in keep]
                live = live.gather(keep)
        if else_fn is not None and remaining:
            results = else_fn(live, ctx)
            for i, value in zip(remaining, results):
                out[i] = value
        return out

    return case


def _compile_in_list(expr: ast.InList, binding: _Binding, subplan) -> VecFn:
    operand = compile_vector(expr.operand, binding, subplan)
    item_fns = [compile_vector(i, binding, subplan) for i in expr.items]
    negated = expr.negated

    def in_list(chunk: Chunk, ctx) -> List[Any]:
        values = operand(chunk, ctx)
        item_cols = [fn(chunk, ctx) for fn in item_fns]
        out: List[Any] = []
        append = out.append
        for i, value in enumerate(values):
            if value is None:
                append(None)
                continue
            saw_null = False
            found = False
            for col in item_cols:
                item = col[i]
                if item is None:
                    saw_null = True
                elif _cmp(value, item) == 0:
                    found = True
                    break
            if found:
                append(not negated)
            elif saw_null:
                append(None)
            else:
                append(negated)
        return out

    return in_list


def _compile_in_subquery(expr: ast.InSubquery, binding: _Binding, subplan) -> VecFn:
    operand = compile_vector(expr.operand, binding, subplan)
    plan = subplan(expr.subquery)
    negated = expr.negated

    def in_subquery(chunk: Chunk, ctx) -> List[Any]:
        if chunk.n == 0:
            return []
        key = ("in", id(plan))
        if key not in ctx.subq:
            sub = plan.execute(ctx)
            if sub.width != 1:
                raise ExecutionError("IN subquery must return one column")
            members = set()
            saw_null = False
            for v in sub.cols[0]:
                if v is None:
                    saw_null = True
                else:
                    members.add(sort_key(v))
            ctx.subq[key] = (members, saw_null)
        members, saw_null = ctx.subq[key]
        out: List[Any] = []
        append = out.append
        for value in operand(chunk, ctx):
            if value is None:
                append(None)
            elif sort_key(value) in members:
                append(not negated)
            elif saw_null:
                append(None)
            else:
                append(negated)
        return out

    return in_subquery


def _compile_like(expr: ast.Like, binding: _Binding, subplan) -> VecFn:
    operand = compile_vector(expr.operand, binding, subplan)
    negated, ci = expr.negated, expr.case_insensitive
    if isinstance(expr.pattern, ast.Literal) and isinstance(expr.pattern.value, str):
        # The common shape — a constant pattern — compiles its regex once
        # at plan time instead of consulting a per-row cache.
        regex = _like_regex(expr.pattern.value, ci)

        def like_const(chunk: Chunk, ctx) -> List[Any]:
            out: List[Any] = []
            append = out.append
            match = regex.match
            for value in operand(chunk, ctx):
                if value is None:
                    append(None)
                    continue
                if not isinstance(value, str):
                    value = str(value)
                result = bool(match(value))
                append(not result if negated else result)
            return out

        return like_const

    pattern_fn = compile_vector(expr.pattern, binding, subplan)

    def like(chunk: Chunk, ctx) -> List[Any]:
        cache: Dict[str, re.Pattern] = {}
        out: List[Any] = []
        append = out.append
        for value, pattern in zip(operand(chunk, ctx), pattern_fn(chunk, ctx)):
            if value is None or pattern is None:
                append(None)
                continue
            if not isinstance(value, str):
                value = str(value)
            regex = cache.get(pattern)
            if regex is None:
                regex = cache[pattern] = _like_regex(pattern, ci)
            result = bool(regex.match(value))
            append(not result if negated else result)
        return out

    return like
