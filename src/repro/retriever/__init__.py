"""retriever — Pneuma-Retriever: hybrid table discovery (HNSW + BM25)."""

from .index import FrozenIndexError, HybridHit, HybridIndex
from .retriever import PneumaRetriever
from .summarizer import (
    NarrationCache,
    narrate_column,
    narrate_table,
    sample_rows,
    table_fingerprint,
    table_payload,
)

__all__ = [
    "PneumaRetriever",
    "HybridIndex",
    "HybridHit",
    "FrozenIndexError",
    "NarrationCache",
    "narrate_table",
    "narrate_column",
    "sample_rows",
    "table_fingerprint",
    "table_payload",
]
