"""retriever — Pneuma-Retriever: hybrid table discovery (HNSW + BM25)."""

from .index import HybridHit, HybridIndex
from .retriever import PneumaRetriever
from .summarizer import narrate_column, narrate_table, sample_rows, table_payload

__all__ = [
    "PneumaRetriever",
    "HybridIndex",
    "HybridHit",
    "narrate_table",
    "narrate_column",
    "sample_rows",
    "table_payload",
]
