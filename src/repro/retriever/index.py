"""Pneuma-Retriever's hybrid index: HNSW vector store + BM25 inverted index.

Scores from the two halves are fused by weighted reciprocal-rank fusion,
which is robust to their incomparable score scales.

The index is built for the serving layer's sharing model: mutation
(:meth:`add` / :meth:`add_batch`) is serialized by an internal lock, and
:meth:`freeze` makes the index immutable-after-build so any number of
sessions can search it concurrently without coordination.

:meth:`freeze` is a real compile step, not just a seal: both halves run
their kernel compilation (impact-sorted BM25 postings with max-score
bounds, compacted HNSW matrix with CSR links) and the fusion layer
interns both halves' ids into one hybrid int space, so RRF accumulates
over ints and maps back to doc_id strings only for the final top-k.

``legacy=True`` builds the index over the pre-kernel halves
(:class:`LegacyBM25Index` / :class:`LegacyHNSWIndex`) with the original
dict-based fusion — the benchmark baseline and the ranking oracle the
array kernel is tested against.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ann.hnsw import HNSWIndex
from ..ann.hnsw_legacy import LegacyHNSWIndex
from ..obs import trace as obs
from ..text.bm25 import BM25Index
from ..text.bm25_legacy import LegacyBM25Index
from ..text.embedding import HashingEmbedder


@dataclass
class HybridHit:
    doc_id: str
    score: float
    bm25_rank: Optional[int] = None
    vector_rank: Optional[int] = None


class FrozenIndexError(RuntimeError):
    """Raised when mutating an index that :meth:`HybridIndex.freeze` sealed."""


class HybridIndex:
    """Dual lexical/dense index over (doc_id, text) pairs."""

    def __init__(
        self,
        dim: int = 192,
        rrf_k: int = 60,
        bm25_weight: float = 1.0,
        vector_weight: float = 1.0,
        seed: int = 13,
        embedder=None,
        fusion_pool: Optional[int] = None,
        legacy: bool = False,
    ):
        if fusion_pool is not None and fusion_pool < 1:
            raise ValueError(f"fusion_pool must be >= 1, got {fusion_pool}")
        self.embedder = embedder if embedder is not None else HashingEmbedder(dim=dim)
        hnsw_cls = LegacyHNSWIndex if legacy else HNSWIndex
        self.bm25 = LegacyBM25Index() if legacy else BM25Index()
        self.vectors = hnsw_cls(
            dim=self.embedder.dim, metric="cosine", m=12, ef_construction=64, seed=seed
        )
        self.rrf_k = rrf_k
        self.bm25_weight = bm25_weight
        self.vector_weight = vector_weight
        self.seed = seed
        #: Fusion candidate depth per half; ``None`` keeps the adaptive
        #: default ``max(k * 3, 10)``.  Deeper pools let lower-ranked
        #: agreement between the halves surface at higher fusion cost.
        self.fusion_pool = fusion_pool
        self.legacy = legacy
        self._texts: Dict[str, str] = {}
        self._write_lock = threading.Lock()
        self._frozen = False
        # Built by freeze() on the kernel path: hybrid int id space.
        self._doc_list: List[str] = []
        self._bm25_map: Optional[np.ndarray] = None  # bm25 slot -> hybrid id
        self._vector_map: Optional[np.ndarray] = None  # hnsw node -> hybrid id

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, doc_id: str, text: str) -> None:
        """Index a document under both halves (re-add replaces both sides)."""
        with self._write_lock:
            self._check_mutable()
            self._add_one(doc_id, text, self.embedder.embed(text))

    def add_batch(self, items: Sequence[Tuple[str, str]]) -> None:
        """Index many ``(doc_id, text)`` pairs; embeddings computed as a batch."""
        items = list(items)
        if not items:
            return
        with self._write_lock:
            self._check_mutable()
            matrix = self.embedder.embed_batch([text for _, text in items])
            for (doc_id, text), vector in zip(items, matrix):
                self._add_one(doc_id, text, vector)

    def _add_one(self, doc_id: str, text: str, vector) -> None:
        self.bm25.add(doc_id, text)
        if doc_id in self.vectors:
            # Re-add with changed content: swap the dense vector in place
            # so both halves rank by the current text.
            self.vectors.update(doc_id, vector)
        else:
            self.vectors.add(doc_id, vector)
        self._texts[doc_id] = text

    def _check_mutable(self) -> None:
        if self._frozen:
            raise FrozenIndexError(
                "this HybridIndex is frozen (shared by the serving layer); "
                "build a new index instead of mutating it"
            )

    def freeze(self) -> "HybridIndex":
        """Compile and seal the index: all further mutation raises
        :class:`FrozenIndexError`.

        On the kernel path this compiles both halves (impact-sorted BM25
        postings, compacted HNSW matrix + CSR links) and interns every
        doc into the hybrid int id space that fusion accumulates over.
        Searches on a frozen index are lock-free — the structure can no
        longer change, so concurrent readers need no coordination.
        """
        with self._write_lock:
            self._frozen = True
            if not self.legacy and self._bm25_map is None:
                self.bm25.compile()
                self.vectors.compile()
                docs = list(self._texts)
                hybrid_of = {doc_id: i for i, doc_id in enumerate(docs)}
                bm25_map = np.full(self.bm25.slot_count, -1, dtype=np.int64)
                for doc_id, slot in self.bm25.slot_items():
                    bm25_map[slot] = hybrid_of[doc_id]
                vector_map = np.full(len(self.vectors), -1, dtype=np.int64)
                for doc_id, node in self.vectors.node_items():
                    vector_map[node] = hybrid_of[doc_id]
                self._doc_list = docs
                self._bm25_map = bm25_map
                self._vector_map = vector_map
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    # Persistence (the storage subsystem's segment codec drives these)
    # ------------------------------------------------------------------
    def export_fusion(self) -> Dict[str, object]:
        """The fusion layer's file-ready view: the hybrid id space, both
        halves' slot→hybrid maps, and every document's indexed text (the
        rebuild source should a half's segment be quarantined).  Requires
        a frozen, compiled (non-legacy) index."""
        if self.legacy or self._bm25_map is None:
            raise RuntimeError("export_fusion requires a frozen, compiled kernel index")
        return {
            "meta": {
                "rrf_k": self.rrf_k,
                "bm25_weight": self.bm25_weight,
                "vector_weight": self.vector_weight,
                "fusion_pool": self.fusion_pool,
                "seed": self.seed,
                "dim": self.embedder.dim,
            },
            "doc_list": list(self._doc_list),
            "texts": [self._texts[doc_id] for doc_id in self._doc_list],
            "bm25_map": self._bm25_map,
            "vector_map": self._vector_map,
        }

    @classmethod
    def hydrate_fusion(
        cls,
        meta: Dict[str, object],
        bm25: BM25Index,
        vectors: HNSWIndex,
        doc_list: List[str],
        texts: List[str],
        bm25_map: np.ndarray,
        vector_map: np.ndarray,
        embedder=None,
    ) -> "HybridIndex":
        """Assemble a frozen hybrid index from restored (or rebuilt)
        halves plus the fusion arrays.  The result serves the compiled
        int-fusion search path exactly as the index it was exported from."""
        pool = meta.get("fusion_pool")
        index = cls(
            dim=int(meta["dim"]),
            rrf_k=int(meta["rrf_k"]),
            bm25_weight=float(meta["bm25_weight"]),
            vector_weight=float(meta["vector_weight"]),
            seed=int(meta.get("seed", 13)),
            embedder=embedder,
            fusion_pool=None if pool is None else int(pool),
        )
        index.bm25 = bm25
        index.vectors = vectors
        index._texts = dict(zip(doc_list, texts))
        index._doc_list = list(doc_list)
        index._bm25_map = np.asarray(bm25_map, dtype=np.int64)
        index._vector_map = np.asarray(vector_map, dtype=np.int64)
        index._frozen = True
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._texts)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._texts

    def text_of(self, doc_id: str) -> str:
        return self._texts[doc_id]

    def kernel_stats(self) -> Dict[str, object]:
        """Which kernel serves this index, and how fusion is tuned."""
        return {
            "kernel": "legacy" if self.legacy else "array",
            "compiled": self._bm25_map is not None,
            "frozen": self._frozen,
            "fusion_pool": self.fusion_pool,
            "docs": len(self._texts),
        }

    def _pool(self, k: int) -> int:
        if self.fusion_pool is not None:
            return max(self.fusion_pool, k)
        return max(k * 3, 10)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: str, k: int = 5, mode: str = "hybrid") -> List[HybridHit]:
        """Top-k fusion search.

        ``mode`` supports the retrieval ablation: 'hybrid' (default),
        'bm25' (lexical only), or 'vector' (dense only).
        """
        return self.search_batch([query], k=k, mode=mode)[0]

    def search_batch(
        self, queries: Sequence[str], k: int = 5, mode: str = "hybrid"
    ) -> List[List[HybridHit]]:
        """Top-k fusion search for each query in one call.

        Exactly equivalent to N :meth:`search` calls, but the two halves
        are driven through their own batch entry points so per-call setup
        (corpus statistics, query embedding) is shared.
        """
        if mode not in ("hybrid", "bm25", "vector"):
            raise ValueError(f"unknown search mode {mode!r}")
        queries = list(queries)
        if not queries:
            return []
        if self._bm25_map is not None:
            return self._search_batch_ids(queries, k, mode)
        return self._search_batch_keys(queries, k, mode)

    def _search_batch_ids(
        self, queries: List[str], k: int, mode: str
    ) -> List[List[HybridHit]]:
        """Compiled path: both halves return rank-ordered int ids, RRF
        accumulates over hybrid ints, and doc_id strings materialize only
        for the final top-k."""
        pool = self._pool(k)
        n = len(queries)
        empty = np.empty(0, dtype=np.int64)
        bm25_lists: Sequence[np.ndarray] = [empty] * n
        vector_lists: Sequence[np.ndarray] = [empty] * n
        if mode in ("hybrid", "bm25"):
            with obs.span("retrieval.bm25", queries=n, pool=pool):
                bm25_lists = self.bm25.search_slots(queries, k=pool)
        if mode in ("hybrid", "vector"):
            with obs.span("retrieval.vector", queries=n, pool=pool):
                vectors = self.embedder.embed_batch(queries)
                vector_lists = self.vectors.search_batch_ids(vectors, k=pool)

        bm25_map, vector_map, doc_list = self._bm25_map, self._vector_map, self._doc_list
        results: List[List[HybridHit]] = []
        with obs.span("retrieval.fusion", queries=n):
            for bm25_ids, vector_ids in zip(bm25_lists, vector_lists):
                fused: Dict[int, float] = {}
                bm25_ranks: Dict[int, int] = {}
                vector_ranks: Dict[int, int] = {}
                for rank, slot in enumerate(bm25_ids.tolist()):
                    hybrid = int(bm25_map[slot])
                    bm25_ranks[hybrid] = rank
                    fused[hybrid] = fused.get(hybrid, 0.0) + self.bm25_weight / (
                        self.rrf_k + rank + 1
                    )
                for rank, node in enumerate(vector_ids.tolist()):
                    hybrid = int(vector_map[node])
                    vector_ranks[hybrid] = rank
                    fused[hybrid] = fused.get(hybrid, 0.0) + self.vector_weight / (
                        self.rrf_k + rank + 1
                    )
                ranked = sorted(fused.items(), key=lambda kv: (-kv[1], doc_list[kv[0]]))
                results.append(
                    [
                        HybridHit(
                            doc_list[hybrid],
                            score,
                            bm25_rank=bm25_ranks.get(hybrid),
                            vector_rank=vector_ranks.get(hybrid),
                        )
                        for hybrid, score in ranked[:k]
                    ]
                )
        return results

    def _search_batch_keys(
        self, queries: List[str], k: int, mode: str
    ) -> List[List[HybridHit]]:
        """Uncompiled/legacy path: the original dict-over-doc_id fusion."""
        pool = self._pool(k)
        batch_bm25: List[Dict[str, int]] = [{} for _ in queries]
        batch_vector: List[Dict[str, int]] = [{} for _ in queries]
        if mode in ("hybrid", "bm25"):
            with obs.span("retrieval.bm25", queries=len(queries), pool=pool):
                for ranks, hits in zip(batch_bm25, self.bm25.search_batch(queries, k=pool)):
                    for rank, hit in enumerate(hits):
                        ranks[hit.doc_id] = rank
        if mode in ("hybrid", "vector"):
            with obs.span("retrieval.vector", queries=len(queries), pool=pool):
                vectors = self.embedder.embed_batch(queries)
                for ranks, hits in zip(batch_vector, self.vectors.search_batch(vectors, k=pool)):
                    for rank, hit in enumerate(hits):
                        ranks[hit.key] = rank

        results: List[List[HybridHit]] = []
        with obs.span("retrieval.fusion", queries=len(queries)):
            for bm25_ranks, vector_ranks in zip(batch_bm25, batch_vector):
                fused: Dict[str, float] = {}
                for doc_id, rank in bm25_ranks.items():
                    fused[doc_id] = (
                        fused.get(doc_id, 0.0) + self.bm25_weight / (self.rrf_k + rank + 1)
                    )
                for doc_id, rank in vector_ranks.items():
                    fused[doc_id] = (
                        fused.get(doc_id, 0.0) + self.vector_weight / (self.rrf_k + rank + 1)
                    )
                ranked = sorted(fused.items(), key=lambda kv: (-kv[1], kv[0]))
                results.append(
                    [
                        HybridHit(
                            doc_id,
                            score,
                            bm25_rank=bm25_ranks.get(doc_id),
                            vector_rank=vector_ranks.get(doc_id),
                        )
                        for doc_id, score in ranked[:k]
                    ]
                )
        return results
