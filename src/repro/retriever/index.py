"""Pneuma-Retriever's hybrid index: HNSW vector store + BM25 inverted index.

Scores from the two halves are fused by weighted reciprocal-rank fusion,
which is robust to their incomparable score scales.

The index is built for the serving layer's sharing model: mutation
(:meth:`add` / :meth:`add_batch`) is serialized by an internal lock, and
:meth:`freeze` makes the index immutable-after-build so any number of
sessions can search it concurrently without coordination.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ann.hnsw import HNSWIndex
from ..text.bm25 import BM25Index
from ..text.embedding import HashingEmbedder


@dataclass
class HybridHit:
    doc_id: str
    score: float
    bm25_rank: Optional[int] = None
    vector_rank: Optional[int] = None


class FrozenIndexError(RuntimeError):
    """Raised when mutating an index that :meth:`HybridIndex.freeze` sealed."""


class HybridIndex:
    """Dual lexical/dense index over (doc_id, text) pairs."""

    def __init__(
        self,
        dim: int = 192,
        rrf_k: int = 60,
        bm25_weight: float = 1.0,
        vector_weight: float = 1.0,
        seed: int = 13,
        embedder=None,
    ):
        self.embedder = embedder if embedder is not None else HashingEmbedder(dim=dim)
        self.bm25 = BM25Index()
        self.vectors = HNSWIndex(
            dim=self.embedder.dim, metric="cosine", m=12, ef_construction=64, seed=seed
        )
        self.rrf_k = rrf_k
        self.bm25_weight = bm25_weight
        self.vector_weight = vector_weight
        self._texts: Dict[str, str] = {}
        self._write_lock = threading.Lock()
        self._frozen = False

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, doc_id: str, text: str) -> None:
        """Index a document under both halves (re-add replaces both sides)."""
        with self._write_lock:
            self._check_mutable()
            self._add_one(doc_id, text, self.embedder.embed(text))

    def add_batch(self, items: Sequence[Tuple[str, str]]) -> None:
        """Index many ``(doc_id, text)`` pairs; embeddings computed as a batch."""
        items = list(items)
        if not items:
            return
        with self._write_lock:
            self._check_mutable()
            matrix = self.embedder.embed_batch([text for _, text in items])
            for (doc_id, text), vector in zip(items, matrix):
                self._add_one(doc_id, text, vector)

    def _add_one(self, doc_id: str, text: str, vector) -> None:
        self.bm25.add(doc_id, text)
        if doc_id in self.vectors:
            # Re-add with changed content: swap the dense vector in place
            # so both halves rank by the current text.
            self.vectors.update(doc_id, vector)
        else:
            self.vectors.add(doc_id, vector)
        self._texts[doc_id] = text

    def _check_mutable(self) -> None:
        if self._frozen:
            raise FrozenIndexError(
                "this HybridIndex is frozen (shared by the serving layer); "
                "build a new index instead of mutating it"
            )

    def freeze(self) -> "HybridIndex":
        """Seal the index: all further mutation raises :class:`FrozenIndexError`.

        Searches on a frozen index are lock-free — the structure can no
        longer change, so concurrent readers need no coordination.
        """
        with self._write_lock:
            self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._texts)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._texts

    def text_of(self, doc_id: str) -> str:
        return self._texts[doc_id]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: str, k: int = 5, mode: str = "hybrid") -> List[HybridHit]:
        """Top-k fusion search.

        ``mode`` supports the retrieval ablation: 'hybrid' (default),
        'bm25' (lexical only), or 'vector' (dense only).
        """
        return self.search_batch([query], k=k, mode=mode)[0]

    def search_batch(
        self, queries: Sequence[str], k: int = 5, mode: str = "hybrid"
    ) -> List[List[HybridHit]]:
        """Top-k fusion search for each query in one call.

        Exactly equivalent to N :meth:`search` calls, but the two halves
        are driven through their own batch entry points so per-call setup
        (corpus statistics, query embedding) is shared.
        """
        if mode not in ("hybrid", "bm25", "vector"):
            raise ValueError(f"unknown search mode {mode!r}")
        queries = list(queries)
        if not queries:
            return []
        pool = max(k * 3, 10)
        batch_bm25: List[Dict[str, int]] = [{} for _ in queries]
        batch_vector: List[Dict[str, int]] = [{} for _ in queries]
        if mode in ("hybrid", "bm25"):
            for ranks, hits in zip(batch_bm25, self.bm25.search_batch(queries, k=pool)):
                for rank, hit in enumerate(hits):
                    ranks[hit.doc_id] = rank
        if mode in ("hybrid", "vector"):
            vectors = self.embedder.embed_batch(queries)
            for ranks, hits in zip(batch_vector, self.vectors.search_batch(vectors, k=pool)):
                for rank, hit in enumerate(hits):
                    ranks[hit.key] = rank

        results: List[List[HybridHit]] = []
        for bm25_ranks, vector_ranks in zip(batch_bm25, batch_vector):
            fused: Dict[str, float] = {}
            for doc_id, rank in bm25_ranks.items():
                fused[doc_id] = fused.get(doc_id, 0.0) + self.bm25_weight / (self.rrf_k + rank + 1)
            for doc_id, rank in vector_ranks.items():
                fused[doc_id] = (
                    fused.get(doc_id, 0.0) + self.vector_weight / (self.rrf_k + rank + 1)
                )
            ranked = sorted(fused.items(), key=lambda kv: (-kv[1], kv[0]))
            results.append(
                [
                    HybridHit(
                        doc_id,
                        score,
                        bm25_rank=bm25_ranks.get(doc_id),
                        vector_rank=vector_ranks.get(doc_id),
                    )
                    for doc_id, score in ranked[:k]
                ]
            )
        return results
