"""Pneuma-Retriever's hybrid index: HNSW vector store + BM25 inverted index.

Scores from the two halves are fused by weighted reciprocal-rank fusion,
which is robust to their incomparable score scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ann.hnsw import HNSWIndex
from ..text.bm25 import BM25Index
from ..text.embedding import HashingEmbedder


@dataclass
class HybridHit:
    doc_id: str
    score: float
    bm25_rank: Optional[int] = None
    vector_rank: Optional[int] = None


class HybridIndex:
    """Dual lexical/dense index over (doc_id, text) pairs."""

    def __init__(
        self,
        dim: int = 192,
        rrf_k: int = 60,
        bm25_weight: float = 1.0,
        vector_weight: float = 1.0,
        seed: int = 13,
    ):
        self.embedder = HashingEmbedder(dim=dim)
        self.bm25 = BM25Index()
        self.vectors = HNSWIndex(dim=dim, metric="cosine", m=12, ef_construction=64, seed=seed)
        self.rrf_k = rrf_k
        self.bm25_weight = bm25_weight
        self.vector_weight = vector_weight
        self._texts: Dict[str, str] = {}

    def add(self, doc_id: str, text: str) -> None:
        """Index a document under both halves (re-add replaces lexical side)."""
        self.bm25.add(doc_id, text)
        if doc_id not in self.vectors:
            self.vectors.add(doc_id, self.embedder.embed(text))
        self._texts[doc_id] = text

    def __len__(self) -> int:
        return len(self._texts)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._texts

    def text_of(self, doc_id: str) -> str:
        return self._texts[doc_id]

    def search(self, query: str, k: int = 5, mode: str = "hybrid") -> List[HybridHit]:
        """Top-k fusion search.

        ``mode`` supports the retrieval ablation: 'hybrid' (default),
        'bm25' (lexical only), or 'vector' (dense only).
        """
        if mode not in ("hybrid", "bm25", "vector"):
            raise ValueError(f"unknown search mode {mode!r}")
        pool = max(k * 3, 10)
        bm25_ranks: Dict[str, int] = {}
        vector_ranks: Dict[str, int] = {}
        if mode in ("hybrid", "bm25"):
            for rank, hit in enumerate(self.bm25.search(query, k=pool)):
                bm25_ranks[hit.doc_id] = rank
        if mode in ("hybrid", "vector"):
            for rank, hit in enumerate(self.vectors.search(self.embedder.embed(query), k=pool)):
                vector_ranks[hit.key] = rank

        fused: Dict[str, float] = {}
        for doc_id, rank in bm25_ranks.items():
            fused[doc_id] = fused.get(doc_id, 0.0) + self.bm25_weight / (self.rrf_k + rank + 1)
        for doc_id, rank in vector_ranks.items():
            fused[doc_id] = fused.get(doc_id, 0.0) + self.vector_weight / (self.rrf_k + rank + 1)

        ranked = sorted(fused.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            HybridHit(
                doc_id,
                score,
                bm25_rank=bm25_ranks.get(doc_id),
                vector_rank=vector_ranks.get(doc_id),
            )
            for doc_id, score in ranked[:k]
        ]
