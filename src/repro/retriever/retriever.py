"""Pneuma-Retriever: end-to-end table discovery over a Database.

Narrates every table (schema + samples), indexes the narrations in the
hybrid index, and answers natural-language queries with table Documents.
This is both a component of the IR System and the standalone
"Pneuma-Retriever" baseline of Figures 4 and 5.

Indexing is incremental and fingerprint-aware: narrations are produced
through a :class:`NarrationCache`, and :meth:`reindex` skips any table
whose content fingerprint is unchanged — re-indexing an unchanged catalog
costs one hash pass instead of a full narrate/embed/insert pipeline.  A
frozen retriever (see :meth:`freeze`) is safe to share across concurrent
sessions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..documents.document import Document
from ..llm.interface import TransientDependencyError
from ..obs import trace as obs
from ..relational.catalog import Database
from .index import HybridIndex
from .summarizer import NarrationCache, table_fingerprint, table_payload


class PneumaRetriever:
    """Hybrid (HNSW + BM25) table discovery, as in Balaka et al. [1].

    When a ``vector_breaker`` (a serving-layer circuit breaker guarding
    the ANN/embedding half) is configured, hybrid search degrades instead
    of failing: a transient dense-half failure records on the breaker and
    the query is re-served BM25-only with every document flagged
    ``degraded=True``; while the breaker is open the dense half is skipped
    outright, so a dead embedding service costs nothing per query.
    """

    def __init__(
        self,
        database: Database,
        dim: int = 192,
        sample_rows: int = 3,
        narration_cache: Optional[NarrationCache] = None,
        embedder=None,
        fusion_pool: Optional[int] = None,
        vector_breaker=None,
        on_degraded: Optional[Callable[[], None]] = None,
        index=None,
        preset_narrations: Optional[Dict[str, str]] = None,
        preset_fingerprints: Optional[Dict[str, Tuple[str, int]]] = None,
    ):
        self.database = database
        self.sample_rows = sample_rows
        self.narrations = narration_cache if narration_cache is not None else NarrationCache()
        # A warm start (storage layer) injects an index hydrated from a
        # snapshot, plus the narrations/fingerprints of the tables that
        # snapshot still covers — the construction-time reindex below then
        # narrates only tables that changed while the service was down.
        self.index = (
            index
            if index is not None
            else HybridIndex(dim=dim, embedder=embedder, fusion_pool=fusion_pool)
        )
        self.vector_breaker = vector_breaker
        self._on_degraded = on_degraded
        self.degraded_serves = 0
        self._narrations: Dict[str, str] = dict(preset_narrations or {})
        self._fingerprints: Dict[str, Tuple[str, int]] = dict(preset_fingerprints or {})
        self.build_report = self.reindex()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def reindex(self) -> Dict[str, int]:
        """Bring the index up to date with the database, skipping unchanged
        tables by content fingerprint.  Returns ``{"indexed": n, "skipped": m}``.
        """
        pending: List[Tuple[str, str]] = []
        staged_narrations: Dict[str, str] = {}
        staged_fingerprints: Dict[str, Tuple[str, int]] = {}
        skipped = 0
        for table in self.database.tables():
            fingerprint = table_fingerprint(table)
            if self._fingerprints.get(table.name) == fingerprint:
                skipped += 1
                continue
            narration = self.narrations.narrate(table, key=fingerprint)
            staged_narrations[table.name] = narration
            staged_fingerprints[table.name] = fingerprint
            pending.append((table.name, narration))
        if pending:
            # May raise FrozenIndexError; commit our own state only after
            # the index accepted the batch, so a failed reindex leaves the
            # retriever exactly as it was.
            self.index.add_batch(pending)
        self._narrations.update(staged_narrations)
        self._fingerprints.update(staged_fingerprints)
        return {"indexed": len(pending), "skipped": skipped}

    def refresh(self) -> None:
        """Re-index tables added to the database since construction."""
        self.reindex()

    def freeze(self) -> "PneumaRetriever":
        """Seal the underlying index for lock-free concurrent searching."""
        self.index.freeze()
        return self

    @property
    def frozen(self) -> bool:
        return self.index.frozen

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the narration cache (embedder adds its own)."""
        return self.narrations.stats()

    def narration(self, table_name: str) -> str:
        return self._narrations[table_name]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: str, k: int = 5, mode: str = "hybrid") -> List[Document]:
        """Top-k tables as Documents (payload = schema + sample rows)."""
        return self.search_batch([query], k=k, mode=mode)[0]

    def search_batch(
        self, queries: Sequence[str], k: int = 5, mode: str = "hybrid"
    ) -> List[List[Document]]:
        """Top-k tables for each query — N searches, one index pass."""
        batches, degraded = self._search_index(list(queries), k, mode)
        results: List[List[Document]] = []
        for hits in batches:
            documents = []
            for hit in hits:
                table = self.database.resolve_table(hit.doc_id)
                documents.append(
                    Document(
                        doc_id=f"table:{table.name}",
                        kind="table",
                        title=table.name,
                        text=self._narrations[table.name],
                        payload=table_payload(table, self.sample_rows),
                        score=hit.score,
                        source="pneuma-retriever",
                        degraded=degraded,
                    )
                )
            results.append(documents)
        return results

    def _search_index(self, queries: List[str], k: int, mode: str) -> Tuple[list, bool]:
        """Run the index search, degrading hybrid to BM25-only when the
        dense half is failing.  Returns ``(per-query hits, degraded?)``."""
        breaker = self.vector_breaker
        if breaker is None or mode != "hybrid":
            return self.index.search_batch(queries, k=k, mode=mode), False
        if breaker.allow():
            try:
                batches = self.index.search_batch(queries, k=k, mode="hybrid")
            except TransientDependencyError:
                breaker.record_failure()
            else:
                breaker.record_success()
                return batches, False
        # Dense half down (circuit open, or this very call failed):
        # lexical-only answers beat failed turns.
        obs.event("degraded_retrieval", breaker_state=breaker.state)
        batches = self.index.search_batch(queries, k=k, mode="bm25")
        self.degraded_serves += 1
        if self._on_degraded is not None:
            self._on_degraded()
        return batches, True

    def column_values(self, table_name: str, column: str, limit: int = 200) -> List:
        """Distinct values of a column (the grounding hook Conductor uses).

        The paper: Conductor "grounds its decisions on data retrieved from
        IR System, rather than relying solely on assumptions."
        """
        table = self.database.resolve_table(table_name)
        values = []
        seen = set()
        for value in table.column_values(column):
            if value is None:
                continue
            key = str(value)
            if key in seen:
                continue
            seen.add(key)
            values.append(value)
            if len(values) >= limit:
                break
        return values
