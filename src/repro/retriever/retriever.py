"""Pneuma-Retriever: end-to-end table discovery over a Database.

Narrates every table (schema + samples), indexes the narrations in the
hybrid index, and answers natural-language queries with table Documents.
This is both a component of the IR System and the standalone
"Pneuma-Retriever" baseline of Figures 4 and 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..documents.document import Document
from ..relational.catalog import Database
from ..relational.table import Table
from .index import HybridIndex
from .summarizer import narrate_table, table_payload


class PneumaRetriever:
    """Hybrid (HNSW + BM25) table discovery, as in Balaka et al. [1]."""

    def __init__(self, database: Database, dim: int = 192, sample_rows: int = 3):
        self.database = database
        self.sample_rows = sample_rows
        self.index = HybridIndex(dim=dim)
        self._narrations: Dict[str, str] = {}
        for table in database.tables():
            self._index_table(table)

    def _index_table(self, table: Table) -> None:
        narration = narrate_table(table)
        self._narrations[table.name] = narration
        self.index.add(table.name, narration)

    def refresh(self) -> None:
        """Re-index tables added to the database since construction."""
        for table in self.database.tables():
            if table.name not in self._narrations:
                self._index_table(table)

    def narration(self, table_name: str) -> str:
        return self._narrations[table_name]

    def search(self, query: str, k: int = 5, mode: str = "hybrid") -> List[Document]:
        """Top-k tables as Documents (payload = schema + sample rows)."""
        documents = []
        for hit in self.index.search(query, k=k, mode=mode):
            table = self.database.resolve_table(hit.doc_id)
            documents.append(
                Document(
                    doc_id=f"table:{table.name}",
                    kind="table",
                    title=table.name,
                    text=self._narrations[table.name],
                    payload=table_payload(table, self.sample_rows),
                    score=hit.score,
                    source="pneuma-retriever",
                )
            )
        return documents

    def column_values(self, table_name: str, column: str, limit: int = 200) -> List:
        """Distinct values of a column (the grounding hook Conductor uses).

        The paper: Conductor "grounds its decisions on data retrieved from
        IR System, rather than relying solely on assumptions."
        """
        table = self.database.resolve_table(table_name)
        values = []
        seen = set()
        for value in table.column_values(column):
            if value is None:
                continue
            key = str(value)
            if key in seen:
                continue
            seen.add(key)
            values.append(value)
            if len(values) >= limit:
                break
        return values
