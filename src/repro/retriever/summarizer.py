"""Table summarization for indexing (Pneuma's "narrations").

The cited Pneuma-Retriever system [1] represents each table by LLM-produced
textual summaries of its schema plus sampled rows.  Offline we narrate
deterministically: column names are expanded (snake/camel case split), types
and example values are spelled out, and a few sample rows are attached.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Tuple

from ..relational.table import Table
from ..relational.types import format_value
from ..text.tokenize import tokenize


def table_fingerprint(table: Table) -> Tuple[str, int]:
    """A cheap, process-stable identity for a table's *content*.

    Narrating a table scans every column for example values; re-doing that
    for an unchanged catalog is the dominant cost of re-indexing.  The
    fingerprint hashes the name, schema, and all row tuples (one C-speed
    ``hash`` over nested tuples), so equality of fingerprints means the
    narration is reusable.  Collisions only cost a stale cache entry, and
    only within the current process — fingerprints are never persisted.
    """
    schema_sig = tuple((c.name, str(c.dtype)) for c in table.schema)
    return (table.name, hash((schema_sig, tuple(table.rows))))


class NarrationCache:
    """Fingerprint-keyed cache of table narrations with hit/miss counters.

    Shared by the serving layer across every (re)index pass: a table whose
    fingerprint is unchanged gets its narration back without touching the
    rows.  Thread-safe; unbounded by design (one entry per live table).
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int], str] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def narrate(self, table: Table, key: Tuple[str, int] = None) -> str:
        """Narration of ``table``, cached by fingerprint.

        Callers that already fingerprinted the table (the reindex loop)
        pass ``key`` to avoid hashing every row a second time.
        """
        if key is None:
            key = table_fingerprint(table)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        narration = narrate_table(table)
        with self._lock:
            # A changed table supersedes its older entries, keeping the
            # cache at one entry per live table name.
            for stale in [k for k in self._entries if k[0] == table.name]:
                del self._entries[stale]
            self._entries[key] = narration
        return narration

    def evict(self, table_name: str) -> None:
        """Drop all entries for a table name (after a catalog drop)."""
        with self._lock:
            for key in [k for k in self._entries if k[0] == table_name]:
                del self._entries[key]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._entries)}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


def narrate_column(table: Table, name: str, max_examples: int = 4) -> str:
    """One sentence describing a column: name words, type, example values."""
    column = table.schema.column(name)
    words = " ".join(tokenize(name, stop=False, do_stem=False))
    examples: List[str] = []
    seen = set()
    for value in table.column_values(name):
        if value is None:
            continue
        rendered = format_value(value)
        if rendered in seen:
            continue
        seen.add(rendered)
        examples.append(rendered)
        if len(examples) >= max_examples:
            break
    example_text = ", ".join(examples) if examples else "no non-null examples"
    return f"column {name} ({words}) of type {column.dtype} with values such as {example_text}"


def narrate_table(table: Table) -> str:
    """The indexable narration of a whole table."""
    name_words = " ".join(tokenize(table.name, stop=False, do_stem=False))
    lines = [
        f"table {table.name} ({name_words}) with {table.num_rows} rows "
        f"and {table.num_columns} columns."
    ]
    for column in table.schema:
        lines.append(narrate_column(table, column.name))
    return " ".join(lines)


def sample_rows(table: Table, n: int = 3) -> List[Dict[str, Any]]:
    """The first ``n`` rows as JSON-safe records (what prompts may show)."""
    records = []
    for row in table.rows[:n]:
        record = {}
        for column, value in zip(table.schema, row):
            record[column.name] = format_value(value) if value is not None else None
        records.append(record)
    return records


def table_payload(table: Table, sample_n: int = 3) -> Dict[str, Any]:
    """The structured payload carried by a table Document."""
    return {
        "name": table.name,
        "columns": [{"name": c.name, "dtype": str(c.dtype)} for c in table.schema],
        "num_rows": table.num_rows,
        "samples": sample_rows(table, sample_n),
    }
