"""Table summarization for indexing (Pneuma's "narrations").

The cited Pneuma-Retriever system [1] represents each table by LLM-produced
textual summaries of its schema plus sampled rows.  Offline we narrate
deterministically: column names are expanded (snake/camel case split), types
and example values are spelled out, and a few sample rows are attached.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..relational.table import Table
from ..relational.types import format_value
from ..text.tokenize import tokenize


def narrate_column(table: Table, name: str, max_examples: int = 4) -> str:
    """One sentence describing a column: name words, type, example values."""
    column = table.schema.column(name)
    words = " ".join(tokenize(name, stop=False, do_stem=False))
    examples: List[str] = []
    seen = set()
    for value in table.column_values(name):
        if value is None:
            continue
        rendered = format_value(value)
        if rendered in seen:
            continue
        seen.add(rendered)
        examples.append(rendered)
        if len(examples) >= max_examples:
            break
    example_text = ", ".join(examples) if examples else "no non-null examples"
    return f"column {name} ({words}) of type {column.dtype} with values such as {example_text}"


def narrate_table(table: Table) -> str:
    """The indexable narration of a whole table."""
    name_words = " ".join(tokenize(table.name, stop=False, do_stem=False))
    lines = [
        f"table {table.name} ({name_words}) with {table.num_rows} rows "
        f"and {table.num_columns} columns."
    ]
    for column in table.schema:
        lines.append(narrate_column(table, column.name))
    return " ".join(lines)


def sample_rows(table: Table, n: int = 3) -> List[Dict[str, Any]]:
    """The first ``n`` rows as JSON-safe records (what prompts may show)."""
    records = []
    for row in table.rows[:n]:
        record = {}
        for column, value in zip(table.schema, row):
            record[column.name] = format_value(value) if value is not None else None
        records.append(record)
    return records


def table_payload(table: Table, sample_n: int = 3) -> Dict[str, Any]:
    """The structured payload carried by a table Document."""
    return {
        "name": table.name,
        "columns": [{"name": c.name, "dtype": str(c.dtype)} for c in table.schema],
        "num_rows": table.num_rows,
        "samples": sample_rows(table, sample_n),
    }
