"""Coverage-driven investigative scenarios (SEARCH_ENGINEER's KU model).

The paper's convergence claim is only as strong as the needs it is tested
on.  This package plants entity-relationship investigations — catalogs
with known entities, planted relationship chains, and distractors — and
pairs each with a KU-matrix-classified information need whose ground
truth is the planted chain.  A pattern-coverage harness enumerates the
scenario grid (entity class x relationship type x hop depth x KU cell),
runs a Seeker session against every cell through :class:`PneumaService`,
and asserts per-cell convergence: the right tables retrieved, the reified
schema aligned to the planted chain, and the materialized rows matching
the planted join oracle.
"""

from .generator import ChainEdge, DriftPlan, PlantedScenario, build_scenario
from .grid import ATTRIBUTE_WORDS, ENTITY_CLASSES, RELATION_TYPES, ScenarioCell, enumerate_grid
from .harness import CellResult, CoverageReport, run_cell, run_grid
from .report import render_grid, report_to_json
from .stress import append_rows, apply_drift, run_append_cell

__all__ = [
    "ATTRIBUTE_WORDS",
    "ChainEdge",
    "CellResult",
    "CoverageReport",
    "DriftPlan",
    "ENTITY_CLASSES",
    "PlantedScenario",
    "RELATION_TYPES",
    "ScenarioCell",
    "append_rows",
    "apply_drift",
    "build_scenario",
    "enumerate_grid",
    "render_grid",
    "report_to_json",
    "run_append_cell",
    "run_cell",
    "run_grid",
]
