"""Seeded generator for planted entity-relationship investigation scenarios.

Each scenario is a small data lake built around one *planted chain*:
``chain[0]`` (the root the investigator starts from) is referenced by
``chain[1]`` through a typed foreign key, which is referenced by
``chain[2]``, and so on for the cell's hop depth.  Every table carries a
primary key over its own disjoint id domain, a human-readable label
column, and one distinctive numeric attribute; foreign keys are named
``{parent_singular}_{relation}_ref`` so a narration of the child table
*mentions* its parent — the signal an investigator (and the Conductor's
pivot retrieval) walks.

Around the chain sit distractors: unrelated tables, and a pseudo-bridge
"archive" that mimics the first bridge's name and foreign-key column but
draws its values from a disjoint domain — textually plausible, relationally
dead, so sketch-based discovery correctly refuses it and the planted chain
stays the unique ground truth.

Everything is drawn from one seeded generator derived from
``(seed, cell, stress)``; the same inputs rebuild byte-identical scenarios.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..datasets.generator import make_rng, normal, pick, with_nulls
from .grid import ATTRIBUTE_WORDS, ENTITY_CLASSES, RELATION_TYPES, ScenarioCell

_CLASS_ORDER = ["subject", "location", "narrative"]
_FK_NULL_FRACTION = 0.05


def derive_seed(seed: int, *tags: object) -> int:
    """A stable 63-bit seed for a tagged substream (cells never share draws)."""
    digest = hashlib.blake2b(
        ":".join([str(seed), *[str(t) for t in tags]]).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class ChainEdge:
    """One planted hop: ``child.fk`` references ``parent.pk`` (containment 1)."""

    child: str
    fk: str
    parent: str
    pk: str


@dataclass
class DriftPlan:
    """A mid-session schema drift: rename a request column between turns."""

    table: str
    old_column: str
    new_column: str
    after_turn: int = 1
    applied: bool = False


@dataclass
class PlantedScenario:
    """One generated cell: the lake, the planted truth, and the need."""

    cell: ScenarioCell
    seed: int
    lake: Any  # relational.catalog.Database
    chain: List[str]  # chain[0] = root ... chain[-1] = far endpoint
    nouns: Dict[str, str]  # table -> singular column prefix
    edges: List[ChainEdge]  # edges[i]: chain[i+1] references chain[i]
    relations: List[str]  # relation word per edge; [0] == cell.relation_type
    attrs: Dict[str, str]  # table -> numeric attribute column
    labels: Dict[str, str]  # table -> label column
    distractors: List[str] = field(default_factory=list)
    stress: str = "none"  # 'none' | 'drift' | 'append' | 'noisy'
    drift: Optional[DriftPlan] = None
    broken: bool = False  # break_chain dropped the first bridge

    @property
    def root(self) -> str:
        return self.chain[0]

    @property
    def deep(self) -> str:
        return self.chain[-1]

    def request_columns(self) -> List[Tuple[str, str]]:
        """The two endpoint columns the need asks for, in user order.

        Reads the live ``attrs``/``labels`` maps, so a drift rename applied
        mid-session changes what the persona asks for next — exactly the
        staleness the session must survive.
        """
        named = self.labels if self.cell.intent == "discover" else self.attrs
        return [(self.root, named[self.root]), (self.deep, named[self.deep])]

    def expected_edges(self) -> set:
        """The planted chain as undirected column pairs (alignment oracle)."""
        return {frozenset([(e.child, e.fk), (e.parent, e.pk)]) for e in self.edges}

    def oracle_rows(self) -> List[Tuple[Any, Any]]:
        """The planted join's answer: one ``(root_value, deep_value)`` pair
        per far-endpoint row whose foreign-key path resolves (inner-join
        semantics: a null anywhere on the path drops the row).

        Computed against the *current* lake, so append-stress rows extend
        the expectation and drift renames follow ``request_columns``.
        """
        (root_table, root_col), (deep_table, deep_col) = self.request_columns()
        root = self.lake.resolve_table(root_table)
        root_by_id = dict(
            zip(root.column_values(f"{self.nouns[root_table]}_id"), root.column_values(root_col))
        )
        deep = self.lake.resolve_table(deep_table)
        deep_values = deep.column_values(deep_col)
        pointers = deep.column_values(self.edges[-1].fk)
        # Intermediate tables: id -> parent pointer, per edge below the top.
        hop_maps = []
        for edge in reversed(self.edges[:-1]):
            child = self.lake.resolve_table(edge.child)
            hop_maps.append(
                dict(
                    zip(
                        child.column_values(f"{self.nouns[edge.child]}_id"),
                        child.column_values(edge.fk),
                    )
                )
            )
        rows: List[Tuple[Any, Any]] = []
        for value, pointer in zip(deep_values, pointers):
            for hop in hop_maps:
                if pointer is None:
                    break
                pointer = hop.get(pointer)
            if pointer is None or pointer not in root_by_id:
                continue
            rows.append((root_by_id[pointer], value))
        return rows


def _chain_nouns(cell: ScenarioCell, rng) -> List[Tuple[str, str]]:
    """One (plural, singular) per chain node, classes cycling from the root's."""
    start = _CLASS_ORDER.index(cell.entity_class)
    used: set = set()
    nouns: List[Tuple[str, str]] = []
    for node in range(cell.hops + 1):
        pool = [
            p
            for p in ENTITY_CLASSES[_CLASS_ORDER[(start + node) % len(_CLASS_ORDER)]]
            if p[0] not in used
        ]
        choice = pool[int(rng.integers(0, len(pool)))]
        used.add(choice[0])
        nouns.append(choice)
    return nouns


def _spare_nouns(taken: set, rng, count: int) -> List[Tuple[str, str]]:
    pool = [p for cls in _CLASS_ORDER for p in ENTITY_CLASSES[cls] if p[0] not in taken]
    spares: List[Tuple[str, str]] = []
    for _ in range(count):
        choice = pool.pop(int(rng.integers(0, len(pool))))
        spares.append(choice)
    return spares


def build_scenario(
    cell: ScenarioCell,
    seed: int = 7,
    rows: int = 48,
    stress: str = "none",
    break_chain: bool = False,
) -> PlantedScenario:
    """Generate one cell's scenario: lake + planted chain + need.

    ``stress`` selects a generator mode: ``'noisy'`` adds near-duplicate
    narration twins of both endpoints at build time; ``'drift'`` attaches a
    :class:`DriftPlan` (applied mid-session by the harness); ``'append'``
    marks the scenario for the append-restart runner.  ``break_chain``
    (hops >= 2) drops the first bridge table after building, leaving the
    pseudo-bridge distractor as the only — relationally dead — path: the
    alignment compiler must refuse, and the harness must report the cell
    as failed, not converge through the distractor.
    """
    from ..relational.catalog import Database
    from ..relational.table import Table

    if break_chain and cell.hops < 2:
        raise ValueError("break_chain needs a bridge to drop (hops >= 2)")
    rng = make_rng(derive_seed(seed, cell.cell_id, stress, break_chain))
    chain_nouns = _chain_nouns(cell, rng)
    chain = [plural for plural, _ in chain_nouns]
    nouns = dict(chain_nouns)

    relations = [cell.relation_type]
    relation_pool = [r for r in RELATION_TYPES if r != cell.relation_type]
    for _ in range(cell.hops - 1):
        relations.append(relation_pool.pop(int(rng.integers(0, len(relation_pool)))))

    attr_pool = list(ATTRIBUTE_WORDS)
    attrs: Dict[str, str] = {}
    labels: Dict[str, str] = {}
    for plural, singular in chain_nouns:
        attrs[plural] = f"{singular}_{attr_pool.pop(int(rng.integers(0, len(attr_pool))))}"
        labels[plural] = f"{singular}_label"

    lake = Database(f"scenario_{cell.cell_id}_{stress}_{seed}")
    edges: List[ChainEdge] = []
    ids: Dict[str, List[int]] = {}
    for i, (plural, singular) in enumerate(chain_nouns):
        base = (i + 1) * 1_000_000
        n = rows + int(rng.integers(0, 9))
        table_ids = [base + j for j in range(n)]
        ids[plural] = table_ids
        columns: Dict[str, List[Any]] = {
            f"{singular}_id": list(table_ids),
            labels[plural]: [f"{singular}-{j:04d}" for j in range(n)],
            attrs[plural]: normal(rng, 40.0 + 10.0 * i, 9.0, n, lo=1.0),
        }
        if i > 0:
            parent_plural, parent_singular = chain_nouns[i - 1]
            fk = f"{parent_singular}_{relations[i - 1]}_ref"
            columns[fk] = with_nulls(rng, pick(rng, ids[parent_plural], n), _FK_NULL_FRACTION)
            edges.append(ChainEdge(plural, fk, parent_plural, f"{parent_singular}_id"))
        lake.register(Table.from_columns(plural, columns))

    distractors: List[str] = []

    # Pseudo-bridge: mimics the first child's name and foreign-key column,
    # but its values live in a disjoint domain — no containment, no edge.
    bridge_plural, bridge_singular = chain_nouns[1]
    root_singular = chain_nouns[0][1]
    archive = f"{bridge_plural}_archive"
    n = rows + int(rng.integers(0, 9))
    archive_base = 8_000_000
    lake.register(
        Table.from_columns(
            archive,
            {
                f"{bridge_singular}_archive_id": [archive_base + j for j in range(n)],
                f"{root_singular}_{relations[0]}_ref": with_nulls(
                    rng, [archive_base + 500_000 + j for j in range(n)], _FK_NULL_FRACTION
                ),
                f"{bridge_singular}_remark": [
                    f"{bridge_singular}-remark-{int(v):03d}"
                    for v in rng.integers(0, 40, n)
                ],
            },
        )
    )
    distractors.append(archive)

    # Plain distractors: self-contained tables with disjoint everything.
    for d, (plural, singular) in enumerate(_spare_nouns(set(chain) | {archive}, rng, 2)):
        base = (11 + d) * 1_000_000
        n = rows + int(rng.integers(0, 9))
        attr = ATTRIBUTE_WORDS[int(rng.integers(0, len(ATTRIBUTE_WORDS)))]
        lake.register(
            Table.from_columns(
                plural,
                {
                    f"{singular}_id": [base + j for j in range(n)],
                    f"{singular}_label": [f"{singular}-{j:04d}" for j in range(n)],
                    f"{singular}_{attr}": normal(rng, 500.0 + 40.0 * d, 25.0, n),
                },
            )
        )
        distractors.append(plural)

    scenario = PlantedScenario(
        cell=cell,
        seed=seed,
        lake=lake,
        chain=chain,
        nouns=nouns,
        edges=edges,
        relations=relations,
        attrs=attrs,
        labels=labels,
        distractors=distractors,
        stress=stress,
    )

    if stress == "noisy":
        _add_noisy_twins(scenario, rng, rows)
    if stress == "drift":
        (deep_table, deep_col) = scenario.request_columns()[1]
        singular = nouns[deep_table]
        scenario.drift = DriftPlan(
            table=deep_table,
            old_column=deep_col,
            new_column=f"{singular}_revised_{deep_col[len(singular) + 1:]}",
        )
    if break_chain:
        lake.drop_table(chain[1])
        scenario.broken = True
    return scenario


def _add_noisy_twins(scenario: PlantedScenario, rng, rows: int) -> None:
    """Near-duplicate narration twins of both endpoints.

    A twin shares its endpoint's singular prefix (so its narration is a
    near-duplicate in exactly the tokens the persona uses) but none of its
    request columns — it competes for retrieval slots without offering the
    alignment compiler a false match.
    """
    from ..relational.table import Table

    chain_attr_words = {col.split("_", 1)[1] for col in scenario.attrs.values()}
    spare_attrs = [w for w in ATTRIBUTE_WORDS if w not in chain_attr_words]
    for t, endpoint in enumerate([scenario.root, scenario.deep]):
        singular = scenario.nouns[endpoint]
        base = (14 + t) * 1_000_000
        n = rows + int(rng.integers(0, 9))
        attr = spare_attrs.pop(int(rng.integers(0, len(spare_attrs))))
        twin = f"{endpoint}_registry"
        scenario.lake.register(
            Table.from_columns(
                twin,
                {
                    f"{singular}_registry_id": [base + j for j in range(n)],
                    f"{singular}_memo": [
                        f"{singular}-memo-{int(v):03d}" for v in rng.integers(0, 40, n)
                    ],
                    f"{singular}_{attr}": normal(rng, 200.0 + 30.0 * t, 15.0, n),
                },
            )
        )
        scenario.distractors.append(twin)
