"""The scenario class grid: KU cell x hop depth x intent (+ derived axes).

SEARCH_ENGINEER's query-construction model (SNIPPETS.md) classifies an
information need by what the investigator already *knows*: the KU matrix
crosses Known/Unknown over the need's two components — here, whether the
chain's far endpoint is known, and whether the relationship type is.
STATE + INTENT = ACTION: each cell, crossed with hop depth and a
DISCOVER/ENRICH intent, prescribes a distinct investigation behavior the
Seeker must support.

The grid is the coverage contract: ``enumerate_grid()`` is exhaustive over
4 KU cells x 3 hop depths x 2 intents = 24 cells, and each cell carries a
deterministically assigned entity class and relationship type so those
axes are exercised across the grid without squaring its size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Node-class vocabularies (SEARCH_ENGINEER's S/L/N node classes: subjects,
#: locations, narrative records).  ``(plural, singular)`` pairs: the plural
#: names the table, the singular prefixes its columns.
ENTITY_CLASSES = {
    "subject": [
        ("vendors", "vendor"),
        ("brokers", "broker"),
        ("sponsors", "sponsor"),
        ("stewards", "steward"),
        ("carriers", "carrier"),
        ("patrons", "patron"),
    ],
    "location": [
        ("harbors", "harbor"),
        ("depots", "depot"),
        ("districts", "district"),
        ("terminals", "terminal"),
        ("yards", "yard"),
        ("quarries", "quarry"),
    ],
    "narrative": [
        ("contracts", "contract"),
        ("permits", "permit"),
        ("ledgers", "ledger"),
        ("charters", "charter"),
        ("dockets", "docket"),
        ("manifests", "manifest"),
    ],
}

#: Relationship-type vocabulary; each chain edge gets a distinct one, and
#: the cell's assigned type names the first edge (the one a
#: relation-knowing investigator can articulate up front).
RELATION_TYPES = ["custody", "licensing", "dispatch", "oversight", "tenancy", "brokerage"]

#: Distinctive per-node numeric attributes.  None of these (nor any word in
#: the persona templates) trips ``detect_aggregate``: scenario needs are
#: enrichment/discovery needs, not computations.
ATTRIBUTE_WORDS = [
    "margin",
    "rating",
    "exposure",
    "tenure",
    "intensity",
    "clearance",
    "backlog",
    "altitude",
]

_CLASS_ORDER = ["subject", "location", "narrative"]
_KU_CELLS = [(True, True), (True, False), (False, True), (False, False)]
_HOP_DEPTHS = (1, 2, 3)
_INTENTS = ("discover", "enrich")


@dataclass(frozen=True)
class ScenarioCell:
    """One coverage cell: what the investigator knows, wants, and about whom."""

    endpoint_known: bool
    relation_known: bool
    hops: int
    intent: str  # 'discover' | 'enrich'
    entity_class: str  # class of the chain's root node
    relation_type: str  # type of the chain's first edge

    @property
    def ku_code(self) -> str:
        """Two letters: endpoint then relation, K(nown) or U(nknown)."""
        return ("K" if self.endpoint_known else "U") + ("K" if self.relation_known else "U")

    @property
    def cell_id(self) -> str:
        return f"{self.ku_code}-{self.hops}hop-{self.intent}"


def enumerate_grid() -> List[ScenarioCell]:
    """The full scenario grid, in a fixed deterministic order.

    Entity class and relationship type cycle at coprime strides across the
    enumeration, so every class and every relation type appears in several
    KU/hop/intent combinations.
    """
    cells: List[ScenarioCell] = []
    index = 0
    for endpoint_known, relation_known in _KU_CELLS:
        for hops in _HOP_DEPTHS:
            for intent in _INTENTS:
                cells.append(
                    ScenarioCell(
                        endpoint_known=endpoint_known,
                        relation_known=relation_known,
                        hops=hops,
                        intent=intent,
                        entity_class=_CLASS_ORDER[index % len(_CLASS_ORDER)],
                        relation_type=RELATION_TYPES[index % len(RELATION_TYPES)],
                    )
                )
                index += 1
    return cells
