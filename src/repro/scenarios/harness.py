"""The pattern-coverage harness: one Seeker session per scenario cell.

Convergence on a cell is three independently checked claims, not one
boolean: the session's working memory holds both endpoint tables
(*discovery* worked), the reified spec compiles to exactly the planted
chain (*alignment* worked), and the materialized instance equals the
planted join oracle row-for-row (*preparation* worked).  A cell converges
only when the persona is also satisfied in-session — the user-visible
outcome the paper's convergence metric is about.

Every cell runs through a real :class:`PneumaService` (admission control,
resilience, shared prep pipeline, snapshot-swap reindex), so stress modes
exercise the serving layers, not a shortcut harness.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.scenario import ScenarioPersona, run_scenario
from .generator import PlantedScenario, build_scenario
from .grid import ScenarioCell, enumerate_grid
from .report import CellResult, CoverageReport


def _check_retrieved(session, scenario: PlantedScenario) -> str:
    missing = [
        table
        for table, _ in scenario.request_columns()
        if f"table:{table}" not in session.conductor.docs
    ]
    return f"endpoints never retrieved: {missing}" if missing else ""


def _check_aligned(service, session, scenario: PlantedScenario) -> str:
    from ..prep.align import AlignmentError

    specs = [spec for spec in session.state.tables.values() if spec.name.startswith("linked_")]
    if not specs:
        return "no enrichment spec reified"
    spec = specs[-1]
    try:
        plan = service.prep.compile(spec)
    except AlignmentError as exc:
        return f"alignment refused: {exc}"
    if set(plan.tables) != set(scenario.chain):
        return f"aligned tables {sorted(plan.tables)} != planted chain {sorted(scenario.chain)}"
    compiled = {
        frozenset([(j.left_table, j.left_column), (j.right_table, j.right_column)])
        for j in plan.joins
    }
    if compiled != scenario.expected_edges():
        return "aligned join edges differ from the planted chain"
    return ""


def _check_rows(session, scenario: PlantedScenario) -> str:
    specs = [spec for spec in session.state.tables.values() if spec.name.startswith("linked_")]
    if not specs:
        return "no enrichment spec reified"
    spec = specs[-1]
    if not session.state.is_materialized(spec.name):
        return f"{spec.name} never materialized"
    table = session.state.materialized.resolve_table(spec.name)
    expected_columns = [col for _, col in scenario.request_columns()]
    if table.column_names() != expected_columns:
        return f"materialized columns {table.column_names()} != {expected_columns}"
    got = sorted(
        zip(table.column_values(expected_columns[0]), table.column_values(expected_columns[1])),
        key=repr,
    )
    want = sorted(scenario.oracle_rows(), key=repr)
    if got != want:
        return f"materialized rows ({len(got)}) != planted join oracle ({len(want)})"
    return ""


def run_cell(
    scenario: PlantedScenario,
    max_turns: int = 8,
    dim: int = 64,
    service: Optional[object] = None,
    after_turn: Optional[Callable[[int], None]] = None,
) -> CellResult:
    """Run one cell's session and grade it against the planted truth.

    Builds a private single-worker service over the scenario's lake unless
    the caller supplies one (the stress runners do, to control persistence
    and drift hooks).
    """
    from ..service.service import PneumaService

    owned = service is None
    if owned:
        service = PneumaService(scenario.lake, max_workers=1, dim=dim)
    try:
        session_id = service.open_session(user=scenario.cell.cell_id)
        persona = ScenarioPersona(scenario, max_turns=max_turns)

        def respond(message: str) -> str:
            return service.post_turn(session_id, message).render()

        hooks: List[Callable[[int], None]] = []
        if after_turn is not None:
            hooks.append(after_turn)
        if scenario.stress == "drift" and scenario.drift is not None:
            from .stress import apply_drift

            def drift_hook(turn: int) -> None:
                if turn == scenario.drift.after_turn and not scenario.drift.applied:
                    apply_drift(service, scenario)

            hooks.append(drift_hook)

        def run_hooks(turn: int) -> None:
            for hook in hooks:
                hook(turn)

        transcript = run_scenario(persona, respond, after_turn=run_hooks)
        session = service._sessions[session_id].session
        retrieved = _check_retrieved(session, scenario)
        aligned = _check_aligned(service, session, scenario)
        rows = _check_rows(session, scenario)
        problems = [p for p in [retrieved, aligned, rows] if p]
        if not transcript.satisfied:
            problems.insert(0, f"persona unsatisfied after {transcript.messages} turns")
        return CellResult(
            cell_id=scenario.cell.cell_id,
            entity_class=scenario.cell.entity_class,
            relation_type=scenario.cell.relation_type,
            hops=scenario.cell.hops,
            intent=scenario.cell.intent,
            ku=scenario.cell.ku_code,
            stress=scenario.stress,
            satisfied=transcript.satisfied,
            retrieved_ok=not retrieved,
            aligned_ok=not aligned,
            rows_ok=not rows,
            turns=transcript.messages,
            detail="; ".join(problems),
        )
    finally:
        if owned:
            service.shutdown()


def run_grid(
    cells: Optional[List[ScenarioCell]] = None,
    seed: int = 7,
    stress: str = "none",
    rows: int = 48,
    max_turns: int = 8,
    dim: int = 64,
    storage_root=None,
    break_chain: bool = False,
) -> CoverageReport:
    """Run every cell of the grid (or a subset) and report coverage.

    ``stress='append'`` needs ``storage_root``: each cell persists its
    index there, restarts the service, and grows the far endpoint through
    the delta overlay before the session runs (see :mod:`.stress`).
    """
    from .stress import run_append_cell

    report = CoverageReport(seed=seed, stress=stress)
    for cell in cells if cells is not None else enumerate_grid():
        scenario = build_scenario(
            cell, seed=seed, rows=rows, stress=stress, break_chain=break_chain
        )
        if stress == "append":
            if storage_root is None:
                raise ValueError("append stress needs a storage_root directory")
            result = run_append_cell(scenario, storage_root, max_turns=max_turns, dim=dim)
        else:
            result = run_cell(scenario, max_turns=max_turns, dim=dim)
        report.cells.append(result)
    return report
