"""Coverage results and their deterministic report forms.

The report is part of the acceptance contract: the same seed must produce
a byte-identical report across runs, so nothing here carries wall-clock
timings, float formatting ambiguity, or unordered collections — cells
appear in grid-enumeration order and JSON is dumped with sorted keys.
Timings belong in the benchmark JSON, not the coverage report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CellResult:
    """One cell's verdict, with the three convergence checks unbundled."""

    cell_id: str
    entity_class: str
    relation_type: str
    hops: int
    intent: str
    ku: str
    stress: str
    satisfied: bool  # the persona's need was met in-session
    retrieved_ok: bool  # both endpoint tables entered working memory
    aligned_ok: bool  # reified spec compiles to the planted chain
    rows_ok: bool  # materialized rows == planted join oracle
    turns: int
    detail: str = ""  # empty when converged; else the failing checks
    service_ok: bool = True  # serving-layer preconditions (e.g. warm start)

    @property
    def converged(self) -> bool:
        return (
            self.satisfied
            and self.retrieved_ok
            and self.aligned_ok
            and self.rows_ok
            and self.service_ok
        )

    def to_json(self) -> Dict:
        return {
            "cell_id": self.cell_id,
            "entity_class": self.entity_class,
            "relation_type": self.relation_type,
            "hops": self.hops,
            "intent": self.intent,
            "ku": self.ku,
            "stress": self.stress,
            "converged": self.converged,
            "satisfied": self.satisfied,
            "retrieved_ok": self.retrieved_ok,
            "aligned_ok": self.aligned_ok,
            "rows_ok": self.rows_ok,
            "service_ok": self.service_ok,
            "turns": self.turns,
            "detail": self.detail,
        }


@dataclass
class CoverageReport:
    """The grid's verdicts plus the headline coverage fraction."""

    seed: int
    stress: str
    cells: List[CellResult] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if not self.cells:
            return 0.0
        return sum(1 for c in self.cells if c.converged) / len(self.cells)

    def failing(self) -> List[CellResult]:
        return [c for c in self.cells if not c.converged]

    def to_json(self) -> Dict:
        return {
            "seed": self.seed,
            "stress": self.stress,
            "cells_total": len(self.cells),
            "cells_converged": sum(1 for c in self.cells if c.converged),
            "coverage": round(self.coverage, 6),
            "cells": [c.to_json() for c in self.cells],
        }


def report_to_json(report: CoverageReport) -> str:
    """The byte-stable serialized form (what the determinism gate compares)."""
    return json.dumps(report.to_json(), indent=2, sort_keys=True)


def render_grid(report: CoverageReport) -> str:
    """A KU-matrix text grid: rows are KU cells, columns hop x intent."""
    columns: List[str] = []
    for cell in report.cells:
        key = f"{cell.hops}hop/{cell.intent}"
        if key not in columns:
            columns.append(key)
    rows: List[str] = []
    for cell in report.cells:
        if cell.ku not in rows:
            rows.append(cell.ku)
    by_key = {(c.ku, f"{c.hops}hop/{c.intent}"): c for c in report.cells}
    width = max([len(c) for c in columns] + [4])
    lines = [
        f"scenario coverage (stress={report.stress}, seed={report.seed}): "
        f"{sum(1 for c in report.cells if c.converged)}/{len(report.cells)} cells",
        "  " + "  ".join(f"{c:>{width}}" for c in ["KU"] + columns),
    ]
    for ku in rows:
        marks = []
        for col in columns:
            cell = by_key.get((ku, col))
            marks.append("-" if cell is None else ("ok" if cell.converged else "FAIL"))
        lines.append("  " + "  ".join(f"{v:>{width}}" for v in [ku] + marks))
    for cell in report.failing():
        lines.append(f"  FAIL {cell.cell_id}: {cell.detail}")
    return "\n".join(lines)
