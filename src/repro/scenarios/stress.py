"""Stress modes, wired through the serving layers they exercise.

* **drift** — rename the far endpoint's request column *between turns* of
  a live session, then snapshot-swap reindex: the catalog version bump
  must invalidate cached plans, the next retrieval must surface the new
  schema, and the session must re-plan instead of serving stale state.
  (Meaningful for cells whose first turn is not already the full request —
  the non-KK rows of the grid.)
* **append** — persist the index, restart the service, grow the far
  endpoint, and let the warm start's delta overlay re-narrate only the
  changed table; the session then runs against the grown catalog and the
  oracle includes the appended rows.
* **noisy** — near-duplicate narration twins are a *generator* mode (built
  into the lake before indexing); see :func:`..scenarios.generator._add_noisy_twins`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..datasets.generator import make_rng, normal, pick
from .generator import PlantedScenario, derive_seed
from .report import CellResult


def apply_drift(service, scenario: PlantedScenario) -> None:
    """Rename the planned request column in the live lake and reindex.

    The rename rebuilds the table (same column order, new name), which
    bumps the catalog version — invalidating every cached plan over it —
    and the snapshot-swap reindex refreshes narrations so the next
    retrieval surfaces the new schema.  The scenario's column maps are
    updated in place: the persona's next request uses the new name.
    """
    from ..relational.table import Table

    plan = scenario.drift
    if plan is None or plan.applied:
        return
    table = service.lake.resolve_table(plan.table)
    columns = {
        (plan.new_column if name == plan.old_column else name): values
        for name, values in table.to_columns().items()
    }
    service.lake.register(Table.from_columns(plan.table, columns), replace=True)
    if scenario.attrs.get(plan.table) == plan.old_column:
        scenario.attrs[plan.table] = plan.new_column
    if scenario.labels.get(plan.table) == plan.old_column:
        scenario.labels[plan.table] = plan.new_column
    plan.applied = True
    service.reindex(drain=True)


def append_rows(scenario: PlantedScenario, count: int = 16) -> None:
    """Grow the far endpoint by ``count`` rows referencing live parents.

    Ids continue the table's domain, labels continue its numbering, and
    every new foreign key resolves — so the planted join oracle (computed
    against the live lake) grows by exactly the resolvable additions.
    """
    from ..relational.table import Table

    rng = make_rng(derive_seed(scenario.seed, scenario.cell.cell_id, "append-rows"))
    deep = scenario.deep
    singular = scenario.nouns[deep]
    table = scenario.lake.resolve_table(deep)
    columns = table.to_columns()
    ids = columns[f"{singular}_id"]
    start = len(ids)
    parent = scenario.edges[-1].parent
    parent_ids = scenario.lake.resolve_table(parent).column_values(scenario.edges[-1].pk)
    additions = {
        f"{singular}_id": [max(ids) + 1 + j for j in range(count)],
        scenario.labels[deep]: [f"{singular}-{start + j:04d}" for j in range(count)],
        scenario.attrs[deep]: normal(rng, 40.0 + 10.0 * len(scenario.edges), 9.0, count, lo=1.0),
        scenario.edges[-1].fk: pick(rng, parent_ids, count),
    }
    for name in columns:
        columns[name] = columns[name] + additions[name]
    scenario.lake.register(Table.from_columns(deep, columns), replace=True)


def run_append_cell(
    scenario: PlantedScenario,
    storage_root,
    max_turns: int = 8,
    dim: int = 64,
    count: int = 16,
) -> CellResult:
    """The append-heavy cell runner: publish, restart, grow, converge.

    A first service builds and durably publishes the index, then shuts
    down cleanly.  Rows are appended while the service is "down".  The
    second service must warm-start (mmap'd segments plus a delta overlay
    narrating only the changed table) and still converge on the grown
    oracle.
    """
    from ..service.service import PneumaService
    from .harness import run_cell

    storage_dir = Path(storage_root) / scenario.cell.cell_id
    first = PneumaService(scenario.lake, max_workers=1, dim=dim, storage_dir=storage_dir)
    first.shutdown(drain=True)
    append_rows(scenario, count=count)
    service: Optional[PneumaService] = None
    try:
        service = PneumaService(scenario.lake, max_workers=1, dim=dim, storage_dir=storage_dir)
        result = run_cell(scenario, max_turns=max_turns, dim=dim, service=service)
        if not service.warm_started:
            result.service_ok = False
            result.detail = "; ".join(
                [p for p in [result.detail, "service did not warm-start"] if p]
            )
        return result
    finally:
        if service is not None:
            service.shutdown()
