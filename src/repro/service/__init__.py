"""service — the concurrent, fault-tolerant Pneuma serving layer.

One shared, frozen hybrid index behind a snapshot-swap gate; many
independent Seeker sessions on a thread pool; batched retrieval for
sessionless callers; admission control, deadlines, retry + circuit
breakers, degraded retrieval, and a deterministic fault-injection
harness.  See :class:`PneumaService` for the serving API.
"""

from ..obs import MetricsRegistry, ObservabilityConfig, SlowTurnLog, Tracer
from .faults import (
    CrashSpec,
    FaultPlan,
    FaultSchedule,
    FaultSpec,
    FlakyEmbedder,
    FlakyLLM,
    FlakyRetriever,
    FlakySQL,
)
from .metrics import ServiceMetrics, percentile
from .resilience import (
    CircuitBreaker,
    DependencyUnavailable,
    ResilienceConfig,
    ResilientLLM,
    RetryPolicy,
)
from .service import (
    DegradedResponse,
    ManagedSession,
    PneumaService,
    ServiceError,
    ServiceOverloaded,
    SessionSummary,
)
from .shared import (
    IndexGate,
    SharedIndexBundle,
    SwappableRetriever,
    build_shared_retriever,
    restore_shared_retriever,
)

__all__ = [
    "PneumaService",
    "ServiceError",
    "ServiceOverloaded",
    "SessionSummary",
    "DegradedResponse",
    "ManagedSession",
    "ServiceMetrics",
    "percentile",
    "ObservabilityConfig",
    "MetricsRegistry",
    "Tracer",
    "SlowTurnLog",
    "SharedIndexBundle",
    "IndexGate",
    "SwappableRetriever",
    "build_shared_retriever",
    "restore_shared_retriever",
    "CrashSpec",
    "FaultPlan",
    "FaultSpec",
    "FaultSchedule",
    "FlakyLLM",
    "FlakyEmbedder",
    "FlakyRetriever",
    "FlakySQL",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilientLLM",
    "ResilienceConfig",
    "DependencyUnavailable",
]
