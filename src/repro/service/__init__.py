"""service — the concurrent Pneuma serving layer.

One shared, frozen hybrid index; many independent Seeker sessions on a
thread pool; batched retrieval for sessionless callers.  See
:class:`PneumaService` for the four-call API.
"""

from .metrics import ServiceMetrics, percentile
from .service import (
    ManagedSession,
    PneumaService,
    ServiceError,
    SessionSummary,
)
from .shared import SharedIndexBundle, build_shared_retriever

__all__ = [
    "PneumaService",
    "ServiceError",
    "SessionSummary",
    "ManagedSession",
    "ServiceMetrics",
    "percentile",
    "SharedIndexBundle",
    "build_shared_retriever",
]
