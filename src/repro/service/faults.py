"""Deterministic fault injection for the serving layer.

Resilience code that is only exercised by real outages is untestable, so
every fault the serving layer defends against is reproducible offline: a
:class:`FaultPlan` derives per-dependency, per-instance seeded
:class:`FaultSchedule` streams, and thin injecting wrappers
(:class:`FlakyLLM`, :class:`FlakyRetriever`, :class:`FlakySQL`) raise
:class:`~repro.llm.interface.TransientDependencyError` on that schedule
while passing healthy calls through untouched.

Determinism contract: the same ``(seed, spec, dependency, instance)``
produces the same fault stream, call for call.  A plan with all-noop specs
(:meth:`FaultPlan.none`) injects nothing and is bit-transparent — the
oracle the resilience benchmark compares degraded paths against.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..llm.interface import TransientDependencyError
from ..storage.crash import NO_CRASH, CrashInjector, CrashSpec

__all__ = [
    "FaultSpec",
    "FaultSchedule",
    "FaultPlan",
    "FlakyLLM",
    "FlakyEmbedder",
    "FlakyRetriever",
    "FlakySQL",
    "CrashSpec",
]


def derive_seed(*parts) -> int:
    """A stable 63-bit seed from arbitrary labels (no salted ``hash()``)."""
    key = ":".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class FaultSpec:
    """What can go wrong with one dependency, and when.

    Three reproducible fault shapes (call indexes are 1-based):

    * ``fail_calls`` — exactly the Nth call(s) fail (deterministic flakes);
    * ``outages`` — every call in a ``[start, end)`` window fails (a
      persistent outage that should trip a circuit breaker);
    * ``rate`` — each call fails independently with this probability,
      drawn from the schedule's seeded RNG (steady-state flakiness).

    ``latency_seconds`` additionally stalls *every* call by that many
    virtual seconds (ticked on the caller's clock), modelling a slow but
    healthy dependency.
    """

    rate: float = 0.0
    fail_calls: Tuple[int, ...] = ()
    outages: Tuple[Tuple[int, int], ...] = ()
    latency_seconds: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        for window in self.outages:
            start, end = window
            if start < 1 or end < start:
                raise ValueError(f"outage window must satisfy 1 <= start <= end, got {window}")

    @property
    def is_noop(self) -> bool:
        return (
            self.rate == 0.0
            and not self.fail_calls
            and not self.outages
            and self.latency_seconds == 0.0
        )


class FaultSchedule:
    """One dependency instance's reproducible fault stream.

    Each injecting wrapper calls :meth:`before_call` once per underlying
    call; the schedule counts the call, applies any latency to the given
    clock, and raises :class:`TransientDependencyError` when the spec says
    this call index fails.  Thread-safe: a schedule shared by concurrent
    callers (e.g. the service-wide embedder) keeps one consistent stream,
    though cross-thread call *order* is then up to the interleaving.
    """

    def __init__(self, dependency: str, spec: FaultSpec, seed: int):
        self.dependency = dependency
        self.spec = spec
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.calls = 0
        self.faults = 0

    def before_call(self, clock=None) -> None:
        """Account one call; stall and/or fail it per the spec."""
        with self._lock:
            self.calls += 1
            index = self.calls
            failing = self._decide(index)
            if failing:
                self.faults += 1
        if self.spec.latency_seconds > 0.0 and clock is not None:
            clock.tick(self.spec.latency_seconds)
        if failing:
            raise TransientDependencyError(
                self.dependency,
                f"injected fault: {self.dependency} call #{index} failed on schedule",
            )

    def _decide(self, index: int) -> bool:
        spec = self.spec
        if index in spec.fail_calls:
            return True
        for start, end in spec.outages:
            if start <= index < end:
                return True
        return spec.rate > 0.0 and self._rng.random() < spec.rate

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"calls": self.calls, "faults": self.faults}


@dataclass
class FaultPlan:
    """A service-wide, seed-reproducible fault schedule.

    One spec per dependency class; :meth:`schedule` hands out a fresh
    stream per instance (e.g. one per session LLM) with a seed derived
    from ``(seed, dependency, instance index)``, so two services built
    from equal plans inject byte-identical fault histories — and two runs
    of the same workload produce the same responses.
    """

    seed: int = 0
    llm: FaultSpec = field(default_factory=FaultSpec)
    retriever: FaultSpec = field(default_factory=FaultSpec)
    sql: FaultSpec = field(default_factory=FaultSpec)
    #: Crash schedule for the persistence write paths (segment publish,
    #: journal appends, checkpoints) — a :class:`repro.storage.crash.CrashSpec`
    #: with its own seed; :meth:`CrashSpec.none` injects nothing.
    storage: CrashSpec = field(default_factory=CrashSpec.none)

    def __post_init__(self):
        self._lock = threading.Lock()
        self._instances: Dict[str, int] = {}
        self._schedules: List[FaultSchedule] = []

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The no-fault plan: injects nothing, bit-transparent (the oracle)."""
        return cls(seed=seed)

    def crash_injector(self) -> CrashInjector:
        """The storage layer's crash injector for this plan (the shared
        inert :data:`~repro.storage.crash.NO_CRASH` when the spec is noop,
        keeping the no-fault plan bit-transparent)."""
        if self.storage.is_noop:
            return NO_CRASH
        return CrashInjector(self.storage)

    def spec_for(self, dependency: str) -> FaultSpec:
        try:
            return {"llm": self.llm, "retriever": self.retriever, "sql": self.sql}[dependency]
        except KeyError:
            raise KeyError(f"unknown dependency {dependency!r}; known: llm, retriever, sql")

    def schedule(self, dependency: str) -> Optional[FaultSchedule]:
        """A new fault stream for the next instance of ``dependency``;
        ``None`` when that dependency's spec injects nothing."""
        spec = self.spec_for(dependency)
        if spec.is_noop:
            return None
        with self._lock:
            instance = self._instances.get(dependency, 0)
            self._instances[dependency] = instance + 1
        sched = FaultSchedule(dependency, spec, derive_seed(self.seed, dependency, instance))
        with self._lock:
            self._schedules.append(sched)
        return sched

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Injected calls/faults aggregated per dependency."""
        with self._lock:
            schedules = list(self._schedules)
        totals: Dict[str, Dict[str, int]] = {}
        for sched in schedules:
            bucket = totals.setdefault(sched.dependency, {"calls": 0, "faults": 0, "streams": 0})
            per = sched.stats()
            bucket["calls"] += per["calls"]
            bucket["faults"] += per["faults"]
            bucket["streams"] += 1
        return totals


class FlakyLLM:
    """A language model whose calls fail/stall on a :class:`FaultSchedule`.

    Healthy calls are forwarded untouched (same response, same metering),
    so a noop schedule is bit-transparent.  All other attributes (``ledger``,
    ``clock``, ``limits``, …) delegate to the wrapped model.
    """

    def __init__(self, inner, schedule: FaultSchedule):
        self._inner = inner
        self.schedule = schedule

    @property
    def model_name(self) -> str:
        return self._inner.model_name

    def complete(self, prompt: str, component: str = "") -> str:
        self.schedule.before_call(clock=getattr(self._inner, "clock", None))
        return self._inner.complete(prompt, component)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FlakyEmbedder:
    """An embedder whose query-time calls fail on schedule.

    In the hybrid index only the dense (ANN) half embeds queries, so
    installing this wrapper makes exactly the ANN/embedding half flaky
    while BM25 stays healthy — the partial outage degraded retrieval must
    survive.
    """

    def __init__(self, inner, schedule: FaultSchedule):
        self._inner = inner
        self.schedule = schedule

    @property
    def dim(self) -> int:
        return self._inner.dim

    def embed(self, text: str):
        self.schedule.before_call()
        return self._inner.embed(text)

    def embed_batch(self, texts):
        self.schedule.before_call()
        return self._inner.embed_batch(texts)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FlakyRetriever:
    """Injects deterministic vector-half faults into a built retriever.

    Installed *after* the index is built/frozen, it replaces the index's
    query embedder with a :class:`FlakyEmbedder`, so scheduled failures
    surface inside hybrid search exactly where a real embedding-service
    outage would — upstream of the retriever's circuit breaker and its
    BM25-only degraded path.  The wrapper also proxies the full retriever
    surface so it can stand in anywhere a retriever is expected.
    """

    def __init__(self, retriever, schedule: FaultSchedule):
        self.retriever = retriever
        self.schedule = schedule
        retriever.index.embedder = FlakyEmbedder(retriever.index.embedder, schedule)

    def __getattr__(self, name):
        return getattr(self.retriever, name)


class FlakySQL:
    """A Database wrapper whose ``execute`` fails on schedule.

    Injected failures are :class:`TransientDependencyError`, not
    :class:`~repro.relational.errors.RelationalError`, so they do *not*
    become SQL error feedback for the LLM repair loop — they escape the
    SQL executor like a crashed backend would and surface as failed turns.
    """

    def __init__(self, inner, schedule: FaultSchedule):
        self._inner = inner
        self.schedule = schedule

    def execute(self, sql: str):
        self.schedule.before_call()
        return self._inner.execute(sql)

    def __getattr__(self, name):
        return getattr(self._inner, name)
