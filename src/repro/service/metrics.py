"""Serving metrics: counters plus a bounded turn-latency reservoir.

The throughput/resilience benchmarks and the service's ``stats()``
endpoint both read from here.  Everything is guarded by one lock;
observation is O(1) and the reservoir is bounded so a long-lived service
cannot grow without limit.

Beyond the happy-path counters, every failure mode the resilience layer
handles is observable: ``turns_failed`` (exceptions escaped the turn),
``turns_shed`` (admission control refused or a queued turn's deadline
expired), ``turns_degraded`` (served, but on a degraded path),
``retries``, ``degraded_retrievals``, ``reindex_swaps``, and per-edge
circuit-breaker transition counts.
"""

from __future__ import annotations

import threading
from typing import Dict, List


def _percentile_sorted(ordered: List[float], p: float) -> float:
    """The ``p``-th percentile of an already-sorted sample list."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def percentile(samples: List[float], p: float) -> float:
    """The ``p``-th percentile (0..100) by linear interpolation.

    Sorts its input; callers computing several percentiles of one sample
    set should sort once and use :func:`_percentile_sorted` (as
    ``ServiceMetrics.snapshot`` does for p50/p95/p99).
    """
    return _percentile_sorted(sorted(samples), p)


class ServiceMetrics:
    """Thread-safe counters + latency samples for one PneumaService."""

    def __init__(self, max_samples: int = 10_000):
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.turns_served = 0
        self.batch_queries = 0
        # Resilience accounting.
        self.turns_failed = 0
        self.turns_shed = 0
        self.turns_degraded = 0
        self.retries = 0
        self.degraded_retrievals = 0
        self.reindex_swaps = 0
        self._breaker_transitions: Dict[str, int] = {}
        self._turn_seconds: List[float] = []

    # ------------------------------------------------------------------
    def record_session_opened(self) -> None:
        with self._lock:
            self.sessions_opened += 1

    def record_session_closed(self) -> None:
        with self._lock:
            self.sessions_closed += 1

    def record_turn(self, seconds: float) -> None:
        with self._lock:
            self.turns_served += 1
            self._turn_seconds.append(seconds)
            if len(self._turn_seconds) > self.max_samples:
                # Drop the oldest half in one splice; amortized O(1).
                del self._turn_seconds[: self.max_samples // 2]

    def record_batch_queries(self, n: int) -> None:
        with self._lock:
            self.batch_queries += n

    def record_turn_failed(self) -> None:
        with self._lock:
            self.turns_failed += 1

    def record_turn_shed(self) -> None:
        with self._lock:
            self.turns_shed += 1

    def record_turn_degraded(self) -> None:
        with self._lock:
            self.turns_degraded += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_degraded_retrieval(self) -> None:
        with self._lock:
            self.degraded_retrievals += 1

    def record_reindex(self) -> None:
        with self._lock:
            self.reindex_swaps += 1

    def record_breaker_transition(self, dependency: str, old: str, new: str) -> None:
        """Count one circuit-breaker edge, keyed ``"llm:closed->open"``."""
        key = f"{dependency}:{old}->{new}"
        with self._lock:
            self._breaker_transitions[key] = self._breaker_transitions.get(key, 0) + 1

    # ------------------------------------------------------------------
    def turn_latency(self, p: float) -> float:
        with self._lock:
            samples = list(self._turn_seconds)
        return percentile(samples, p)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            samples = list(self._turn_seconds)
            counts = {
                "sessions_opened": self.sessions_opened,
                "sessions_closed": self.sessions_closed,
                "turns_served": self.turns_served,
                "batch_queries": self.batch_queries,
                "turns_failed": self.turns_failed,
                "turns_shed": self.turns_shed,
                "turns_degraded": self.turns_degraded,
                "retries": self.retries,
                "degraded_retrievals": self.degraded_retrievals,
                "reindex_swaps": self.reindex_swaps,
                "breaker_transitions": dict(self._breaker_transitions),
            }
        # One sort serves every percentile of this snapshot.
        ordered = sorted(samples)
        counts["turn_p50_seconds"] = _percentile_sorted(ordered, 50.0)
        counts["turn_p95_seconds"] = _percentile_sorted(ordered, 95.0)
        counts["turn_p99_seconds"] = _percentile_sorted(ordered, 99.0)
        counts["turn_mean_seconds"] = sum(ordered) / len(ordered) if ordered else 0.0
        return counts
