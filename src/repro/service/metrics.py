"""Serving metrics: counters plus a bounded turn-latency reservoir.

The throughput benchmark and the service's ``stats()`` endpoint both read
from here.  Everything is guarded by one lock; observation is O(1) and the
reservoir is bounded so a long-lived service cannot grow without limit.
"""

from __future__ import annotations

import threading
from typing import Dict, List


def percentile(samples: List[float], p: float) -> float:
    """The ``p``-th percentile (0..100) by linear interpolation."""
    if not samples:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class ServiceMetrics:
    """Thread-safe counters + latency samples for one PneumaService."""

    def __init__(self, max_samples: int = 10_000):
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.turns_served = 0
        self.batch_queries = 0
        self._turn_seconds: List[float] = []

    # ------------------------------------------------------------------
    def record_session_opened(self) -> None:
        with self._lock:
            self.sessions_opened += 1

    def record_session_closed(self) -> None:
        with self._lock:
            self.sessions_closed += 1

    def record_turn(self, seconds: float) -> None:
        with self._lock:
            self.turns_served += 1
            self._turn_seconds.append(seconds)
            if len(self._turn_seconds) > self.max_samples:
                # Drop the oldest half in one splice; amortized O(1).
                del self._turn_seconds[: self.max_samples // 2]

    def record_batch_queries(self, n: int) -> None:
        with self._lock:
            self.batch_queries += n

    # ------------------------------------------------------------------
    def turn_latency(self, p: float) -> float:
        with self._lock:
            samples = list(self._turn_seconds)
        return percentile(samples, p)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            samples = list(self._turn_seconds)
            counts = {
                "sessions_opened": self.sessions_opened,
                "sessions_closed": self.sessions_closed,
                "turns_served": self.turns_served,
                "batch_queries": self.batch_queries,
            }
        counts["turn_p50_seconds"] = percentile(samples, 50.0)
        counts["turn_p95_seconds"] = percentile(samples, 95.0)
        counts["turn_mean_seconds"] = sum(samples) / len(samples) if samples else 0.0
        return counts
