"""Serving metrics: a facade over the labeled observability registry.

``ServiceMetrics`` keeps the exact recording surface and ``snapshot()``
shape the throughput/resilience benchmarks and ``stats()`` always read,
but every number now lives in a :class:`repro.obs.MetricsRegistry` —
typed counter/gauge/histogram families with Prometheus-text and JSON
exposition (``PneumaService.metrics_text()``).

Hot-path cost is unchanged: each ``record_*`` method calls one cached
registry child, which is a single striped-lock increment.  Turn latency
is a registry histogram whose bounded raw-sample reservoir uses the same
drop-oldest-half trimming as before, so percentiles in ``snapshot()``
stay bit-compatible.

Beyond the happy-path counters, every failure mode the resilience layer
handles is observable: ``turns_failed`` (exceptions escaped the turn),
``turns_shed`` (admission control refused or a queued turn's deadline
expired), ``turns_degraded`` (served, but on a degraded path),
``retries``, ``degraded_retrievals``, ``reindex_swaps``, and per-edge
circuit-breaker transition counts (a labeled counter in the registry,
re-keyed ``"llm:closed->open"`` in the snapshot).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.registry import MetricsRegistry, percentile, percentile_sorted

__all__ = ["ServiceMetrics", "percentile", "percentile_sorted"]


class ServiceMetrics:
    """Thread-safe counters + latency samples for one PneumaService."""

    def __init__(self, max_samples: int = 10_000, registry: Optional[MetricsRegistry] = None):
        self.max_samples = max_samples
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._sessions_opened = r.counter("pneuma_sessions_opened", "Sessions opened.")
        self._sessions_closed = r.counter("pneuma_sessions_closed", "Sessions closed.")
        self._batch_queries = r.counter(
            "pneuma_batch_queries", "Queries submitted through batch retrieval APIs."
        )
        self._turns_failed = r.counter(
            "pneuma_turns_failed", "Turns where an exception escaped the turn."
        )
        self._turns_shed = r.counter(
            "pneuma_turns_shed", "Turns refused by admission control or expired while queued."
        )
        self._turns_degraded = r.counter(
            "pneuma_turns_degraded", "Turns served on a degraded path."
        )
        self._retries = r.counter("pneuma_retries", "Dependency calls retried after a fault.")
        self._degraded_retrievals = r.counter(
            "pneuma_degraded_retrievals", "Retrievals served BM25-only (dense half unavailable)."
        )
        self._reindex_swaps = r.counter(
            "pneuma_reindex_swaps", "Zero-downtime index snapshot swaps."
        )
        self._breaker_transitions = r.counter(
            "pneuma_breaker_transitions",
            "Circuit-breaker state transitions per dependency edge.",
            labels=("dependency", "from_state", "to_state"),
        )
        # Turn count == histogram count, so serving a turn is one lock
        # acquire; the reservoir feeds the snapshot percentiles.
        self._turn_seconds = r.histogram(
            "pneuma_turn_seconds", "End-to-end turn latency.", max_samples=max_samples
        )

    # ------------------------------------------------------------------
    def record_session_opened(self) -> None:
        self._sessions_opened.inc()

    def record_session_closed(self) -> None:
        self._sessions_closed.inc()

    def record_turn(self, seconds: float) -> None:
        self._turn_seconds.observe(seconds)

    def record_batch_queries(self, n: int) -> None:
        self._batch_queries.inc(n)

    def record_turn_failed(self) -> None:
        self._turns_failed.inc()

    def record_turn_shed(self) -> None:
        self._turns_shed.inc()

    def record_turn_degraded(self) -> None:
        self._turns_degraded.inc()

    def record_retry(self) -> None:
        self._retries.inc()

    def record_degraded_retrieval(self) -> None:
        self._degraded_retrievals.inc()

    def record_reindex(self) -> None:
        self._reindex_swaps.inc()

    def record_breaker_transition(self, dependency: str, old: str, new: str) -> None:
        """Count one circuit-breaker edge, labeled (dependency, old, new)."""
        self._breaker_transitions.labels(dependency, old, new).inc()

    # ------------------------------------------------------------------
    def turn_latency(self, p: float) -> float:
        # One copy under the histogram's lock, one in-place sort outside.
        samples = self._turn_seconds._default().samples()
        samples.sort()
        return percentile_sorted(samples, p)

    def snapshot(self) -> Dict[str, Any]:
        turn_child = self._turn_seconds._default()
        samples = turn_child.samples()
        counts: Dict[str, Any] = {
            "sessions_opened": int(self._sessions_opened.value),
            "sessions_closed": int(self._sessions_closed.value),
            "turns_served": turn_child.count,
            "batch_queries": int(self._batch_queries.value),
            "turns_failed": int(self._turns_failed.value),
            "turns_shed": int(self._turns_shed.value),
            "turns_degraded": int(self._turns_degraded.value),
            "retries": int(self._retries.value),
            "degraded_retrievals": int(self._degraded_retrievals.value),
            "reindex_swaps": int(self._reindex_swaps.value),
            "breaker_transitions": {
                f"{dep}:{old}->{new}": int(child.value)
                for (dep, old, new), child in self._breaker_transitions.items()
            },
        }
        # One sort serves every percentile of this snapshot.
        samples.sort()
        counts["turn_p50_seconds"] = percentile_sorted(samples, 50.0)
        counts["turn_p95_seconds"] = percentile_sorted(samples, 95.0)
        counts["turn_p99_seconds"] = percentile_sorted(samples, 99.0)
        counts["turn_mean_seconds"] = sum(samples) / len(samples) if samples else 0.0
        return counts
