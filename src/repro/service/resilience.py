"""Retry, backoff, and circuit breaking for the serving layer.

Policy summary (the README's failure-mode table renders this):

* transient dependency failures (:class:`TransientDependencyError`) are
  retried with exponential backoff + seeded jitter, up to
  ``RetryPolicy.max_attempts`` total attempts;
* :class:`ContextLengthExceeded` is non-retryable — the same prompt
  overflows the same window — and propagates to the caller unchanged;
* every dependency gets a circuit breaker (closed → open → half-open):
  repeated failures stop traffic to a dead backend immediately instead of
  burning a full retry ladder per call, and a half-open probe restores
  service as soon as the backend recovers.

Backoff sleeps tick the model's *virtual* clock rather than real time, so
tests stay fast and deterministic while the latency cost is still
accounted (and becomes a real stall under ``SimulatedLatencyClock``).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..llm.interface import is_retryable
from ..obs import trace as obs

__all__ = [
    "DependencyUnavailable",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilientLLM",
    "ResilienceConfig",
]


class DependencyUnavailable(RuntimeError):
    """Raised instead of calling a dependency whose circuit is open."""

    def __init__(self, dependency: str, message: str = ""):
        super().__init__(message or f"dependency {dependency!r} unavailable: circuit open")
        self.dependency = dependency


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic (seeded) jitter.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retrying entirely.  Jitter decorrelates concurrent sessions' retry
    storms; it draws from the caller's RNG so a fixed seed reproduces the
    exact backoff sequence.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.5
    multiplier: float = 2.0
    max_delay_seconds: float = 8.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        delay = min(
            self.max_delay_seconds,
            self.base_delay_seconds * self.multiplier ** (attempt - 1),
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


class CircuitBreaker:
    """A classic closed / open / half-open breaker, one per dependency.

    * **closed** — traffic flows; ``failure_threshold`` consecutive
      failures trip it open (any success resets the count);
    * **open** — :meth:`allow` refuses instantly for ``recovery_seconds``;
    * **half-open** — after the cool-down, up to ``half_open_probes``
      trial calls pass; one success closes the breaker, one failure
      re-opens it.

    ``time_fn`` is injectable so tests drive recovery with a fake clock.
    ``on_transition(dependency, old, new)`` observes every state change —
    the service wires it into :class:`ServiceMetrics`.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        dependency: str,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        half_open_probes: int = 1,
        time_fn: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {half_open_probes}")
        self.dependency = dependency
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_probes = half_open_probes
        self._time_fn = time_fn
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        self.trips = 0  # lifetime closed/half-open -> open transitions

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the caller issue a request right now?"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._time_fn() - self._opened_at < self.recovery_seconds:
                    return False
                self._transition(self.HALF_OPEN)
                self._probes = 0
            # HALF_OPEN: admit a bounded number of trial calls.
            if self._probes < self.half_open_probes:
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._trip()
            elif self._state == self.CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip()
            # OPEN: a straggler that raced past allow(); stays open.

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self.trips += 1
        self._opened_at = self._time_fn()
        self._failures = 0
        self._transition(self.OPEN)

    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if self._on_transition is not None:
            self._on_transition(self.dependency, old, new_state)

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "trips": self.trips,
            }


class ResilientLLM:
    """Retry + circuit breaking around the session LLM.

    On a transient failure the breaker records it, the virtual clock ticks
    the backoff delay, and the call is retried up to
    ``RetryPolicy.max_attempts`` times total.  Non-retryable errors —
    :class:`ContextLengthExceeded` above all — propagate immediately and
    leave breaker state untouched (the model is healthy; the prompt is
    not).  When the breaker is open the call is refused up front with
    :class:`DependencyUnavailable`, shedding load off a dead backend.

    The success path is bit-transparent: same response, same metering,
    and all other attributes (``ledger``, ``clock``, …) delegate inward.
    """

    def __init__(
        self,
        inner,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics=None,
        seed: int = 0,
    ):
        self._inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker
        self._metrics = metrics
        self._rng = random.Random(seed)

    @property
    def model_name(self) -> str:
        return self._inner.model_name

    def complete(self, prompt: str, component: str = "") -> str:
        with obs.span("llm.complete", component=component) as sp:
            attempt = 0
            while True:
                if self.breaker is not None and not self.breaker.allow():
                    sp.event("breaker_refused", state=self.breaker.state)
                    raise DependencyUnavailable(
                        self.breaker.dependency,
                        f"{self.breaker.dependency} circuit open; call refused",
                    )
                try:
                    response = self._inner.complete(prompt, component)
                except Exception as exc:
                    if not is_retryable(exc):
                        raise
                    if self.breaker is not None:
                        self.breaker.record_failure()
                        sp.event(
                            "attempt_failed",
                            attempt=attempt + 1,
                            error=type(exc).__name__,
                            breaker_state=self.breaker.state,
                        )
                    else:
                        sp.event("attempt_failed", attempt=attempt + 1, error=type(exc).__name__)
                    attempt += 1
                    if attempt >= self.retry.max_attempts:
                        raise
                    if self._metrics is not None:
                        self._metrics.record_retry()
                    delay = self.retry.backoff(attempt, self._rng)
                    sp.event("retry", attempt=attempt, backoff_seconds=delay)
                    clock = getattr(self._inner, "clock", None)
                    if clock is not None:
                        clock.tick(delay)
                else:
                    if self.breaker is not None:
                        self.breaker.record_success()
                    sp.set_attr("attempts", attempt + 1)
                    return response

    def __getattr__(self, name):
        return getattr(self._inner, name)


@dataclass(frozen=True)
class ResilienceConfig:
    """Every serving-resilience knob in one object.

    The defaults are deliberately forgiving (generous queue bound, no
    deadline, 3-attempt retry) so a default-constructed service behaves
    like the pre-resilience one on healthy traffic while still surviving
    flaky dependencies.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    llm_breaker_threshold: int = 5
    llm_breaker_recovery_seconds: float = 30.0
    vector_breaker_threshold: int = 3
    vector_breaker_recovery_seconds: float = 15.0
    #: Pending-turn bound for admission control; ``None`` → 32 × workers.
    max_pending_turns: Optional[int] = None
    #: Per-turn deadline in real seconds; ``None`` → no deadline.
    turn_deadline_seconds: Optional[float] = None
    #: Seed for retry jitter (per-session streams are derived from it).
    seed: int = 0
