"""PneumaService: many concurrent Seeker sessions over one shared index.

The paper's Conductor loop is interactive and stateful, which makes naive
scaling expensive: every session would narrate, embed, and index the whole
catalog before its first turn.  The service amortizes that — one frozen
:class:`HybridIndex` (plus narration/embedding caches) is built per
service and shared read-only by every session, so opening a session costs
only its private state ``(T, Q)``.

Concurrency model:

* a ``ThreadPoolExecutor`` runs turns; LLM/tool waits (real network I/O in
  production, :class:`SimulatedLatencyClock` stalls offline) overlap
  across sessions;
* a per-session lock serializes turns *within* a session, so the
  Conductor's working memory never interleaves;
* the shared index is immutable-after-build (``freeze()``), so searches
  need no coordination at all;
* the Document Database of captured knowledge is shared service-wide —
  one user's clarification accelerates every other session, the paper's
  emergent-documentation effect at serving scale.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.session import SeekerResponse, SeekerSession, build_seeker_llm
from ..ir.docdb import DocumentDatabase
from ..ir.system import IRSystem, RetrievalResult
from ..llm.clock import SimulatedLatencyClock
from ..llm.rule_llm import RuleLLM
from ..prep.pipeline import PreparationPipeline
from ..prep.store import ProfileStore
from ..relational.catalog import Database
from ..relational.plan import PlanCache
from .metrics import ServiceMetrics
from .shared import SharedIndexBundle, build_shared_retriever


class ServiceError(RuntimeError):
    """Raised for protocol misuse: unknown/closed sessions, closed service."""


@dataclass
class ManagedSession:
    """One live session plus the serving bookkeeping around it."""

    session_id: str
    session: SeekerSession
    user: str = ""
    lock: threading.Lock = field(default_factory=threading.Lock)
    turns: int = 0
    closed: bool = False


@dataclass
class SessionSummary:
    """What ``close_session`` returns: the session's lifetime accounting."""

    session_id: str
    user: str
    turns: int
    virtual_seconds: float
    prompt_tokens: int
    completion_tokens: int


class PneumaService:
    """A concurrent serving layer around Pneuma-Seeker sessions.

    The public surface is four calls — ``open_session``, ``post_turn``,
    ``batch_retrieve``, ``close_session`` — plus ``stats()``.  Use it as a
    context manager or call :meth:`shutdown` to release the worker pool.
    """

    def __init__(
        self,
        lake: Database,
        max_workers: int = 8,
        dim: int = 192,
        llm_factory: Optional[Callable[[], RuleLLM]] = None,
        llm_latency_factor: float = 0.0,
        fusion_pool: Optional[int] = None,
    ):
        self.lake = lake
        self.shared: SharedIndexBundle = build_shared_retriever(
            lake, dim=dim, fusion_pool=fusion_pool
        )
        # One SQL plan cache for the whole service: the shared lake and
        # every session's materialized scratch database key into it (keys
        # are namespaced per catalog), so hit/miss counters aggregate all
        # serving-side SQL and repeated templated queries stay warm.
        self.sql_plan_cache = PlanCache(capacity=512)
        self.lake.share_plan_cache(self.sql_plan_cache)
        # One sketch-based preparation pipeline per service: column
        # profiles (MinHash + HLL + stats) for the whole catalog are built
        # once here, fingerprint-keyed in a versioned ProfileStore (the
        # NarrationCache idiom), so every session opens against warm
        # profiles and discovered join candidates — "sessions start
        # seeded".
        self.profile_store = ProfileStore()
        self.prep = PreparationPipeline(lake, store=self.profile_store)
        self.prep.join_candidates()  # eager: profile + discover at build time
        self.knowledge = DocumentDatabase()
        # Service-level IR facade for batch_retrieve (sessions build their
        # own IRSystem over the same shared retriever + knowledge store).
        self.ir = IRSystem(retriever=self.shared.retriever, knowledge=self.knowledge)
        self.metrics = ServiceMetrics()
        self._llm_factory = llm_factory
        self._llm_latency_factor = llm_latency_factor
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="pneuma-turn"
        )
        self._sessions: Dict[str, ManagedSession] = {}
        self._registry_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._shutdown = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "PneumaService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and release the worker pool."""
        with self._registry_lock:
            self._shutdown = True
        self._executor.shutdown(wait=wait)

    def _build_llm(self) -> RuleLLM:
        if self._llm_factory is not None:
            return self._llm_factory()
        return build_seeker_llm(clock=SimulatedLatencyClock(self._llm_latency_factor))

    # ------------------------------------------------------------------
    # The four-call API
    # ------------------------------------------------------------------
    def open_session(self, user: str = "") -> str:
        """Start a session against the shared index; returns its id."""
        with self._registry_lock:
            if self._shutdown:
                raise ServiceError("service is shut down")
            session_id = f"s{next(self._ids)}"
        session = SeekerSession(
            self.lake,
            llm=self._build_llm(),
            knowledge=self.knowledge,
            enable_web=False,
            user=user,
            retriever=self.shared.retriever,
            plan_cache=self.sql_plan_cache,
            prep=self.prep,
        )
        managed = ManagedSession(session_id=session_id, session=session, user=user)
        with self._registry_lock:
            # Re-check: shutdown() may have run while the session was being
            # built, and a session registered now could never be closed.
            if self._shutdown:
                raise ServiceError("service is shut down")
            self._sessions[session_id] = managed
        self.metrics.record_session_opened()
        return session_id

    def post_turn(self, session_id: str, message: str, wait: bool = True):
        """Run one user turn on the worker pool.

        With ``wait=True`` (default) blocks and returns the
        :class:`SeekerResponse`; with ``wait=False`` returns a ``Future``
        so callers can fan out turns across sessions and join later.
        Turns posted to the same session serialize on its lock; turns on
        different sessions run in parallel.
        """
        managed = self._resolve(session_id)
        future: Future = self._executor.submit(self._run_turn, managed, message)
        if wait:
            return future.result()
        return future

    def batch_retrieve(
        self, queries: Sequence[str], k_tables: int = 6, k_other: int = 2
    ) -> List[RetrievalResult]:
        """Answer N discovery queries in one pass over the shared index.

        Equivalent to N sequential ``IRSystem.retrieve`` calls (same
        documents, same order); used by sessionless callers — dashboards,
        prefetchers, evaluation sweeps.
        """
        results = self.ir.retrieve_batch(queries, k_tables=k_tables, k_other=k_other)
        self.metrics.record_batch_queries(len(results))
        return results

    def close_session(self, session_id: str) -> SessionSummary:
        """End a session (waits for its in-flight turn) and summarize it."""
        with self._registry_lock:
            if self._shutdown:
                raise ServiceError("service is shut down")
            # Pop atomically so exactly one concurrent closer wins.
            managed = self._sessions.pop(session_id, None)
        if managed is None:
            raise ServiceError(f"unknown or closed session {session_id!r}")
        with managed.lock:  # wait out any in-flight turn, then seal
            managed.closed = True
        self.metrics.record_session_closed()
        usage = managed.session.llm.ledger.total()
        return SessionSummary(
            session_id=session_id,
            user=managed.user,
            turns=managed.turns,
            virtual_seconds=managed.session.llm.clock.now,
            prompt_tokens=usage.prompt_tokens,
            completion_tokens=usage.completion_tokens,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def open_session_count(self) -> int:
        with self._registry_lock:
            return len(self._sessions)

    def stats(self) -> Dict[str, Any]:
        """Serving counters, latency percentiles, and cache hit rates."""
        snapshot = self.metrics.snapshot()
        snapshot["open_sessions"] = self.open_session_count()
        snapshot["index_size"] = len(self.shared.retriever.index)
        snapshot["caches"] = self.shared.cache_stats()
        # Retrieval-kernel view: which kernel serves the shared index,
        # whether freeze() compiled it, and the fusion-depth knob — the
        # fusion-pool/latency trade-off is tuned per service and must be
        # observable next to the latency percentiles it moves.
        snapshot["retrieval"] = self.shared.retriever.index.kernel_stats()
        snapshot["knowledge_entries"] = len(self.knowledge)
        # All serving-side SQL — lake queries and every session's
        # materialized scratch database — shares one plan cache; its
        # hit/miss/eviction counters aggregate across sessions.
        snapshot["sql_plan_cache"] = self.sql_plan_cache.stats()
        # The preparation pipeline's accounting: profile-store hit/miss
        # (fingerprint cache, NarrationCache idiom) plus discovery and
        # seeded-materialization counters.
        snapshot["profile_store"] = self.profile_store.stats()
        snapshot["prep"] = self.prep.stats()
        return snapshot

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(self, session_id: str) -> ManagedSession:
        with self._registry_lock:
            if self._shutdown:
                raise ServiceError("service is shut down")
            managed = self._sessions.get(session_id)
        if managed is None or managed.closed:
            raise ServiceError(f"unknown or closed session {session_id!r}")
        return managed

    def _run_turn(self, managed: ManagedSession, message: str) -> SeekerResponse:
        with managed.lock:
            if managed.closed:
                raise ServiceError(f"session {managed.session_id!r} closed mid-flight")
            started = time.perf_counter()
            response = managed.session.submit(message)
            managed.turns += 1
        self.metrics.record_turn(time.perf_counter() - started)
        return response
