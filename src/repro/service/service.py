"""PneumaService: many concurrent Seeker sessions over one shared index.

The paper's Conductor loop is interactive and stateful, which makes naive
scaling expensive: every session would narrate, embed, and index the whole
catalog before its first turn.  The service amortizes that — one frozen
:class:`HybridIndex` (plus narration/embedding caches) is built per
service and shared read-only by every session, so opening a session costs
only its private state ``(T, Q)``.

Concurrency model:

* a ``ThreadPoolExecutor`` runs turns; LLM/tool waits (real network I/O in
  production, :class:`SimulatedLatencyClock` stalls offline) overlap
  across sessions;
* a per-session lock serializes turns *within* a session, so the
  Conductor's working memory never interleaves;
* the shared index is immutable-after-build (``freeze()``); sessions hold
  a :class:`SwappableRetriever` over an :class:`IndexGate`, so
  :meth:`reindex` can build a fresh bundle in the background and
  atomically swap it in with zero downtime;
* the Document Database of captured knowledge is shared service-wide —
  one user's clarification accelerates every other session, the paper's
  emergent-documentation effect at serving scale.

Fault model (the resilience subsystem):

* **admission control** — ``post_turn`` sheds load with
  :class:`ServiceOverloaded` once the pending-turn queue hits its bound,
  so an overloaded service fails fast instead of queuing unboundedly;
* **deadlines** — a turn that cannot finish (or even start) within its
  deadline yields a structured :class:`DegradedResponse` instead of
  hanging the caller;
* **retry + breakers** — every session LLM is wrapped in
  :class:`ResilientLLM` (backoff retry behind a shared per-dependency
  circuit breaker); ``ContextLengthExceeded`` is non-retryable and
  propagates to the caller unchanged;
* **degraded retrieval** — when the dense half's breaker is open, table
  discovery serves BM25-only results flagged ``degraded=True``;
* **fault injection** — a :class:`FaultPlan` makes all of the above
  reproducible offline; a no-fault plan is bit-transparent.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..core.session import SeekerResponse, SeekerSession, build_seeker_llm
from ..ir.docdb import DocumentDatabase
from ..ir.system import IRSystem, RetrievalResult
from ..llm.clock import SimulatedLatencyClock
from ..llm.rule_llm import RuleLLM
from ..obs import ObservabilityConfig, SlowTurnLog, Tracer, render_prometheus
from ..obs import trace as obs
from ..prep.pipeline import PreparationPipeline
from ..prep.store import ProfileStore
from ..relational.catalog import Database
from ..relational.plan import PlanCache
from ..storage import NO_CRASH, IndexStore, stable_table_fingerprint
from .faults import FaultPlan, FlakyLLM, FlakyRetriever, derive_seed
from .metrics import ServiceMetrics
from .resilience import CircuitBreaker, ResilienceConfig, ResilientLLM
from .shared import (
    IndexGate,
    SharedIndexBundle,
    SwappableRetriever,
    build_shared_retriever,
    restore_shared_retriever,
)


class ServiceError(RuntimeError):
    """Raised for protocol misuse: unknown/closed sessions, closed service."""


class ServiceOverloaded(ServiceError):
    """Admission control refused the turn: the pending queue is at its
    bound.  The request was shed, not queued — retry with backoff."""


@dataclass
class ManagedSession:
    """One live session plus the serving bookkeeping around it."""

    session_id: str
    session: SeekerSession
    user: str = ""
    lock: threading.Lock = field(default_factory=threading.Lock)
    turns: int = 0
    closed: bool = False


@dataclass
class SessionSummary:
    """What ``close_session`` returns: the session's lifetime accounting."""

    session_id: str
    user: str
    turns: int
    virtual_seconds: float
    prompt_tokens: int
    completion_tokens: int


@dataclass
class DegradedResponse:
    """A structured stand-in for a turn the service could not serve fully.

    Returned (never raised) when a deadline expires: the caller gets a
    user-presentable message and a machine-readable ``reason`` instead of
    a hang or an opaque timeout.  When the turn is still running in the
    background, ``pending`` carries its future so callers may still join
    the late result.
    """

    session_id: str
    reason: str  # 'deadline' | 'queue-deadline'
    message: str
    state_view: str = ""
    answer_value: Any = None
    turn_log: Any = None
    degraded: bool = True
    pending: Optional[Future] = None

    def render(self) -> str:
        return f"{self.message}\n\n{self.state_view}".rstrip()


class PneumaService:
    """A concurrent, fault-tolerant serving layer around Seeker sessions.

    The public surface is four calls — ``open_session``, ``post_turn``,
    ``batch_retrieve``, ``close_session`` — plus ``stats()`` and
    ``reindex()``.  Use it as a context manager or call :meth:`shutdown`
    (``drain=True`` to close and summarize surviving sessions first).
    """

    def __init__(
        self,
        lake: Database,
        max_workers: int = 8,
        dim: int = 192,
        llm_factory: Optional[Callable[[], RuleLLM]] = None,
        llm_latency_factor: float = 0.0,
        fusion_pool: Optional[int] = None,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        storage_dir: Optional[Union[str, Path]] = None,
        observability: Optional[ObservabilityConfig] = None,
    ):
        self.lake = lake
        self._dim = dim
        self._fusion_pool = fusion_pool
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.fault_plan = fault_plan
        self.metrics = ServiceMetrics()
        # Tracing is opt-in and bit-transparent when off: with no tracer,
        # _run_turn calls the serving path directly and the span helpers
        # across retrieval/SQL/LLM/storage all hit their no-op fast path.
        self.observability = observability
        if observability is not None and observability.tracing:
            self.tracer: Optional[Tracer] = Tracer(
                seed=observability.trace_seed,
                clock=observability.clock,
                max_traces=observability.max_traces,
            )
            self.slow_turns: Optional[SlowTurnLog] = SlowTurnLog(
                threshold_seconds=observability.slow_turn_seconds,
                capacity=observability.slow_log_capacity,
            )
        else:
            self.tracer = None
            self.slow_turns = None
        # Crash-safe persistence (optional): opening the store runs the
        # full recovery protocol (WAL replay, torn-tail truncation,
        # quarantine of corrupt segments); the fault plan's storage spec
        # threads deterministic crash injection through its write paths.
        self._storage_injector = (
            fault_plan.crash_injector() if fault_plan is not None else NO_CRASH
        )
        self.store: Optional[IndexStore] = (
            IndexStore(storage_dir, crash=self._storage_injector)
            if storage_dir is not None
            else None
        )
        self.warm_started = False
        cfg = self.resilience
        self.breakers: Dict[str, CircuitBreaker] = {
            "llm": CircuitBreaker(
                "llm",
                failure_threshold=cfg.llm_breaker_threshold,
                recovery_seconds=cfg.llm_breaker_recovery_seconds,
                on_transition=self.metrics.record_breaker_transition,
            ),
            "vector": CircuitBreaker(
                "vector",
                failure_threshold=cfg.vector_breaker_threshold,
                recovery_seconds=cfg.vector_breaker_recovery_seconds,
                on_transition=self.metrics.record_breaker_transition,
            ),
        }
        self._gate = IndexGate(self._build_bundle(initial=True))
        self.retriever = SwappableRetriever(self._gate)
        # One SQL plan cache for the whole service: the shared lake and
        # every session's materialized scratch database key into it (keys
        # are namespaced per catalog), so hit/miss counters aggregate all
        # serving-side SQL and repeated templated queries stay warm.
        self.sql_plan_cache = PlanCache(capacity=512)
        self.lake.share_plan_cache(self.sql_plan_cache)
        # One sketch-based preparation pipeline per service: column
        # profiles (MinHash + HLL + stats) for the whole catalog are built
        # once here, fingerprint-keyed in a versioned ProfileStore (the
        # NarrationCache idiom), so every session opens against warm
        # profiles and discovered join candidates — "sessions start
        # seeded".
        self.profile_store = ProfileStore()
        self.prep = PreparationPipeline(lake, store=self.profile_store)
        self.prep.join_candidates()  # eager: profile + discover at build time
        self.knowledge = self._open_knowledge()
        # Service-level IR facade for batch_retrieve; built over the
        # swappable retriever, so it follows reindex swaps automatically.
        self.ir = IRSystem(retriever=self.retriever, knowledge=self.knowledge)
        self._llm_factory = llm_factory
        self._llm_latency_factor = llm_latency_factor
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="pneuma-turn"
        )
        self._sessions: Dict[str, ManagedSession] = {}
        self._registry_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._llm_instances = itertools.count()
        self._shutdown = False
        self._draining = False
        # Admission control: a bounded count of submitted-but-unfinished
        # turns; post_turn sheds (raises) instead of queuing past it.
        self._admission_lock = threading.Lock()
        self._pending_turns = 0
        self._peak_pending = 0
        self._max_pending = (
            cfg.max_pending_turns if cfg.max_pending_turns is not None else max_workers * 32
        )
        self._turn_deadline = cfg.turn_deadline_seconds
        self._reindex_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "PneumaService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True, drain: bool = False) -> List[SessionSummary]:
        """Stop accepting work and release the worker pool.

        With ``drain=True``, first stop admitting *new* sessions, then
        close and summarize every surviving session (waiting out its
        in-flight turn) — the graceful teardown ``close_session`` alone
        cannot provide once the service is shut down.  Returns the drained
        sessions' summaries (empty without ``drain``).
        """
        summaries: List[SessionSummary] = []
        if drain:
            with self._registry_lock:
                self._draining = True
                remaining = list(self._sessions)
            for session_id in remaining:
                try:
                    summaries.append(self.close_session(session_id))
                except ServiceError:
                    pass  # lost a race with a concurrent closer — fine
        with self._registry_lock:
            self._shutdown = True
        self._executor.shutdown(wait=wait)
        if self.store is not None:
            if drain:
                # Graceful: atomically save the knowledge store, fold the
                # WAL into the checkpoint, and write the clean-shutdown
                # marker — the next open classifies as clean and skips
                # recovery work entirely.
                self.knowledge.save(self.store.root / "knowledge.json")
                self.store.checkpoint(clean=True)
            else:
                self.store.close()
        return summaries

    def _build_bundle(
        self, narrations=None, embedder=None, initial: bool = False
    ) -> SharedIndexBundle:
        """Build (or warm-rebuild) an index bundle with resilience wiring.

        On the initial build with a store attached, a published snapshot
        warm-starts the bundle: the frozen index hydrates from mmap'd
        segments, and only tables that changed while the service was down
        are narrated (into the delta overlay).  A cold build with a store
        publishes its result so the *next* open warm-starts.
        """
        bundle: Optional[SharedIndexBundle] = None
        if initial and self.store is not None:
            bundle = restore_shared_retriever(
                self.lake,
                self.store,
                dim=self._dim,
                fusion_pool=self._fusion_pool,
                narrations=narrations,
                embedder=embedder,
                vector_breaker=self.breakers["vector"],
                on_degraded=self.metrics.record_degraded_retrieval,
            )
            if bundle is not None:
                self.warm_started = True
        if bundle is None:
            bundle = build_shared_retriever(
                self.lake,
                dim=self._dim,
                fusion_pool=self._fusion_pool,
                narrations=narrations,
                embedder=embedder,
                vector_breaker=self.breakers["vector"],
                on_degraded=self.metrics.record_degraded_retrieval,
            )
            if initial and self.store is not None:
                self._publish_index(bundle.retriever.index)
        if self.fault_plan is not None:
            schedule = self.fault_plan.schedule("retriever")
            if schedule is not None:
                # Installs query-time faults on the dense half in place.
                FlakyRetriever(bundle.retriever, schedule)
        return bundle

    def _publish_index(self, index) -> int:
        """Durably publish a frozen index through the store's journal."""
        tables = {
            table.name: stable_table_fingerprint(table) for table in self.lake.tables()
        }
        return self.store.publish(index, tables=tables)

    def _open_knowledge(self) -> DocumentDatabase:
        """The knowledge store, recovered when persistence is attached:
        load the last atomic save, re-apply WAL-journaled captures the
        save predates, then journal every future capture."""
        if self.store is None:
            return DocumentDatabase()
        saved = self.store.root / "knowledge.json"
        knowledge = DocumentDatabase.load(saved) if saved.exists() else DocumentDatabase()
        existing = {entry.entry_id for entry in knowledge.entries()}
        for record in self.store.knowledge_records():
            if record.get("id") in existing or not record.get("text"):
                continue
            knowledge.add(record["text"], record.get("topic", ""), record.get("author", ""))
        knowledge.recorder = self.store.knowledge_recorder()
        return knowledge

    def _build_llm(self) -> RuleLLM:
        if self._llm_factory is not None:
            llm = self._llm_factory()
        else:
            llm = build_seeker_llm(clock=SimulatedLatencyClock(self._llm_latency_factor))
        instance = next(self._llm_instances)
        if self.fault_plan is not None:
            schedule = self.fault_plan.schedule("llm")
            if schedule is not None:
                llm = FlakyLLM(llm, schedule)
        return ResilientLLM(
            llm,
            retry=self.resilience.retry,
            breaker=self.breakers["llm"],
            metrics=self.metrics,
            seed=derive_seed(self.resilience.seed, "llm-jitter", instance),
        )

    # ------------------------------------------------------------------
    # The four-call API
    # ------------------------------------------------------------------
    def open_session(self, user: str = "") -> str:
        """Start a session against the shared index; returns its id."""
        with self._registry_lock:
            if self._shutdown or self._draining:
                raise ServiceError("service is shut down")
            session_id = f"s{next(self._ids)}"
        session = SeekerSession(
            self.lake,
            llm=self._build_llm(),
            knowledge=self.knowledge,
            enable_web=False,
            user=user,
            retriever=self.retriever,
            plan_cache=self.sql_plan_cache,
            prep=self.prep,
        )
        managed = ManagedSession(session_id=session_id, session=session, user=user)
        with self._registry_lock:
            # Re-check: shutdown() may have run while the session was being
            # built, and a session registered now could never be closed.
            if self._shutdown or self._draining:
                raise ServiceError("service is shut down")
            self._sessions[session_id] = managed
        self.metrics.record_session_opened()
        return session_id

    def post_turn(
        self,
        session_id: str,
        message: str,
        wait: bool = True,
        deadline: Optional[float] = None,
    ):
        """Run one user turn on the worker pool.

        With ``wait=True`` (default) blocks and returns the
        :class:`SeekerResponse`; with ``wait=False`` returns a ``Future``
        so callers can fan out turns across sessions and join later.
        Turns posted to the same session serialize on its lock; turns on
        different sessions run in parallel.

        Admission control and deadlines: when the pending-turn queue is at
        its bound the turn is shed with :class:`ServiceOverloaded`; when a
        ``deadline`` (seconds; defaults to the service-wide setting) passes
        before the turn finishes — or before it even starts — the caller
        gets a :class:`DegradedResponse` instead of waiting forever.
        """
        managed = self._resolve(session_id)
        deadline = deadline if deadline is not None else self._turn_deadline
        with self._admission_lock:
            if self._pending_turns >= self._max_pending:
                self.metrics.record_turn_shed()
                raise ServiceOverloaded(
                    f"{self._pending_turns} turns pending (bound {self._max_pending}); "
                    "turn shed — retry with backoff"
                )
            self._pending_turns += 1
            if self._pending_turns > self._peak_pending:
                self._peak_pending = self._pending_turns
        deadline_at = time.monotonic() + deadline if deadline is not None else None
        try:
            future: Future = self._executor.submit(self._run_turn, managed, message, deadline_at)
        except BaseException:
            with self._admission_lock:
                self._pending_turns -= 1
            raise
        if not wait:
            return future
        if deadline is None:
            return future.result()
        try:
            return future.result(timeout=deadline)
        except FutureTimeoutError:
            self.metrics.record_turn_degraded()
            return DegradedResponse(
                session_id=session_id,
                reason="deadline",
                message=(
                    f"This turn exceeded its {deadline:g}s deadline and is still "
                    "processing in the background; please check back."
                ),
                pending=future,
            )

    def batch_retrieve(
        self, queries: Sequence[str], k_tables: int = 6, k_other: int = 2
    ) -> List[RetrievalResult]:
        """Answer N discovery queries in one pass over the shared index.

        Equivalent to N sequential ``IRSystem.retrieve`` calls (same
        documents, same order); used by sessionless callers — dashboards,
        prefetchers, evaluation sweeps.
        """
        results = self.ir.retrieve_batch(queries, k_tables=k_tables, k_other=k_other)
        self.metrics.record_batch_queries(len(results))
        return results

    def close_session(self, session_id: str) -> SessionSummary:
        """End a session (waits for its in-flight turn) and summarize it."""
        with self._registry_lock:
            if self._shutdown:
                raise ServiceError("service is shut down")
            # Pop atomically so exactly one concurrent closer wins.
            managed = self._sessions.pop(session_id, None)
        if managed is None:
            raise ServiceError(f"unknown or closed session {session_id!r}")
        with managed.lock:  # wait out any in-flight turn, then seal
            managed.closed = True
        self.metrics.record_session_closed()
        usage = managed.session.llm.ledger.total()
        return SessionSummary(
            session_id=session_id,
            user=managed.user,
            turns=managed.turns,
            virtual_seconds=managed.session.llm.clock.now,
            prompt_tokens=usage.prompt_tokens,
            completion_tokens=usage.completion_tokens,
        )

    # ------------------------------------------------------------------
    # Zero-downtime reindex
    # ------------------------------------------------------------------
    def reindex(self, drain: bool = True) -> Dict[str, Any]:
        """Snapshot-swap reindex: rebuild the shared index over the lake's
        current contents and atomically publish it, without pausing
        traffic.

        The fresh bundle is built in the background off the previous
        bundle's narration/embedding caches (unchanged tables cost one
        fingerprint pass), then swapped in through the index gate: new
        searches see the new index immediately, searches already running
        finish on the old one, and with ``drain=True`` this call returns
        only after the old generation is provably idle.
        """
        with self._reindex_lock:
            with self._registry_lock:
                if self._shutdown:
                    raise ServiceError("service is shut down")
            trace = (
                self.tracer.start_trace("reindex", drain=drain)
                if self.tracer is not None
                else nullcontext()
            )
            with trace:
                current = self._gate.current
                build_started = time.perf_counter()
                with obs.span("reindex.build"):
                    bundle = self._build_bundle(
                        narrations=current.narrations, embedder=current.embedder
                    )
                build_seconds = time.perf_counter() - build_started
                swap_started = time.perf_counter()
                with obs.span("reindex.swap"):
                    self._gate.swap(bundle, drain=drain)
                swap_seconds = time.perf_counter() - swap_started
                self.metrics.record_reindex()
                report = {
                    "build_report": dict(bundle.build_report),
                    "build_seconds": build_seconds,
                    "swap_seconds": swap_seconds,
                    "drained": drain,
                    "generation": self._gate.generation,
                    "index_size": len(bundle.retriever.index),
                }
                if self.store is not None:
                    # Swap first, publish second: readers get the new index at
                    # memory speed, and a crash mid-publish leaves the previous
                    # durable snapshot intact (the WAL record is what commits).
                    report["published_generation"] = self._publish_index(bundle.retriever.index)
                return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shared(self) -> SharedIndexBundle:
        """The currently-published index bundle (changes on reindex)."""
        return self._gate.current

    def open_session_count(self) -> int:
        with self._registry_lock:
            return len(self._sessions)

    def stats(self) -> Dict[str, Any]:
        """Serving counters, latency percentiles, and cache hit rates."""
        snapshot = self.metrics.snapshot()
        snapshot["open_sessions"] = self.open_session_count()
        snapshot["index_size"] = len(self.shared.retriever.index)
        snapshot["caches"] = self.shared.cache_stats()
        # Retrieval-kernel view: which kernel serves the shared index,
        # whether freeze() compiled it, and the fusion-depth knob — the
        # fusion-pool/latency trade-off is tuned per service and must be
        # observable next to the latency percentiles it moves.
        snapshot["retrieval"] = self.shared.retriever.index.kernel_stats()
        snapshot["knowledge_entries"] = len(self.knowledge)
        # All serving-side SQL — lake queries and every session's
        # materialized scratch database — shares one plan cache; its
        # hit/miss/eviction counters aggregate across sessions.
        snapshot["sql_plan_cache"] = self.sql_plan_cache.stats()
        # The preparation pipeline's accounting: profile-store hit/miss
        # (fingerprint cache, NarrationCache idiom) plus discovery and
        # seeded-materialization counters.
        snapshot["profile_store"] = self.profile_store.stats()
        snapshot["prep"] = self.prep.stats()
        # Resilience accounting: admission-queue pressure, breaker states,
        # index generation, and (when injecting) the fault plan's totals.
        with self._admission_lock:
            snapshot["admission"] = {
                "pending_turns": self._pending_turns,
                "peak_pending_turns": self._peak_pending,
                "max_pending_turns": self._max_pending,
                "turn_deadline_seconds": self._turn_deadline,
            }
        snapshot["breakers"] = {name: b.stats() for name, b in self.breakers.items()}
        snapshot["index_gate"] = self._gate.stats()
        if self.store is not None:
            storage = self.store.stats()
            storage["warm_start"] = self.warm_started
            snapshot["storage"] = storage
        if self.fault_plan is not None:
            snapshot["faults"] = self.fault_plan.stats()
        if self.tracer is not None:
            snapshot["obs"] = {
                "tracer": self.tracer.stats(),
                "slow_turns": self.slow_turns.stats(),
            }
        return snapshot

    def metrics_text(self) -> str:
        """The service's metrics in Prometheus text exposition format."""
        return render_prometheus(self.metrics.registry)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(self, session_id: str) -> ManagedSession:
        with self._registry_lock:
            if self._shutdown:
                raise ServiceError("service is shut down")
            managed = self._sessions.get(session_id)
        if managed is None or managed.closed:
            raise ServiceError(f"unknown or closed session {session_id!r}")
        return managed

    def _run_turn(
        self, managed: ManagedSession, message: str, deadline_at: Optional[float]
    ) -> SeekerResponse:
        if self.tracer is None:
            return self._serve_turn(managed, message, deadline_at)
        # Root the turn's trace on this worker thread: every span the
        # retrieval/SQL/LLM/storage layers open below nests under it.
        root = self.tracer.start_trace("turn", session=managed.session_id, user=managed.user)
        outcome = "failed"
        try:
            with root:
                response = self._serve_turn(managed, message, deadline_at)
                if isinstance(response, DegradedResponse):
                    outcome = "shed" if response.reason == "queue-deadline" else "degraded"
                elif getattr(response, "degraded", False):
                    outcome = "degraded"
                else:
                    outcome = "ok"
                return response
        finally:
            # The root is finished here (the with-block closed it), so its
            # duration is final — stamping the outcome now covers the
            # exception path too; the slow-turn log keeps anomalous trees.
            root.set_attr("outcome", outcome)
            self.slow_turns.offer(root, outcome)

    def _serve_turn(
        self, managed: ManagedSession, message: str, deadline_at: Optional[float]
    ) -> SeekerResponse:
        try:
            if deadline_at is not None and time.monotonic() >= deadline_at:
                # The deadline passed while the turn sat in the queue:
                # shed it instead of burning a worker on a dead turn.
                self.metrics.record_turn_shed()
                return DegradedResponse(
                    session_id=managed.session_id,
                    reason="queue-deadline",
                    message=(
                        "The service shed this turn: its deadline passed "
                        "while it was queued behind other work."
                    ),
                )
            with managed.lock:
                if managed.closed:
                    raise ServiceError(f"session {managed.session_id!r} closed mid-flight")
                started = time.perf_counter()
                response = managed.session.submit(message)
                managed.turns += 1
        except BaseException:
            self.metrics.record_turn_failed()
            raise
        finally:
            with self._admission_lock:
                self._pending_turns -= 1
        if response.degraded:
            self.metrics.record_turn_degraded()
        self.metrics.record_turn(time.perf_counter() - started)
        return response
