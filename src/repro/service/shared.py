"""The shared, immutable-after-build retrieval substrate of a service.

One :class:`SharedIndexBundle` is built per service: a fingerprint-cached
narration pass, a memoizing embedder, and a frozen :class:`HybridIndex`
that every session searches lock-free.

Two warm paths exist, with different savings.  ``reindex()`` on an
*existing* retriever skips unchanged tables entirely (one fingerprint
pass — the near-free case the throughput bench measures).  Passing a
previous bundle's ``narrations``/``embedder`` into
:func:`build_shared_retriever` builds a *fresh* frozen index: narrations
and embeddings come from the caches, but the BM25/HNSW inserts are
repaid in full.

Snapshot-swap reindexing rides on the second path: the service builds a
fresh bundle in the background, publishes it through an :class:`IndexGate`
(readers pin the generation they started on; the swap waits for the old
generation to drain), and sessions only ever hold a
:class:`SwappableRetriever` — the indirection that makes the swap
invisible to them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..obs import trace as obs
from ..relational.catalog import Database
from ..retriever.retriever import PneumaRetriever
from ..retriever.summarizer import NarrationCache, table_fingerprint
from ..storage.delta import DeltaHybridIndex
from ..storage.manifest import stable_table_fingerprint
from ..text.embedding import CachedEmbedder


@dataclass
class SharedIndexBundle:
    """A frozen retriever plus the caches that built it."""

    retriever: PneumaRetriever
    narrations: NarrationCache
    embedder: CachedEmbedder
    build_report: Dict[str, int] = field(default_factory=dict)

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        return {
            "narration": self.narrations.stats(),
            "embedding": self.embedder.stats(),
        }


def build_shared_retriever(
    lake: Database,
    dim: int = 192,
    sample_rows: int = 3,
    narrations: NarrationCache = None,
    embedder: CachedEmbedder = None,
    fusion_pool: int = None,
    vector_breaker=None,
    on_degraded: Optional[Callable[[], None]] = None,
) -> SharedIndexBundle:
    """Narrate + embed + index every table of ``lake``, then freeze.

    Passing the previous bundle's ``narrations``/``embedder`` makes this a
    warm rebuild: unchanged tables are recognized by fingerprint inside
    the caches and their narrations/embeddings are returned without
    recomputation.  ``vector_breaker``/``on_degraded`` thread the serving
    layer's dense-half circuit breaker into the retriever so hybrid search
    degrades to BM25-only instead of failing.
    """
    narrations = narrations if narrations is not None else NarrationCache()
    embedder = embedder if embedder is not None else CachedEmbedder(dim=dim)
    retriever = PneumaRetriever(
        lake,
        dim=dim,
        sample_rows=sample_rows,
        narration_cache=narrations,
        embedder=embedder,
        fusion_pool=fusion_pool,
        vector_breaker=vector_breaker,
        on_degraded=on_degraded,
    )
    retriever.freeze()
    return SharedIndexBundle(
        retriever=retriever,
        narrations=narrations,
        embedder=embedder,
        build_report=dict(retriever.build_report),
    )


def restore_shared_retriever(
    lake: Database,
    store,
    dim: int = 192,
    sample_rows: int = 3,
    narrations: NarrationCache = None,
    embedder: CachedEmbedder = None,
    fusion_pool: int = None,
    vector_breaker=None,
    on_degraded: Optional[Callable[[], None]] = None,
) -> Optional[SharedIndexBundle]:
    """Warm-start a bundle from an :class:`~repro.storage.store.IndexStore`
    snapshot instead of narrating/embedding/indexing the whole lake.

    The snapshot's frozen index hydrates zero-copy from mmap'd segments
    and becomes the base of a :class:`DeltaHybridIndex`; the lake is then
    reconciled against the manifest's stable table fingerprints — tables
    the snapshot still covers are served from the base (their narrations
    come straight back from the segment), changed/new tables are narrated
    into the delta overlay, and tables dropped from the catalog are
    tombstoned.  Returns ``None`` when the store has no usable snapshot
    (the caller cold-builds).
    """
    narrations = narrations if narrations is not None else NarrationCache()
    embedder = embedder if embedder is not None else CachedEmbedder(dim=dim)
    base = store.load_index(embedder=embedder)
    if base is None:
        return None
    delta = DeltaHybridIndex(base)
    current = {table.name: table for table in lake.tables()}
    preset_narrations = {}
    preset_fingerprints = {}
    for name, fingerprint in store.state.tables.items():
        table = current.get(name)
        if table is None or name not in base:
            continue
        if stable_table_fingerprint(table) == fingerprint:
            preset_narrations[name] = base.text_of(name)
            preset_fingerprints[name] = table_fingerprint(table)
    retriever = PneumaRetriever(
        lake,
        dim=dim,
        sample_rows=sample_rows,
        narration_cache=narrations,
        embedder=embedder,
        fusion_pool=fusion_pool,
        vector_breaker=vector_breaker,
        on_degraded=on_degraded,
        index=delta,
        preset_narrations=preset_narrations,
        preset_fingerprints=preset_fingerprints,
    )
    for doc_id in base._doc_list:
        if doc_id not in current:
            delta.mask(doc_id)
    retriever.freeze()
    report = dict(retriever.build_report)
    report["restored"] = len(preset_narrations)
    return SharedIndexBundle(
        retriever=retriever,
        narrations=narrations,
        embedder=embedder,
        build_report=report,
    )


class _Generation:
    """One published bundle plus its in-flight reader count."""

    __slots__ = ("bundle", "readers")

    def __init__(self, bundle: SharedIndexBundle):
        self.bundle = bundle
        self.readers = 0


class IndexGate:
    """A read–write gate over the service's current index bundle.

    Readers (:meth:`reading`) pin whatever generation is current when they
    enter and keep using it even if a swap happens mid-read — bundles are
    immutable, so that is always safe.  :meth:`swap` publishes the new
    bundle *immediately* (new readers see it with zero wait) and then
    optionally drains: blocks until the old generation's readers have all
    exited, at which point the old index is provably idle and can be
    retired.  Freshness therefore never blocks traffic in either
    direction.
    """

    def __init__(self, bundle: SharedIndexBundle):
        self._cond = threading.Condition()
        self._current = _Generation(bundle)
        self.generation = 0
        self.swaps = 0

    @property
    def current(self) -> SharedIndexBundle:
        return self._current.bundle

    @contextmanager
    def reading(self):
        with self._cond:
            gen = self._current
            gen.readers += 1
        try:
            yield gen.bundle
        finally:
            with self._cond:
                gen.readers -= 1
                if gen.readers == 0:
                    self._cond.notify_all()

    def swap(self, bundle: SharedIndexBundle, drain: bool = True) -> SharedIndexBundle:
        """Atomically publish ``bundle``; returns the replaced one.

        With ``drain=True`` (default) the call additionally waits until
        every reader that entered on the old generation has exited.
        """
        with self._cond:
            old = self._current
            self._current = _Generation(bundle)
            self.generation += 1
            self.swaps += 1
            if drain:
                while old.readers > 0:
                    self._cond.wait()
        return old.bundle

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "generation": self.generation,
                "swaps": self.swaps,
                "active_readers": self._current.readers,
            }


class SwappableRetriever:
    """The retriever handle sessions actually hold.

    Each search pins the gate's current bundle for exactly that call, so
    long-lived sessions follow reindex swaps automatically while in-flight
    searches finish on the index they started on.  Everything else
    (``frozen``, ``index``, ``narration`` …) delegates to the current
    bundle's retriever.
    """

    def __init__(self, gate: IndexGate):
        self._gate = gate

    def search(self, query: str, k: int = 5, mode: str = "hybrid"):
        with obs.span("retrieval.search", k=k, mode=mode):
            with self._gate.reading() as bundle:
                obs.set_attr("generation", self._gate.generation)
                return bundle.retriever.search(query, k=k, mode=mode)

    def search_batch(self, queries, k: int = 5, mode: str = "hybrid"):
        with obs.span("retrieval.search_batch", queries=len(queries), k=k, mode=mode):
            with self._gate.reading() as bundle:
                obs.set_attr("generation", self._gate.generation)
                return bundle.retriever.search_batch(queries, k=k, mode=mode)

    def column_values(self, table_name: str, column: str, limit: int = 200):
        with self._gate.reading() as bundle:
            return bundle.retriever.column_values(table_name, column, limit)

    @property
    def frozen(self) -> bool:
        return self._gate.current.retriever.frozen

    @property
    def index(self):
        return self._gate.current.retriever.index

    def __getattr__(self, name):
        return getattr(self._gate.current.retriever, name)
