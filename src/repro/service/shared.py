"""The shared, immutable-after-build retrieval substrate of a service.

One :class:`SharedIndexBundle` is built per service: a fingerprint-cached
narration pass, a memoizing embedder, and a frozen :class:`HybridIndex`
that every session searches lock-free.

Two warm paths exist, with different savings.  ``reindex()`` on an
*existing* retriever skips unchanged tables entirely (one fingerprint
pass — the near-free case the throughput bench measures).  Passing a
previous bundle's ``narrations``/``embedder`` into
:func:`build_shared_retriever` builds a *fresh* frozen index: narrations
and embeddings come from the caches, but the BM25/HNSW inserts are
repaid in full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..relational.catalog import Database
from ..retriever.retriever import PneumaRetriever
from ..retriever.summarizer import NarrationCache
from ..text.embedding import CachedEmbedder


@dataclass
class SharedIndexBundle:
    """A frozen retriever plus the caches that built it."""

    retriever: PneumaRetriever
    narrations: NarrationCache
    embedder: CachedEmbedder
    build_report: Dict[str, int] = field(default_factory=dict)

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        return {
            "narration": self.narrations.stats(),
            "embedding": self.embedder.stats(),
        }


def build_shared_retriever(
    lake: Database,
    dim: int = 192,
    sample_rows: int = 3,
    narrations: NarrationCache = None,
    embedder: CachedEmbedder = None,
    fusion_pool: int = None,
) -> SharedIndexBundle:
    """Narrate + embed + index every table of ``lake``, then freeze.

    Passing the previous bundle's ``narrations``/``embedder`` makes this a
    warm rebuild: unchanged tables are recognized by fingerprint inside
    the caches and their narrations/embeddings are returned without
    recomputation.
    """
    narrations = narrations if narrations is not None else NarrationCache()
    embedder = embedder if embedder is not None else CachedEmbedder(dim=dim)
    retriever = PneumaRetriever(
        lake,
        dim=dim,
        sample_rows=sample_rows,
        narration_cache=narrations,
        embedder=embedder,
        fusion_pool=fusion_pool,
    )
    retriever.freeze()
    return SharedIndexBundle(
        retriever=retriever,
        narrations=narrations,
        embedder=embedder,
        build_report=dict(retriever.build_report),
    )
