"""sim — the LLM-Sim user simulation (§4, Figure 3)."""

from .personas import BEHAVIOR, PERSONAS, SCENARIO, persona_for
from .runner import ConversationalSystem, SimTurn, SimulationOutcome, SimulationRunner
from .scenario import ScenarioPersona, ScenarioTranscript, run_scenario

__all__ = [
    "SimulationRunner",
    "SimulationOutcome",
    "SimTurn",
    "ConversationalSystem",
    "persona_for",
    "PERSONAS",
    "SCENARIO",
    "BEHAVIOR",
    "ScenarioPersona",
    "ScenarioTranscript",
    "run_scenario",
]
