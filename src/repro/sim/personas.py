"""Domain-expert personas for LLM Sim (the paper's Figure 3 template)."""

from __future__ import annotations

PERSONAS = {
    "archaeology": (
        "an archaeologist familiar with excavation datasets, soil chemistry "
        "measurements, artifact catalogs, and radiocarbon dating results"
    ),
    "environment": (
        "an environmental scientist familiar with air quality monitoring, "
        "water sampling programs, and regional weather observations"
    ),
}

SCENARIO = (
    "The system already has access to internal datasets. You are familiar "
    "with the domain and have seen similar datasets before. You are not "
    "uploading new datasets or asking if they exist - you assume they do."
)

BEHAVIOR = (
    "Explore and refine your question step-by-step depending on the system's "
    "responses. Be vague or explore tangents, just as a curious analyst "
    "would. Only arrive at the specific question if the system's output "
    "correctly leads you there."
)


def persona_for(dataset: str) -> str:
    return PERSONAS.get(dataset, "a data analyst exploring an enterprise dataset")
