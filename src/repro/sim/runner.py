"""The LLM-Sim interaction loop (§4): drive a system toward convergence.

Per benchmark question, the runner alternates LLM-Sim messages with system
responses until the sim declares convergence or the turn limit (15) is hit.
The sim's conversation view is token-budgeted: old system responses are
truncated once the context limit is reached, the degradation the paper
observes with GPT-4o's 128k window on raw-table outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol

from ..datasets.questions import Question
from ..llm.prompts import parse_response, render_prompt
from ..llm.rule_llm import RuleLLM
from ..llm.tokens import count_tokens
from .personas import BEHAVIOR, SCENARIO, persona_for


class ConversationalSystem(Protocol):
    """What the runner needs from a system under test."""

    name: str
    kind: str  # 'seeker' | 'rag' | 'static'

    def respond(self, message: str) -> str: ...


@dataclass
class SimTurn:
    user_message: str
    system_response: str


@dataclass
class SimulationOutcome:
    question_id: str
    system: str
    converged: bool
    turns: int  # sim prompts sent to the system
    transcript: List[SimTurn] = field(default_factory=list)
    final_message: str = ""


class SimulationRunner:
    """Runs LLM-Sim against one system for one question."""

    def __init__(
        self,
        sim_llm: RuleLLM,
        max_turns: int = 15,
        sim_context_tokens: int = 128_000,
    ):
        self.sim_llm = sim_llm
        self.max_turns = max_turns
        self.sim_context_tokens = sim_context_tokens

    def run(self, system: ConversationalSystem, question: Question) -> SimulationOutcome:
        conversation: List[Dict[str, str]] = []
        transcript: List[SimTurn] = []
        for turn in range(1, self.max_turns + 1):
            prompt = render_prompt(
                "user_sim",
                {
                    "PERSONA": persona_for(question.dataset),
                    "SCENARIO": SCENARIO,
                    "BEHAVIOR": BEHAVIOR,
                    "SYSTEM_KIND": system.kind,
                    "GOAL": question.text,
                    "TOPIC": question.topic,
                    "CONCEPTS": question.concepts_json(),
                    "CONVERSATION": self._truncated(conversation),
                },
            )
            payload = parse_response(self.sim_llm.complete(prompt, "user_sim"))
            if payload.get("converged"):
                return SimulationOutcome(
                    question_id=question.qid,
                    system=system.name,
                    converged=True,
                    turns=len(transcript),
                    transcript=transcript,
                    final_message=payload.get("message", ""),
                )
            message = payload.get("message", "")
            response = system.respond(message)
            conversation.append({"speaker": "you", "text": message})
            conversation.append({"speaker": "system", "text": response})
            transcript.append(SimTurn(message, response))
        return SimulationOutcome(
            question_id=question.qid,
            system=system.name,
            converged=False,
            turns=self.max_turns,
            transcript=transcript,
        )

    def _truncated(self, conversation: List[Dict[str, str]]) -> List[Dict[str, str]]:
        """Budget the sim's context: oldest system responses shrink first."""
        view = [dict(t) for t in conversation]
        total = sum(count_tokens(t["text"]) for t in view)
        index = 0
        while total > self.sim_context_tokens and index < len(view):
            turn = view[index]
            if turn["speaker"] == "system" and len(turn["text"]) > 400:
                total -= count_tokens(turn["text"])
                turn["text"] = turn["text"][:400] + " ...[truncated]"
                total += count_tokens(turn["text"])
            index += 1
        return view
