"""Scenario-driven investigator personas (STATE + INTENT = ACTION).

A :class:`ScenarioPersona` plays the KU cell of its planted scenario: what
it already knows it may articulate immediately; everything else it may say
only after the system *surfaces* it — the same articulated/surfaced
discipline the LLM-Sim user policy enforces for the benchmark personas.

* **KK** — endpoint and relation known: the full enrichment/discovery
  request on turn one.
* **KU** — endpoints known, relation unknown: first asks whether the two
  record sets are connected, then issues the request once the system has
  surfaced both endpoints' variables.
* **UK** — relation known, endpoint unknown: opens along the relation
  ("the custody trail that starts from..."), then walks the chain with
  connection probes, articulating each next table only after it appears
  in a response.
* **UU** — neither known: a generic overview opener, then the same walk.

The persona is deterministic and text-driven: its only inputs are the
scenario's planted truth and the raw system responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .runner import SimTurn


@dataclass
class ScenarioTranscript:
    cell_id: str
    satisfied: bool
    turns: List[SimTurn] = field(default_factory=list)

    @property
    def messages(self) -> int:
        return len(self.turns)


class ScenarioPersona:
    """A scripted investigator for one planted scenario."""

    def __init__(self, scenario, max_turns: int = 8):
        self.scenario = scenario
        self.max_turns = max_turns
        self.satisfied = False
        self._responses: List[str] = []
        self._opened = False
        self._asked_final = False

    # ------------------------------------------------------------------
    # What the system has surfaced so far
    # ------------------------------------------------------------------
    def observe(self, response: str) -> None:
        self._responses.append(response)
        if self._check_satisfied(response):
            self.satisfied = True

    def _surfaced(self) -> str:
        return "\n".join(self._responses)

    def _deepest_surfaced(self) -> int:
        """Highest chain index whose table name a response has mentioned."""
        surfaced = self._surfaced()
        deepest = 0
        for index, table in enumerate(self.scenario.chain):
            if index == 0 or table in surfaced:
                deepest = index
        return deepest

    def _columns_surfaced(self) -> bool:
        """Both request columns appeared in system text (fair to articulate)."""
        surfaced = self._surfaced()
        return all(col in surfaced for _, col in self.scenario.request_columns())

    def _check_satisfied(self, response: str) -> bool:
        """The need is met when one reified spec carries *both* request
        columns (one ``T[...]`` line) and that spec is materialized."""
        columns = [col for _, col in self.scenario.request_columns()]
        lines = response.splitlines()
        for i, line in enumerate(lines):
            if not line.startswith("T[") or not all(col in line for col in columns):
                continue
            for follower in lines[i + 1 :]:
                if not follower.startswith("  "):
                    break
                if "materialized (" in follower:
                    return True
        return False

    # ------------------------------------------------------------------
    # Message generation
    # ------------------------------------------------------------------
    def next_message(self) -> Optional[str]:
        if self.satisfied:
            return None
        cell = self.scenario.cell
        if self._asked_final:
            return self._final_request()  # re-ask: the need has not changed
        if cell.endpoint_known and cell.relation_known:
            return self._final_request()
        if not self._opened:
            self._opened = True
            return self._opener()
        if cell.endpoint_known:
            if self._columns_surfaced():
                return self._final_request()
            return self._probe()
        deepest = self._deepest_surfaced()
        if deepest == len(self.scenario.chain) - 1 and self._columns_surfaced():
            return self._final_request()
        return self._probe()

    def _opener(self) -> str:
        s = self.scenario
        cell = s.cell
        if cell.endpoint_known:  # KU: knows both record sets, not the link
            return (
                f"Are the {s.root} records and the {s.deep} records "
                "connected in our data?"
            )
        if cell.relation_known:  # UK: knows the relation, walks for the end
            return (
                f"I am tracing the {cell.relation_type} trail that starts from "
                f"our {s.root} records. What do they connect to?"
            )
        # UU: knows only the root exists
        return (
            f"I want to understand what surrounds our {s.root} records. "
            "Please give me an overview of the data we hold about them."
        )

    def _probe(self) -> str:
        anchor = self.scenario.chain[self._deepest_surfaced()]
        return f"What other records connect to the {anchor} data?"

    def _final_request(self) -> str:
        self._asked_final = True
        s = self.scenario
        (root, root_col), (deep, deep_col) = s.request_columns()
        return (
            f"Please link the {root} records to the {deep} records they reach, "
            f"and show the {root_col.replace('_', ' ')} alongside "
            f"the {deep_col.replace('_', ' ')}."
        )


def run_scenario(
    persona: ScenarioPersona,
    respond: Callable[[str], str],
    after_turn: Optional[Callable[[int], None]] = None,
) -> ScenarioTranscript:
    """Drive one persona against a system until satisfied or out of turns.

    ``after_turn(i)`` runs after the i-th exchange (1-based) — the hook the
    stress harness uses to apply schema drift *between* turns.
    """
    turns: List[SimTurn] = []
    for turn in range(1, persona.max_turns + 1):
        message = persona.next_message()
        if message is None:
            break
        response = respond(message)
        persona.observe(response)
        turns.append(SimTurn(message, response))
        if after_turn is not None:
            after_turn(turn)
        if persona.satisfied:
            break
    return ScenarioTranscript(
        cell_id=persona.scenario.cell.cell_id,
        satisfied=persona.satisfied,
        turns=turns,
    )
