"""Crash-safe persistent index segments for the serving layer.

The storage subsystem makes the compiled retrieval state a durable,
verifiable artifact instead of a process-lifetime one:

* :mod:`~repro.storage.segment` — immutable, checksummed, mmap-able
  files holding the compiled index halves' flat arrays;
* :mod:`~repro.storage.journal` — the write-ahead log with torn-tail
  recovery;
* :mod:`~repro.storage.atomic` — write-temp → fsync → rename → fsync-dir
  publish primitives;
* :mod:`~repro.storage.manifest` / :mod:`~repro.storage.store` — the
  WAL-journaled catalog: recovery on open, quarantine + per-segment
  rebuild of corrupt files, clean-shutdown markers;
* :mod:`~repro.storage.delta` — the LSM-style mutable overlay that lets
  a warm-started (hydrated, immutable) snapshot absorb new documents;
* :mod:`~repro.storage.crash` — deterministic crash injection threaded
  through every write path above, so the recovery battery can kill the
  process state at each named point and assert bit-identical recovery.
"""

from .atomic import atomic_write_bytes, atomic_write_json, fsync_dir, fsync_file
from .crash import (
    NO_CRASH,
    CrashInjector,
    CrashSpec,
    SimulatedCrash,
    all_crash_points,
    crash_point,
    describe_crash_point,
)
from .delta import DeltaHybridIndex
from .journal import Journal, ReplayResult, replay_journal
from .manifest import Manifest, SegmentRef, stable_table_fingerprint
from .segment import Segment, SegmentCorruptError, read_segment, verify_segment, write_segment
from .store import IndexStore

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "fsync_dir",
    "fsync_file",
    "NO_CRASH",
    "CrashInjector",
    "CrashSpec",
    "SimulatedCrash",
    "all_crash_points",
    "crash_point",
    "describe_crash_point",
    "DeltaHybridIndex",
    "Journal",
    "ReplayResult",
    "replay_journal",
    "Manifest",
    "SegmentRef",
    "stable_table_fingerprint",
    "Segment",
    "SegmentCorruptError",
    "read_segment",
    "verify_segment",
    "write_segment",
    "IndexStore",
]
