"""Atomic, fsync-disciplined file primitives.

Every durable artifact in :mod:`repro.storage` reaches disk through one
of two shapes:

* **publish** (:func:`atomic_write_bytes`) — write a temp file in the
  destination directory, flush + fsync it, ``rename()`` over the target,
  then fsync the directory.  A crash at any instant leaves either the
  old file or the new one, never a torn mix: rename is atomic on POSIX,
  and the directory fsync makes the rename itself durable.
* **append** (the journal, :mod:`repro.storage.journal`) — write a
  framed record to the end of an open file and fsync; a crash can only
  tear the *tail*, which the checksummed framing detects and truncates
  on recovery.

Crash points cover each instant with distinct on-disk consequences; the
recovery matrix in ``tests/storage`` re-opens after each and asserts the
store comes back bit-identical.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from ..obs import trace as obs
from .crash import NO_CRASH, CrashInjector, SimulatedCrash, crash_point

__all__ = [
    "fsync_file",
    "fsync_dir",
    "atomic_write_bytes",
    "atomic_write_json",
]

#: Temp file written (possibly only to OS buffers); target untouched.
CP_ATOMIC_AFTER_TEMP = crash_point(
    "atomic.after_temp_write",
    "temp file written but not fsynced; the target file is untouched",
)
#: Temp file durable; rename not yet issued — target still the old file.
CP_ATOMIC_BEFORE_RENAME = crash_point(
    "atomic.before_rename",
    "temp file fsynced; rename not issued — the old target must survive",
)
#: Renamed but directory entry not fsynced — either file may be current.
CP_ATOMIC_AFTER_RENAME = crash_point(
    "atomic.after_rename",
    "renamed over the target but the directory entry is not yet durable",
)


def fsync_file(path: Union[str, Path]) -> None:
    """fsync an existing file by path."""
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Union[str, Path]) -> None:
    """fsync a directory, making renames/creates inside it durable."""
    fd = os.open(os.fspath(path), os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, crash: CrashInjector = NO_CRASH
) -> None:
    """Durably replace ``path`` with ``data``: write-temp → fsync →
    rename → fsync-dir.  Readers never observe a partial file."""
    path = Path(path)
    with obs.span("storage.atomic_write", file=path.name, bytes=len(data)):
        temp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        fd = os.open(os.fspath(temp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            try:
                os.write(fd, data)
                crash.reach(CP_ATOMIC_AFTER_TEMP)
                os.fsync(fd)
            finally:
                os.close(fd)
            crash.reach(CP_ATOMIC_BEFORE_RENAME)
            os.replace(os.fspath(temp), os.fspath(path))
        except SimulatedCrash:
            # A dead process cannot clean up: leave the temp file exactly as
            # a real crash would, so recovery's leftover sweep is exercised.
            raise
        except BaseException:
            # I/O errors mid-publish should not strand the temp file.
            try:
                os.unlink(os.fspath(temp))
            except OSError:
                pass
            raise
        crash.reach(CP_ATOMIC_AFTER_RENAME)
        fsync_dir(path.parent)


def atomic_write_json(
    path: Union[str, Path], obj, crash: CrashInjector = NO_CRASH
) -> None:
    """Durably replace ``path`` with ``obj`` rendered as JSON."""
    payload = (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode("utf-8")
    atomic_write_bytes(path, payload, crash=crash)
