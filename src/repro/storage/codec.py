"""Codec between the compiled index kernels and segment files.

Three segment kinds persist one frozen :class:`HybridIndex`:

* ``bm25`` — the interned doc table, norm vector, and every term's
  impact-sorted postings (CSR over sorted terms);
* ``hnsw`` — the compacted vector matrix, per-level CSR links, node
  levels and keys;
* ``fusion`` — the hybrid id space, both halves' slot→hybrid maps, and
  each document's indexed text.

The fusion segment doubles as the *rebuild source*: if a half's segment
is quarantined, :func:`rebuild_bm25_half` / :func:`rebuild_hnsw_half`
reconstruct just that half from the preserved texts (same insertion
order, same seed — the deterministic build makes the result rank-
identical), instead of rebuilding the whole lake.

String lists ride in segments as one utf-8 byte array plus an int64
offsets array — the same flat-arrays-as-files idea the kernels use.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ann.hnsw import HNSWIndex
from ..retriever.index import HybridIndex
from ..text.bm25 import BM25Index
from .crash import NO_CRASH, CrashInjector
from .segment import Segment, read_segment, write_segment

__all__ = [
    "pack_strings",
    "unpack_strings",
    "write_bm25_segment",
    "write_hnsw_segment",
    "write_fusion_segment",
    "load_bm25",
    "load_hnsw",
    "load_fusion_parts",
    "rebuild_bm25_half",
    "rebuild_hnsw_half",
    "fusion_maps_for",
]


# ----------------------------------------------------------------------
# String packing
# ----------------------------------------------------------------------
def pack_strings(strings: Sequence[Optional[str]]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack strings into ``(utf-8 bytes, int64 offsets)``; ``None`` packs
    as an empty string (pair with a mask when the distinction matters)."""
    encoded = [(s or "").encode("utf-8") for s in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(e) for e in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8) if encoded else np.empty(0, np.uint8)
    return blob, offsets


def unpack_strings(blob: np.ndarray, offsets: np.ndarray) -> List[str]:
    raw = blob.tobytes()
    bounds = offsets.tolist()
    return [raw[bounds[i] : bounds[i + 1]].decode("utf-8") for i in range(len(bounds) - 1)]


# ----------------------------------------------------------------------
# BM25
# ----------------------------------------------------------------------
def write_bm25_segment(path: Path, index: BM25Index, crash: CrashInjector = NO_CRASH) -> str:
    export = index.export_compiled()
    doc_ids: List[Optional[str]] = export["doc_ids"]
    doc_bytes, doc_offsets = pack_strings(doc_ids)
    doc_live = np.array([d is not None for d in doc_ids], dtype=np.uint8)
    term_bytes, term_offsets = pack_strings(export["terms"])
    arrays = {
        "doc_ids_bytes": doc_bytes,
        "doc_ids_offsets": doc_offsets,
        "doc_live": doc_live,
        "doc_lengths": export["doc_lengths"],
        "norm": export["norm"],
        "terms_bytes": term_bytes,
        "terms_offsets": term_offsets,
        "idf": export["idf"],
        "offsets": export["offsets"],
        "slots": export["slots"],
        "tfs": export["tfs"],
        "contrib": export["contrib"],
    }
    return write_segment(path, arrays, meta={"kind": "bm25", **export["meta"]}, crash=crash)


def load_bm25(segment: Segment) -> BM25Index:
    a = segment.arrays
    doc_ids: List[Optional[str]] = unpack_strings(a["doc_ids_bytes"], a["doc_ids_offsets"])
    for slot, live in enumerate(a["doc_live"].tolist()):
        if not live:
            doc_ids[slot] = None
    return BM25Index.hydrate_compiled(
        meta=segment.meta,
        doc_ids=doc_ids,
        doc_lengths=a["doc_lengths"],
        norm=a["norm"],
        terms=unpack_strings(a["terms_bytes"], a["terms_offsets"]),
        idf=a["idf"],
        offsets=a["offsets"],
        slots=a["slots"],
        tfs=a["tfs"],
        contrib=a["contrib"],
    )


# ----------------------------------------------------------------------
# HNSW
# ----------------------------------------------------------------------
def write_hnsw_segment(path: Path, index: HNSWIndex, crash: CrashInjector = NO_CRASH) -> str:
    export = index.export_compiled()
    key_bytes, key_offsets = pack_strings(export["keys"])
    arrays = {
        "matrix": export["matrix"],
        "node_levels": export["node_levels"],
        "keys_bytes": key_bytes,
        "keys_offsets": key_offsets,
    }
    for level, (offsets, flat) in enumerate(export["csr"]):
        arrays[f"csr_offsets_{level}"] = offsets
        arrays[f"csr_flat_{level}"] = flat
    return write_segment(path, arrays, meta={"kind": "hnsw", **export["meta"]}, crash=crash)


def load_hnsw(segment: Segment) -> HNSWIndex:
    a = segment.arrays
    levels = int(segment.meta["levels"])
    csr = [(a[f"csr_offsets_{level}"], a[f"csr_flat_{level}"]) for level in range(levels)]
    return HNSWIndex.hydrate_compiled(
        meta=segment.meta,
        matrix=a["matrix"],
        node_levels=a["node_levels"],
        keys=unpack_strings(a["keys_bytes"], a["keys_offsets"]),
        csr=csr,
    )


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------
def write_fusion_segment(path: Path, index: HybridIndex, crash: CrashInjector = NO_CRASH) -> str:
    export = index.export_fusion()
    doc_bytes, doc_offsets = pack_strings(export["doc_list"])
    text_bytes, text_offsets = pack_strings(export["texts"])
    arrays = {
        "doc_bytes": doc_bytes,
        "doc_offsets": doc_offsets,
        "text_bytes": text_bytes,
        "text_offsets": text_offsets,
        "bm25_map": export["bm25_map"],
        "vector_map": export["vector_map"],
    }
    return write_segment(path, arrays, meta={"kind": "fusion", **export["meta"]}, crash=crash)


def load_fusion_parts(segment: Segment) -> Dict[str, object]:
    """The fusion segment's decoded parts (assembly happens in the store,
    which may substitute rebuilt halves for quarantined ones)."""
    a = segment.arrays
    return {
        "meta": segment.meta,
        "doc_list": unpack_strings(a["doc_bytes"], a["doc_offsets"]),
        "texts": unpack_strings(a["text_bytes"], a["text_offsets"]),
        "bm25_map": a["bm25_map"],
        "vector_map": a["vector_map"],
    }


# ----------------------------------------------------------------------
# Quarantine rebuilds: one half from the fusion segment's texts
# ----------------------------------------------------------------------
def rebuild_bm25_half(meta: Dict[str, object], docs: Sequence[Tuple[str, str]]) -> BM25Index:
    """Rebuild the lexical half from preserved texts (insertion order =
    hybrid id order, as at the original freeze), then compile."""
    index = BM25Index(k1=float(meta.get("k1", 1.5)), b=float(meta.get("b", 0.75)))
    index.add_batch(list(docs))
    index.compile()
    return index


def rebuild_hnsw_half(
    meta: Dict[str, object], docs: Sequence[Tuple[str, str]], embedder
) -> HNSWIndex:
    """Rebuild the dense half from preserved texts: re-embed (the
    embedder is deterministic) and re-insert in the original order under
    the original seed, then compile."""
    index = HNSWIndex(
        dim=int(meta["dim"]),
        metric=str(meta.get("metric", "cosine")),
        m=int(meta.get("m", 12)),
        ef_construction=int(meta.get("ef_construction", 64)),
        ef_search=int(meta.get("ef_search", 50)),
        seed=int(meta.get("seed", 13)),
    )
    texts = [text for _, text in docs]
    if texts:
        matrix = embedder.embed_batch(texts)
        for (doc_id, _), vector in zip(docs, matrix):
            index.add(doc_id, vector)
    index.compile()
    return index


def fusion_maps_for(
    bm25: BM25Index, vectors: HNSWIndex, doc_list: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """Recompute both halves' slot→hybrid maps (the freeze-time interning)
    for halves that were rebuilt rather than hydrated."""
    hybrid_of = {doc_id: i for i, doc_id in enumerate(doc_list)}
    bm25_map = np.full(bm25.slot_count, -1, dtype=np.int64)
    for doc_id, slot in bm25.slot_items():
        bm25_map[slot] = hybrid_of[doc_id]
    vector_map = np.full(len(vectors), -1, dtype=np.int64)
    for doc_id, node in vectors.node_items():
        vector_map[node] = hybrid_of[doc_id]
    return bm25_map, vector_map
