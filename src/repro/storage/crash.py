"""Deterministic crash injection for the persistence write paths.

Durability code that is only exercised by real power loss is untestable,
so every write path in :mod:`repro.storage` is threaded with *named crash
points* — `reach()` calls at the instants where a process death would
leave interestingly-partial on-disk state (temp file written but not
renamed, journal record written but not fsynced, segments published but
the manifest not yet, …).  A :class:`CrashInjector` armed with a
:class:`CrashSpec` kills the operation at a chosen visit of a chosen
point by raising :class:`SimulatedCrash`; the recovery test matrix then
re-opens the store directory exactly as a restarted process would and
asserts retrieval is bit-identical to the no-crash oracle.

Crash model, stated honestly: raising at a crash point models a process
that dies *after* every preceding write reached the OS (the state an
fsync-ordered protocol must already survive).  Lost or torn buffered
writes — the power-loss case — are modelled separately by the torn-write
tests, which truncate a journal tail or bit-flip segment bytes and assert
the checksummed framing detects and contains the damage.

Determinism contract (mirrors :class:`repro.service.faults.FaultPlan`):
the same ``(spec, seed)`` kills the same visit of the same point, run
after run.  A default-constructed spec (:meth:`CrashSpec.none`) injects
nothing and is bit-transparent.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

__all__ = [
    "SimulatedCrash",
    "CrashSpec",
    "CrashInjector",
    "NO_CRASH",
    "crash_point",
    "all_crash_points",
]


class SimulatedCrash(BaseException):
    """An injected process death.

    Deliberately a :class:`BaseException` (like ``KeyboardInterrupt``) so
    no ``except Exception`` recovery path in the code under test can
    swallow it — a real ``kill -9`` cannot be caught either.
    """

    def __init__(self, point: str, visit: int):
        super().__init__(f"simulated crash at {point!r} (visit #{visit})")
        self.point = point
        self.visit = visit


# ----------------------------------------------------------------------
# The crash-point registry
# ----------------------------------------------------------------------
# Write-path modules register their points at import time; the recovery
# test matrix parametrizes over ``all_crash_points()`` so adding a new
# point to a write path automatically adds it to the battery.
_REGISTRY: Dict[str, str] = {}
_REGISTRY_LOCK = threading.Lock()


def crash_point(name: str, doc: str) -> str:
    """Register (idempotently) a named crash point; returns ``name``."""
    with _REGISTRY_LOCK:
        _REGISTRY.setdefault(name, doc)
    return name


def all_crash_points() -> Tuple[str, ...]:
    """Every registered crash point, sorted (the test matrix's axis)."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def describe_crash_point(name: str) -> str:
    with _REGISTRY_LOCK:
        return _REGISTRY[name]


def _derive_seed(*parts) -> int:
    """A stable 63-bit seed from labels (same scheme as service.faults)."""
    key = ":".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class CrashSpec:
    """Which crash points fire, and at which visit.

    * ``at`` — exact schedule: ``{point name: 1-based visit index}``; the
      injector raises on exactly that visit of that point.
    * ``rate`` — each visit of every point independently crashes with
      this probability, drawn from a seeded per-point RNG (fuzzing mode;
      the exact schedule is still reproducible from ``seed``).
    """

    at: Mapping[str, int] = field(default_factory=dict)
    rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"crash rate must be in [0, 1], got {self.rate}")
        for point, visit in self.at.items():
            if visit < 1:
                raise ValueError(f"visit index must be >= 1, got {visit} for {point!r}")

    @classmethod
    def none(cls) -> "CrashSpec":
        """The no-crash spec: injects nothing, bit-transparent."""
        return cls()

    @classmethod
    def nth(cls, point: str, visit: int = 1) -> "CrashSpec":
        """Crash at the ``visit``-th time ``point`` is reached."""
        return cls(at={point: visit})

    @property
    def is_noop(self) -> bool:
        return not self.at and self.rate == 0.0


class CrashInjector:
    """One store's crash schedule: counts visits, raises on the fatal one.

    Thread-safe; visit counters are per point name.  After the injector
    has crashed once it goes inert (a dead process stops reaching crash
    points), so recovery code re-using the same injector cannot be killed
    by a stale schedule — tests arm a fresh injector per planned crash.
    """

    def __init__(self, spec: CrashSpec = None):
        self.spec = spec if spec is not None else CrashSpec.none()
        self._lock = threading.Lock()
        self._visits: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self.crashed: str = ""  # the point that fired, if any

    def reach(self, point: str) -> None:
        """Account one visit of ``point``; raise if the schedule says die."""
        if self.spec.is_noop:
            return
        with self._lock:
            if self.crashed:
                return
            visit = self._visits.get(point, 0) + 1
            self._visits[point] = visit
            fatal = self.spec.at.get(point) == visit
            if not fatal and self.spec.rate > 0.0:
                rng = self._rngs.get(point)
                if rng is None:
                    rng = random.Random(_derive_seed(self.spec.seed, point))
                    self._rngs[point] = rng
                fatal = rng.random() < self.spec.rate
            if fatal:
                self.crashed = point
        if fatal:
            raise SimulatedCrash(point, visit)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._visits)


#: The shared inert injector — write paths default to it, costing one
#: attribute load and a falsy check per crash point.
NO_CRASH = CrashInjector(CrashSpec.none())
