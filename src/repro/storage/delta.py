"""LSM-style delta overlay for a hydrated index snapshot.

A hydrated :class:`HybridIndex` is search-only: its mutable build
structures were never restored, so ``add`` raises.  Warm starts still
need to absorb catalog changes that happened while the service was down,
and post-start adds.  :class:`DeltaHybridIndex` layers a small mutable
:class:`HybridIndex` (the *delta*) plus a tombstone set over the frozen
*base*:

* adds land in the delta (re-adding a base doc tombstones the stale
  base copy);
* :meth:`mask` tombstones a base doc outright (a table deleted while
  the service was down);
* searches serve straight from the base while the overlay is empty —
  the fast path is bit-transparent — and otherwise merge base and delta
  candidate lists, dropping tombstoned docs.

Both layers score with the same RRF constants, but their ranks are
computed per-layer, so merged scores are an approximation of a single
fused index; :meth:`compact` rebuilds the exact single index when the
overlay has grown past taste.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..retriever.index import FrozenIndexError, HybridHit, HybridIndex

__all__ = ["DeltaHybridIndex"]


class DeltaHybridIndex:
    """A frozen base :class:`HybridIndex` plus a mutable delta overlay."""

    def __init__(self, base: HybridIndex, embedder=None):
        if not base.frozen:
            raise ValueError("DeltaHybridIndex needs a frozen base index")
        self.base = base
        if embedder is not None:
            base.embedder = embedder
        self.delta = HybridIndex(
            dim=base.embedder.dim,
            rrf_k=base.rrf_k,
            bm25_weight=base.bm25_weight,
            vector_weight=base.vector_weight,
            seed=base.seed,
            embedder=base.embedder,
            fusion_pool=base.fusion_pool,
        )
        self._masked: Set[str] = set()
        self._frozen = False

    # ------------------------------------------------------------------
    # Mutation (lands in the delta)
    # ------------------------------------------------------------------
    def add(self, doc_id: str, text: str) -> None:
        self.add_batch([(doc_id, text)])

    def add_batch(self, items: Sequence[Tuple[str, str]]) -> None:
        items = list(items)
        if not items:
            return
        self._check_mutable()
        for doc_id, _ in items:
            if doc_id in self.base:
                # The base copy is stale from now on; the delta answers.
                self._masked.add(doc_id)
        self.delta.add_batch(items)

    def mask(self, doc_id: str) -> None:
        """Tombstone a base document (deleted from the catalog)."""
        self._check_mutable()
        if doc_id in self.base:
            self._masked.add(doc_id)

    def _check_mutable(self) -> None:
        if self._frozen:
            raise FrozenIndexError(
                "this DeltaHybridIndex is frozen (shared by the serving layer); "
                "build a new index instead of mutating it"
            )

    def freeze(self) -> "DeltaHybridIndex":
        self._frozen = True
        if len(self.delta) and not self.delta.frozen:
            self.delta.freeze()
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    # Introspection (mirrors HybridIndex)
    # ------------------------------------------------------------------
    @property
    def embedder(self):
        return self.base.embedder

    @embedder.setter
    def embedder(self, value) -> None:
        self.base.embedder = value
        self.delta.embedder = value

    def __len__(self) -> int:
        return len(self.base) - len(self._masked) + len(self.delta)

    def __contains__(self, doc_id: str) -> bool:
        if doc_id in self.delta:
            return True
        return doc_id in self.base and doc_id not in self._masked

    def text_of(self, doc_id: str) -> str:
        if doc_id in self.delta:
            return self.delta.text_of(doc_id)
        if doc_id in self._masked:
            raise KeyError(doc_id)
        return self.base.text_of(doc_id)

    def kernel_stats(self) -> Dict[str, object]:
        stats = self.base.kernel_stats()
        stats.update(
            {
                "kernel": "array+delta",
                "frozen": self._frozen,
                "docs": len(self),
                "delta_docs": len(self.delta),
                "masked_docs": len(self._masked),
            }
        )
        return stats

    @property
    def overlay_empty(self) -> bool:
        return not self._masked and len(self.delta) == 0

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query: str, k: int = 5, mode: str = "hybrid") -> List[HybridHit]:
        return self.search_batch([query], k=k, mode=mode)[0]

    def search_batch(
        self, queries: Sequence[str], k: int = 5, mode: str = "hybrid"
    ) -> List[List[HybridHit]]:
        if self.overlay_empty:
            # Bit-transparent fast path: exactly the base snapshot's answer.
            return self.base.search_batch(queries, k=k, mode=mode)
        queries = list(queries)
        base_batches = self.base.search_batch(queries, k=k + len(self._masked), mode=mode)
        delta_batches = self.delta.search_batch(queries, k=k, mode=mode)
        results: List[List[HybridHit]] = []
        for base_hits, delta_hits in zip(base_batches, delta_batches):
            merged = [hit for hit in base_hits if hit.doc_id not in self._masked]
            merged.extend(delta_hits)
            merged.sort(key=lambda hit: (-hit.score, hit.doc_id))
            results.append(merged[:k])
        return results

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> HybridIndex:
        """Fold the overlay into a fresh frozen :class:`HybridIndex`.

        Live base docs keep their original order, delta docs append after
        — a deterministic full rebuild that restores exact single-index
        fusion (and is what a background merge would publish).
        """
        rebuilt = HybridIndex(
            dim=self.base.embedder.dim,
            rrf_k=self.base.rrf_k,
            bm25_weight=self.base.bm25_weight,
            vector_weight=self.base.vector_weight,
            seed=self.base.seed,
            embedder=self.base.embedder,
            fusion_pool=self.base.fusion_pool,
        )
        items: List[Tuple[str, str]] = []
        for doc_id in self.base._doc_list:
            if doc_id in self._masked or doc_id in self.delta:
                continue
            items.append((doc_id, self.base.text_of(doc_id)))
        for doc_id in self.delta._texts:
            items.append((doc_id, self.delta.text_of(doc_id)))
        rebuilt.add_batch(items)
        return rebuilt.freeze()
