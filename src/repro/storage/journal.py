"""The write-ahead journal: append-fsync records with torn-tail recovery.

Everything mutable in the store — manifest publishes, knowledge-store
captures, open/shutdown markers — is an appended record here; segment
files themselves are immutable and only *referenced* by journal records.
Record framing:

```
[u32 LE payload length][16-byte blake2b of payload][payload JSON utf-8]
```

Appends are serialized under a lock and fsynced before returning, so a
record that :meth:`Journal.append` acknowledged is durable.  A crash can
only damage the *tail*: a record written but not fully on disk is
detected on replay by its length/checksum and treated as if the append
never happened (exactly the WAL contract).  :func:`replay_journal` stops
at the first damaged frame and reports how many bytes it ignored;
:meth:`Journal.open_for_append` truncates that torn tail so new records
never land after garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

from ..obs import trace as obs
from .crash import NO_CRASH, CrashInjector, crash_point

__all__ = ["Journal", "ReplayResult", "replay_journal"]

_LEN = struct.Struct("<I")
_DIGEST_BYTES = 16
_HEADER_BYTES = _LEN.size + _DIGEST_BYTES
#: Refuse absurd frame lengths so a corrupt length field cannot make
#: replay attempt a multi-GB read.
_MAX_RECORD = 256 * 1024 * 1024

#: Record serialized but nothing written — the append simply never was.
CP_JOURNAL_BEFORE_WRITE = crash_point(
    "journal.append.before_write",
    "record framed in memory but no byte written; the journal is unchanged",
)
#: Bytes handed to the OS but not fsynced — a torn/lost tail on power cut.
CP_JOURNAL_BEFORE_SYNC = crash_point(
    "journal.append.before_sync",
    "record written but not fsynced; recovery may see a torn tail",
)
#: Record durable; the caller just never saw the acknowledgement.
CP_JOURNAL_AFTER_SYNC = crash_point(
    "journal.append.after_sync",
    "record fsynced but the append never returned to the caller",
)


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, sort_keys=True).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=_DIGEST_BYTES).digest()
    return _LEN.pack(len(payload)) + digest + payload


@dataclass
class ReplayResult:
    """What a journal scan found."""

    records: List[dict]
    valid_bytes: int  # prefix length whose frames all verified
    torn_bytes: int  # trailing bytes ignored (0 on a clean journal)
    torn_reason: str = ""


def replay_journal(path: Union[str, Path]) -> ReplayResult:
    """Scan a journal, returning every verified record in append order.

    Never raises for damage: the scan stops at the first frame whose
    length or checksum fails and reports the rest as the torn tail.  A
    missing journal replays as empty.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return ReplayResult(records=[], valid_bytes=0, torn_bytes=0)
    records: List[dict] = []
    at = 0
    while at < len(blob):
        if at + _HEADER_BYTES > len(blob):
            return _torn(records, at, blob, "truncated frame header")
        (length,) = _LEN.unpack_from(blob, at)
        if length > _MAX_RECORD:
            return _torn(records, at, blob, "implausible frame length")
        start = at + _HEADER_BYTES
        if start + length > len(blob):
            return _torn(records, at, blob, "truncated frame payload")
        digest = blob[at + _LEN.size : start]
        payload = blob[start : start + length]
        if hashlib.blake2b(payload, digest_size=_DIGEST_BYTES).digest() != digest:
            return _torn(records, at, blob, "frame checksum mismatch")
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return _torn(records, at, blob, "frame payload is not valid JSON")
        at = start + length
    return ReplayResult(records=records, valid_bytes=at, torn_bytes=0)


def _torn(records: List[dict], at: int, blob: bytes, reason: str) -> ReplayResult:
    return ReplayResult(
        records=records, valid_bytes=at, torn_bytes=len(blob) - at, torn_reason=reason
    )


class Journal:
    """An open, append-only journal file.

    Use :meth:`open_for_append` to (re)open on a real path — it replays
    first and truncates any torn tail, so the file is always frame-clean
    at the moment appends resume.
    """

    def __init__(self, path: Union[str, Path], crash: CrashInjector = NO_CRASH):
        self.path = Path(path)
        self._crash = crash
        self._lock = threading.Lock()
        self._fd = os.open(os.fspath(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._closed = False
        self.appended = 0

    @classmethod
    def open_for_append(
        cls, path: Union[str, Path], crash: CrashInjector = NO_CRASH
    ) -> "tuple[Journal, ReplayResult]":
        """Replay ``path``, truncate any torn tail, and open for append."""
        replay = replay_journal(path)
        path = Path(path)
        if replay.torn_bytes:
            with open(path, "r+b") as handle:
                handle.truncate(replay.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        return cls(path, crash=crash), replay

    def append(self, record: dict, sync: bool = True) -> None:
        """Durably append one record (fsynced before returning)."""
        frame = _frame(record)
        with obs.span(
            "storage.wal.append", record=record.get("type", ""), bytes=len(frame), sync=sync
        ):
            with self._lock:
                if self._closed:
                    raise ValueError("journal is closed")
                self._crash.reach(CP_JOURNAL_BEFORE_WRITE)
                os.write(self._fd, frame)
                self._crash.reach(CP_JOURNAL_BEFORE_SYNC)
                if sync:
                    os.fsync(self._fd)
                self._crash.reach(CP_JOURNAL_AFTER_SYNC)
                self.appended += 1

    def sync(self) -> None:
        """Flush any unsynced appends (no-op when every append synced)."""
        with self._lock:
            if not self._closed:
                os.fsync(self._fd)

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                os.fsync(self._fd)
                os.close(self._fd)
                self._closed = True

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
