"""The store's durable catalog state: checkpoint file + WAL records.

``MANIFEST.json`` is an atomically-published checkpoint of the state
below; ``wal.log`` (a :class:`~.journal.Journal`) carries everything
that happened since.  The truth at open time is always *checkpoint +
replayed WAL*, and a clean shutdown folds the WAL back into the
checkpoint so the next open starts from an empty journal.

The manifest also records each indexed table's *stable* content
fingerprint.  The in-process ``table_fingerprint`` used by the reindex
loop is salted Python ``hash()`` — meaningless to another process — so
warm starts compare against :func:`stable_table_fingerprint` (blake2b
over name, schema, and rendered rows) to decide which tables the
snapshot still covers and which go to the delta overlay.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from .atomic import atomic_write_json
from .crash import NO_CRASH, CrashInjector

__all__ = ["Manifest", "SegmentRef", "stable_table_fingerprint"]

MANIFEST_FORMAT = 1


def stable_table_fingerprint(table) -> str:
    """A process-stable blake2b identity for a table's content.

    Unlike ``retriever.summarizer.table_fingerprint`` (salted ``hash()``,
    never persisted), this digest survives process restarts, so manifests
    can record which table contents a snapshot indexed.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(table.name.encode("utf-8"))
    for column in table.schema:
        h.update(b"\x00")
        h.update(column.name.encode("utf-8"))
        h.update(str(column.dtype).encode("utf-8"))
    for row in table.rows:
        h.update(b"\x01")
        h.update(repr(row).encode("utf-8"))
    return h.hexdigest()


@dataclass
class SegmentRef:
    """One immutable segment file a manifest points at."""

    file: str  # filename relative to the segments/ directory
    payload_blake2b: str

    def to_json(self) -> Dict[str, str]:
        return {"file": self.file, "payload_blake2b": self.payload_blake2b}

    @classmethod
    def from_json(cls, data: Dict[str, str]) -> "SegmentRef":
        return cls(file=data["file"], payload_blake2b=data["payload_blake2b"])


@dataclass
class Manifest:
    """The logical catalog state (checkpoint image or WAL-advanced)."""

    generation: int = 0
    segments: Dict[str, SegmentRef] = field(default_factory=dict)  # kind -> ref
    tables: Dict[str, str] = field(default_factory=dict)  # name -> stable fp
    clean_opens: int = 0
    recovered_opens: int = 0
    quarantined: int = 0
    clean_shutdown: bool = False

    @property
    def has_snapshot(self) -> bool:
        return bool(self.segments)

    def apply_publish(self, record: Dict) -> None:
        """Advance to the state a WAL ``publish`` record describes."""
        self.generation = int(record["generation"])
        self.segments = {
            kind: SegmentRef.from_json(ref) for kind, ref in record["segments"].items()
        }
        self.tables = dict(record.get("tables", {}))

    def to_json(self) -> Dict:
        return {
            "format": MANIFEST_FORMAT,
            "generation": self.generation,
            "segments": {kind: ref.to_json() for kind, ref in self.segments.items()},
            "tables": self.tables,
            "counters": {
                "clean_opens": self.clean_opens,
                "recovered_opens": self.recovered_opens,
                "quarantined": self.quarantined,
            },
            "clean_shutdown": self.clean_shutdown,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "Manifest":
        if data.get("format") != MANIFEST_FORMAT:
            raise ValueError(f"unsupported manifest format {data.get('format')!r}")
        counters = data.get("counters", {})
        return cls(
            generation=int(data.get("generation", 0)),
            segments={
                kind: SegmentRef.from_json(ref)
                for kind, ref in data.get("segments", {}).items()
            },
            tables=dict(data.get("tables", {})),
            clean_opens=int(counters.get("clean_opens", 0)),
            recovered_opens=int(counters.get("recovered_opens", 0)),
            quarantined=int(counters.get("quarantined", 0)),
            clean_shutdown=bool(data.get("clean_shutdown", False)),
        )

    # ------------------------------------------------------------------
    # Disk image
    # ------------------------------------------------------------------
    def save(self, path: Path, crash: CrashInjector = NO_CRASH) -> None:
        atomic_write_json(path, self.to_json(), crash=crash)

    @classmethod
    def load(cls, path: Path) -> Optional["Manifest"]:
        """The checkpoint at ``path``, or ``None`` when absent/unreadable.

        The checkpoint is atomically published, so a missing or unparsable
        file means no checkpoint was ever completed (the WAL still holds
        any published state) — never a torn write.
        """
        try:
            data = json.loads(Path(path).read_text("utf-8"))
            return cls.from_json(data)
        except (FileNotFoundError, json.JSONDecodeError, ValueError, KeyError, TypeError):
            return None
