"""The on-disk, memory-mappable segment format.

A *segment* is one immutable file holding named numpy arrays plus a JSON
meta blob — the compiled index halves are already flat arrays/CSR, so a
segment is essentially their bytes laid out for ``mmap``:

```
offset 0   magic            b"PNEUSEG1"
       8   header_length    uint64 LE
      16   header_digest    32-byte blake2b of the header bytes
      48   header           JSON (utf-8): format version, meta blob,
                            payload digest/length, array TOC
      pad  zeros            to a 64-byte payload boundary
 payload   arrays           each 64-byte aligned, raw C-order bytes
```

Integrity is two-level: the header digest catches a torn or bit-rotted
header before anything is parsed, and the header's ``payload_blake2b``
guards every payload byte.  :func:`read_segment` verifies both before
returning a single read-only ``np.memmap`` whose array views alias the
file — opening a multi-GB segment costs one checksum pass and no copies.
Any mismatch raises :class:`SegmentCorruptError`; the store quarantines
the file and rebuilds that segment, never trusting it.

Segments are published with :func:`repro.storage.atomic.atomic_write_bytes`
(write-temp → fsync → rename → fsync-dir), so a crash mid-write leaves
the previous file (or nothing), never a half-segment under a live name.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from .atomic import atomic_write_bytes
from .crash import NO_CRASH, CrashInjector

__all__ = [
    "SegmentCorruptError",
    "Segment",
    "write_segment",
    "read_segment",
    "verify_segment",
]

MAGIC = b"PNEUSEG1"
FORMAT_VERSION = 1
_ALIGN = 64
_DIGEST_BYTES = 32


class SegmentCorruptError(RuntimeError):
    """A segment failed framing or checksum verification."""

    def __init__(self, path, reason: str):
        super().__init__(f"{path}: {reason}")
        self.path = Path(path)
        self.reason = reason


def _pad(offset: int) -> int:
    return (-offset) % _ALIGN


def _digest(*chunks: bytes) -> str:
    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    for chunk in chunks:
        h.update(chunk)
    return h.hexdigest()


@dataclass
class Segment:
    """A verified, read-only view of one segment file.

    ``arrays`` alias the underlying ``np.memmap`` (zero-copy); they stay
    valid for the lifetime of this object.  ``meta`` is the writer's JSON
    blob, ``header`` the full parsed header (TOC included).
    """

    path: Path
    meta: dict
    arrays: Dict[str, np.ndarray]
    header: dict

    @property
    def payload_bytes(self) -> int:
        return int(self.header["payload_length"])


def write_segment(
    path: Union[str, Path],
    arrays: Dict[str, np.ndarray],
    meta: dict = None,
    crash: CrashInjector = NO_CRASH,
) -> str:
    """Serialize ``arrays`` + ``meta`` into an immutable segment at
    ``path`` (published atomically).  Returns the payload blake2b hex —
    the identity the manifest records for this segment."""
    toc = []
    chunks = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        pad = _pad(offset)
        if pad:
            chunks.append(b"\x00" * pad)
            offset += pad
        raw = array.tobytes()
        toc.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": len(raw),
            }
        )
        chunks.append(raw)
        offset += len(raw)
    payload = b"".join(chunks)
    payload_digest = _digest(payload)
    header_obj = {
        "format": FORMAT_VERSION,
        "meta": meta if meta is not None else {},
        "toc": toc,
        "payload_length": len(payload),
        "payload_blake2b": payload_digest,
    }
    header = json.dumps(header_obj, sort_keys=True).encode("utf-8")
    prefix_len = len(MAGIC) + 8 + _DIGEST_BYTES + len(header)
    pad = _pad(prefix_len)
    blob = b"".join(
        [
            MAGIC,
            len(header).to_bytes(8, "little"),
            bytes.fromhex(_digest(header)),
            header,
            b"\x00" * pad,
            payload,
        ]
    )
    atomic_write_bytes(path, blob, crash=crash)
    return payload_digest


def _parse_header(path: Path, raw: np.ndarray) -> Tuple[dict, int]:
    """Validate framing + header digest; returns (header, payload offset)."""
    fixed = len(MAGIC) + 8 + _DIGEST_BYTES
    if raw.size < fixed:
        raise SegmentCorruptError(path, "file shorter than the fixed prefix")
    prefix = raw[:fixed].tobytes()
    if prefix[: len(MAGIC)] != MAGIC:
        raise SegmentCorruptError(path, "bad magic (not a segment file)")
    header_len = int.from_bytes(prefix[len(MAGIC) : len(MAGIC) + 8], "little")
    digest_at = len(MAGIC) + 8
    header_at = digest_at + _DIGEST_BYTES
    # Headers are small JSON; a corrupt length field must stay harmless.
    if header_len > 64 * 1024 * 1024 or header_at + header_len > raw.size:
        raise SegmentCorruptError(path, "truncated header")
    expected = prefix[digest_at:header_at].hex()
    header_bytes = raw[header_at : header_at + header_len].tobytes()
    if _digest(header_bytes) != expected:
        raise SegmentCorruptError(path, "header checksum mismatch")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SegmentCorruptError(path, f"header is not valid JSON: {exc}") from exc
    if header.get("format") != FORMAT_VERSION:
        raise SegmentCorruptError(path, f"unsupported format version {header.get('format')!r}")
    prefix_len = header_at + header_len
    return header, prefix_len + _pad(prefix_len)


def read_segment(path: Union[str, Path], verify: bool = True) -> Segment:
    """Open, verify, and mmap a segment.

    With ``verify=True`` (default) the payload checksum is recomputed
    over the mapped bytes — one sequential pass — before any array view
    is handed out.  Raises :class:`SegmentCorruptError` on any damage.
    """
    path = Path(path)
    try:
        raw = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as exc:
        raise SegmentCorruptError(path, f"cannot map segment: {exc}") from exc
    header, payload_at = _parse_header(path, raw)
    payload_len = int(header["payload_length"])
    if payload_at + payload_len > raw.size:
        raise SegmentCorruptError(path, "truncated payload")
    payload = raw[payload_at : payload_at + payload_len]
    # hashlib consumes the mapped bytes via the buffer protocol: the
    # verification pass streams the file without materializing a copy.
    if verify and _digest(payload) != header["payload_blake2b"]:
        raise SegmentCorruptError(path, "payload checksum mismatch")
    arrays: Dict[str, np.ndarray] = {}
    for entry in header["toc"]:
        start = payload_at + int(entry["offset"])
        nbytes = int(entry["nbytes"])
        view = raw[start : start + nbytes].view(np.dtype(entry["dtype"]))
        arrays[entry["name"]] = view.reshape(tuple(entry["shape"]))
    return Segment(path=path, meta=header.get("meta", {}), arrays=arrays, header=header)


def verify_segment(path: Union[str, Path]) -> dict:
    """Re-checksum one segment; returns ``{"ok": bool, "reason": str, ...}``
    without raising (the fsck entry point)."""
    path = Path(path)
    try:
        segment = read_segment(path, verify=True)
    except SegmentCorruptError as exc:
        return {"path": str(path), "ok": False, "reason": exc.reason}
    return {
        "path": str(path),
        "ok": True,
        "reason": "",
        "arrays": len(segment.arrays),
        "payload_bytes": segment.payload_bytes,
    }
