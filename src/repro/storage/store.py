"""The crash-safe index store: segments + manifest + WAL, recovered on open.

On-disk layout under one root directory:

```
root/
  MANIFEST.json      atomic checkpoint of the catalog state
  wal.log            write-ahead journal (publishes, knowledge, opens)
  segments/          immutable .seg files the manifest references
  quarantine/        segments that failed verification, kept for autopsy
```

Open protocol (the constructor — exactly what a restarted process runs):

1. sweep temp files a dead writer stranded;
2. load the checkpoint (atomically published → present or absent, never
   torn);
3. replay the WAL, truncating any torn tail, and advance the checkpoint
   state record by record — the last ``publish`` wins;
4. classify the open: *clean* iff the previous process checkpointed with
   a clean-shutdown marker and the WAL is empty (so replay had nothing
   to do); anything else is *recovered*;
5. append an ``open`` record so a later crash-without-shutdown is
   detectable.

:meth:`load_index` then materializes the published snapshot: every
segment is checksum-verified before use; a failing segment is moved to
``quarantine/`` and — for an index half — rebuilt from the fusion
segment's preserved texts and republished, so one flipped bit costs one
segment's rebuild, never the whole lake.  A corrupt *fusion* segment is
the one unrecoverable case (it is the rebuild source), and retires the
snapshot honestly rather than serving unverifiable data.

:meth:`checkpoint` folds the WAL back into ``MANIFEST.json``; with
``clean=True`` it also writes the clean-shutdown marker, making the next
open skip recovery.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..obs import trace as obs
from ..retriever.index import HybridIndex
from ..text.embedding import HashingEmbedder
from . import codec
from .atomic import fsync_dir
from .crash import NO_CRASH, CrashInjector, crash_point
from .journal import Journal, replay_journal
from .manifest import Manifest, SegmentRef
from .segment import SegmentCorruptError, read_segment, verify_segment

__all__ = ["IndexStore"]

#: All three segments durable; the publish record not yet journaled —
#: the manifest still points at the previous generation.
CP_PUBLISH_AFTER_SEGMENTS = crash_point(
    "store.publish.after_segments",
    "segment files written and durable but the publish record is not journaled; "
    "the previous snapshot must still be served",
)
#: Checkpoint written with the clean marker; the WAL not yet truncated —
#: the next open must tolerate replaying already-folded records.
CP_SHUTDOWN_BEFORE_TRUNCATE = crash_point(
    "store.shutdown.before_truncate",
    "clean-shutdown checkpoint written but the WAL is not yet truncated; "
    "replaying the stale WAL must be idempotent",
)

_SEGMENT_KINDS = ("fusion", "bm25", "hnsw")


class IndexStore:
    """One directory of crash-safe persistent index state."""

    def __init__(self, root: Union[str, Path], crash: CrashInjector = NO_CRASH):
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.quarantine_dir = self.root / "quarantine"
        self.manifest_path = self.root / "MANIFEST.json"
        self.wal_path = self.root / "wal.log"
        self._crash = crash
        self.root.mkdir(parents=True, exist_ok=True)
        self.segments_dir.mkdir(exist_ok=True)
        self.quarantine_dir.mkdir(exist_ok=True)
        self._sweep_temp_files()

        checkpoint = Manifest.load(self.manifest_path)
        self.state = checkpoint if checkpoint is not None else Manifest()
        self.journal, replay = Journal.open_for_append(self.wal_path, crash=crash)
        self._replay = replay
        self._knowledge: List[dict] = []
        for record in replay.records:
            self._apply(record)
        self.open_mode = (
            "clean"
            if (checkpoint is not None and checkpoint.clean_shutdown and not replay.records
                and not replay.torn_bytes)
            else "recovered"
        )
        if checkpoint is None and not replay.records and not replay.torn_bytes:
            # A brand-new (empty) store directory is a clean first open.
            self.open_mode = "clean"
        self.state.clean_shutdown = False
        if self.open_mode == "clean":
            self.state.clean_opens += 1
        else:
            self.state.recovered_opens += 1
        self.quarantined_files: List[str] = []
        self.quarantine_reasons: Dict[str, str] = {}
        self.rebuilt_segments: List[str] = []
        self._closed = False
        self.journal.append({"type": "open", "mode": self.open_mode})

    # ------------------------------------------------------------------
    # Open-time machinery
    # ------------------------------------------------------------------
    def _sweep_temp_files(self) -> None:
        """Delete temp files stranded by a writer that died pre-rename."""
        for directory in (self.root, self.segments_dir):
            for leftover in directory.glob(".*.tmp.*"):
                try:
                    leftover.unlink()
                except OSError:
                    pass

    def _apply(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "publish":
            self.state.apply_publish(record)
        elif kind == "knowledge":
            self._knowledge.append(record.get("entry", {}))
        # "open" records carry no state; they only make the WAL non-empty
        # so a crash-without-shutdown classifies the next open as recovered.

    def knowledge_records(self) -> List[dict]:
        """Knowledge-store entries journaled since the last checkpoint
        (what a recovering service re-applies over its loaded docdb)."""
        return list(self._knowledge)

    def knowledge_recorder(self) -> Callable[[dict], None]:
        """A callable that durably journals one knowledge-store entry."""

        def record(entry: dict) -> None:
            self.journal.append({"type": "knowledge", "entry": entry})

        return record

    # ------------------------------------------------------------------
    # Snapshot loading (with quarantine + per-segment rebuild)
    # ------------------------------------------------------------------
    def load_index(self, embedder=None) -> Optional[HybridIndex]:
        """Materialize the published snapshot as a frozen, hydrated
        :class:`HybridIndex`; ``None`` when no usable snapshot exists.

        Checksum failures quarantine the offending file.  A bad half is
        rebuilt from the fusion segment's texts and republished; a bad
        fusion segment retires the snapshot (the caller cold-builds)."""
        if not self.state.has_snapshot:
            return None
        try:
            fusion_seg = read_segment(self._segment_path("fusion"))
        except SegmentCorruptError as exc:
            self._quarantine("fusion", exc)
            self._retire_snapshot()
            return None
        fusion = codec.load_fusion_parts(fusion_seg)
        meta = fusion["meta"]
        if embedder is None:
            embedder = HashingEmbedder(dim=int(meta["dim"]))
        docs = list(zip(fusion["doc_list"], fusion["texts"]))

        rebuilt = False
        try:
            bm25 = codec.load_bm25(read_segment(self._segment_path("bm25")))
        except SegmentCorruptError as exc:
            self._quarantine("bm25", exc)
            bm25 = codec.rebuild_bm25_half(meta, docs)
            self.rebuilt_segments.append("bm25")
            rebuilt = True
        try:
            vectors = codec.load_hnsw(read_segment(self._segment_path("hnsw")))
        except SegmentCorruptError as exc:
            self._quarantine("hnsw", exc)
            vectors = codec.rebuild_hnsw_half(
                {"dim": meta["dim"], "seed": meta.get("seed", 13)}, docs, embedder
            )
            self.rebuilt_segments.append("hnsw")
            rebuilt = True

        if rebuilt:
            # Slot/node numbering of a rebuilt half can differ from the
            # stored maps; recompute the interning from the live halves.
            bm25_map, vector_map = codec.fusion_maps_for(bm25, vectors, fusion["doc_list"])
        else:
            bm25_map, vector_map = fusion["bm25_map"], fusion["vector_map"]
        index = HybridIndex.hydrate_fusion(
            meta=meta,
            bm25=bm25,
            vectors=vectors,
            doc_list=fusion["doc_list"],
            texts=fusion["texts"],
            bm25_map=bm25_map,
            vector_map=vector_map,
            embedder=embedder,
        )
        if rebuilt:
            # Heal durable state too: republish so the next open verifies
            # clean instead of re-running the rebuild.
            self.publish(index, tables=dict(self.state.tables))
        return index

    def _segment_path(self, kind: str) -> Path:
        ref = self.state.segments.get(kind)
        if ref is None:
            raise SegmentCorruptError(self.segments_dir / kind, "segment missing from manifest")
        return self.segments_dir / ref.file

    def _quarantine(self, kind: str, error: SegmentCorruptError) -> None:
        """Move a failed segment aside (never served, kept for autopsy)."""
        self.state.quarantined += 1
        ref = self.state.segments.get(kind)
        if ref is None:
            return
        source = self.segments_dir / ref.file
        target = self.quarantine_dir / ref.file
        try:
            os.replace(os.fspath(source), os.fspath(target))
            fsync_dir(self.segments_dir)
            fsync_dir(self.quarantine_dir)
        except OSError:
            pass
        self.quarantined_files.append(ref.file)
        self.quarantine_reasons[ref.file] = error.reason

    def _retire_snapshot(self) -> None:
        """Journal an empty publish: the snapshot is gone, cold-build next."""
        record = {
            "type": "publish",
            "generation": self.state.generation + 1,
            "segments": {},
            "tables": {},
        }
        self.journal.append(record)
        self.state.apply_publish(record)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, index: HybridIndex, tables: Dict[str, str] = None) -> int:
        """Durably publish a frozen index as the store's snapshot.

        Writes all three segments (each atomically), then journals the
        publish record that makes them the current generation.  A crash
        anywhere in between leaves the previous snapshot intact and
        served.  Returns the new generation number."""
        generation = self.state.generation + 1
        previous = {kind: ref.file for kind, ref in self.state.segments.items()}
        names = {kind: f"{kind}-{generation:06d}.seg" for kind in _SEGMENT_KINDS}
        with obs.span("storage.publish", generation=generation):
            # Segment order is _SEGMENT_KINDS, same as the crash-injection
            # matrix expects.
            writers: Dict[str, Callable] = {
                "fusion": lambda path: codec.write_fusion_segment(
                    path, index, crash=self._crash
                ),
                "bm25": lambda path: codec.write_bm25_segment(
                    path, index.bm25, crash=self._crash
                ),
                "hnsw": lambda path: codec.write_hnsw_segment(
                    path, index.vectors, crash=self._crash
                ),
            }
            digests = {}
            for kind in _SEGMENT_KINDS:
                with obs.span("storage.segment.write", kind=kind, file=names[kind]):
                    digests[kind] = writers[kind](self.segments_dir / names[kind])
            self._crash.reach(CP_PUBLISH_AFTER_SEGMENTS)
            record = {
                "type": "publish",
                "generation": generation,
                "segments": {
                    kind: SegmentRef(file=names[kind], payload_blake2b=digests[kind]).to_json()
                    for kind in _SEGMENT_KINDS
                },
                "tables": dict(tables or {}),
            }
            self.journal.append(record)
            self.state.apply_publish(record)
            # The old generation is unreferenced once the record is durable.
            for old in previous.values():
                if old not in names.values():
                    try:
                        (self.segments_dir / old).unlink()
                    except OSError:
                        pass
            return generation

    # ------------------------------------------------------------------
    # Checkpoint / shutdown
    # ------------------------------------------------------------------
    def checkpoint(self, clean: bool = False) -> None:
        """Fold the WAL into ``MANIFEST.json``; with ``clean=True`` also
        write the clean-shutdown marker and close the journal."""
        with obs.span("storage.checkpoint", clean=clean):
            self._checkpoint(clean)

    def _checkpoint(self, clean: bool) -> None:
        self.state.clean_shutdown = clean
        self.state.save(self.manifest_path, crash=self._crash)
        self._crash.reach(CP_SHUTDOWN_BEFORE_TRUNCATE)
        if clean:
            self.journal.close()
            self._closed = True
        with open(self.wal_path, "r+b") as handle:
            handle.truncate(0)
            handle.flush()
            os.fsync(handle.fileno())
        self._knowledge.clear()
        if not clean:
            self.journal.append({"type": "open", "mode": self.open_mode})

    def close(self) -> None:
        if not self._closed:
            self.journal.close()
            self._closed = True

    def __enter__(self) -> "IndexStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection / verification
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "open_mode": self.open_mode,
            "opens": {
                "clean": self.state.clean_opens,
                "recovered": self.state.recovered_opens,
            },
            "generation": self.state.generation,
            "segments": {kind: ref.file for kind, ref in self.state.segments.items()},
            "tables": len(self.state.tables),
            "quarantined_total": self.state.quarantined,
            "quarantined_files": list(self.quarantined_files),
            "rebuilt_segments": list(self.rebuilt_segments),
            "wal_records_replayed": len(self._replay.records),
            "wal_torn_bytes_truncated": self._replay.torn_bytes,
            "journal_appends": self.journal.appended,
        }

    def fsck(self) -> Dict[str, object]:
        """Offline-style verification of everything the manifest claims:
        re-checksum every referenced segment, cross-check its digest
        against the manifest, and validate the WAL framing.  Non-raising;
        ``ok`` is the single pass/fail bit."""
        segment_reports = []
        ok = True
        for kind, ref in sorted(self.state.segments.items()):
            report = verify_segment(self.segments_dir / ref.file)
            report["kind"] = kind
            if report["ok"]:
                payload = read_segment(self.segments_dir / ref.file).header["payload_blake2b"]
                if payload != ref.payload_blake2b:
                    report["ok"] = False
                    report["reason"] = "payload digest does not match the manifest"
            ok = ok and report["ok"]
            segment_reports.append(report)
        replay = replay_journal(self.wal_path)
        journal_report = {
            "records": len(replay.records),
            "torn_bytes": replay.torn_bytes,
            "torn_reason": replay.torn_reason,
        }
        return {
            "ok": ok,
            "generation": self.state.generation,
            "segments": segment_reports,
            "journal": journal_report,
        }
