"""text — tokenization, BM25, and deterministic embeddings."""

from .bm25 import BM25Hit, BM25Index
from .embedding import CachedEmbedder, HashingEmbedder, cosine_similarity
from .tokenize import STOPWORDS, char_ngrams, stem, tokenize

__all__ = [
    "BM25Index",
    "BM25Hit",
    "HashingEmbedder",
    "CachedEmbedder",
    "cosine_similarity",
    "tokenize",
    "stem",
    "char_ngrams",
    "STOPWORDS",
]
